//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: a generation-based [`strategy::Strategy`] trait (ranges,
//! tuples, string patterns, `Just`, [`collection::vec`],
//! [`option::of`], `prop_map`, `boxed`), the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert!` and
//! `prop_assert_eq!` macros, and a deterministic per-test runner.
//!
//! Differences from real proptest: no shrinking (a failing case
//! reports the generated inputs as-is), no persisted regression seeds
//! (`.proptest-regressions` files are ignored), and string strategies
//! accept only the simple regex subset `[class]`, literal characters,
//! and `{n}` / `{m,n}` / `?` / `*` / `+` quantifiers.

pub mod strategy {
    //! The generation-based [`Strategy`] trait and combinators.

    use std::fmt::Debug;

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking:
    /// `generate` draws one value from the given RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Wraps a generation closure as a strategy. Used by the
    /// `prop_compose!` expansion.
    pub struct FnGen<F>(pub F);

    impl<T: Debug, F: Fn(&mut StdRng) -> T> Strategy for FnGen<F> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between boxed alternatives. Built by
    /// `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// Creates a union over the given alternatives.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    ((*self.start() as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.random::<f64>() * (self.end - self.start)
        }
    }

    // -- string patterns ---------------------------------------------------

    enum Atom {
        Lit(char),
        /// Inclusive character ranges; single characters are `(c, c)`.
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated [class] in pattern");
            match c {
                ']' => {
                    if let Some(p) = prev {
                        ranges.push((p, p));
                    }
                    return ranges;
                }
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = prev.take().expect("checked above");
                    let hi = chars.next().expect("checked above");
                    assert!(lo <= hi, "inverted range in [class]");
                    ranges.push((lo, hi));
                }
                '\\' => {
                    if let Some(p) = prev.replace(chars.next().expect("dangling escape")) {
                        ranges.push((p, p));
                    }
                }
                _ => {
                    if let Some(p) = prev.replace(c) {
                        ranges.push((p, p));
                    }
                }
            }
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Lit(chars.next().expect("dangling escape in pattern")),
                '.' | '(' | ')' | '|' => {
                    panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
                }
                _ => Atom::Lit(c),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut body = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        body.push(c);
                    }
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("bad {m,n} quantifier"),
                            hi.parse().expect("bad {m,n} quantifier"),
                        ),
                        None => {
                            let n = body.parse().expect("bad {n} quantifier");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for piece in parse_pattern(self) {
                let span = (piece.max - piece.min + 1) as u64;
                let n = piece.min + (rng.next_u64() % span) as usize;
                for _ in 0..n {
                    match &piece.atom {
                        Atom::Lit(c) => out.push(*c),
                        Atom::Class(ranges) => {
                            let total: u64 = ranges
                                .iter()
                                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                                .sum();
                            let mut pick = rng.next_u64() % total;
                            for &(lo, hi) in ranges {
                                let width = hi as u64 - lo as u64 + 1;
                                if pick < width {
                                    out.push(
                                        char::from_u32(lo as u32 + pick as u32)
                                            .expect("class range stays in scalar values"),
                                    );
                                    break;
                                }
                                pick -= width;
                            }
                        }
                    }
                }
            }
            out
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
}

pub mod arbitrary {
    //! `any::<T>()` — default strategies per type.

    use std::fmt::Debug;

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Types with a canonical default strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            // Match real proptest's default 1-in-4 chance of `None`.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` about a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    //! Sampling helpers.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::arbitrary::Arbitrary;

    /// An arbitrary index into a collection whose size is only known
    /// at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps this index into `0..size`.
        ///
        /// # Panics
        /// Panics if `size` is zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod test_runner {
    //! The per-test case runner used by the `proptest!` expansion.

    use std::fmt;

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Controls how many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed property case (from `prop_assert!` and friends).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-property, per-case RNG: same test name and
    /// case number always replay the same inputs.
    pub fn rng_for(test_name: &str, case: u32) -> StdRng {
        // FNV-1a over the test path, mixed with the case number.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(hash ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};

    /// Mirror of the crate root so tests can say `prop::sample::Index`.
    pub mod prop {
        pub use crate::{collection, option, sample, strategy};
    }
}

/// Defines property tests. Each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($binding:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $binding =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )*
                    // Render inputs up front: the body may consume them.
                    let rendered_inputs: ::std::string::String = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($binding));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", &$binding));
                            s.push_str("\n");
                        )*
                        s
                    };
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} for {} failed: {}\ninputs:\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            err,
                            rendered_inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Defines a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($args:tt)*)
            ($($binding:ident in $strategy:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnGen(move |rng: &mut ::rand::rngs::StdRng| -> $ret {
                $(
                    let $binding =
                        $crate::strategy::Strategy::generate(&($strategy), rng);
                )+
                $body
            })
        }
    };
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($args:tt)*)
            ($($binding1:ident in $strategy1:expr),+ $(,)?)
            ($($binding2:ident in $strategy2:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnGen(move |rng: &mut ::rand::rngs::StdRng| -> $ret {
                $(
                    let $binding1 =
                        $crate::strategy::Strategy::generate(&($strategy1), rng);
                )+
                $(
                    let $binding2 =
                        $crate::strategy::Strategy::generate(&($strategy2), rng);
                )+
                $body
            })
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_strings_stay_in_bounds() {
        let mut rng = crate::test_runner::rng_for("selftest", 0);
        for _ in 0..200 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let s = "[a-c]{2,4}x?".generate(&mut rng);
            assert!(s.len() >= 2 && s.len() <= 5, "unexpected {s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == 'x'));
        }
    }

    #[test]
    fn determinism_per_name_and_case() {
        let a = crate::collection::vec(0u32..100, 1..10)
            .generate(&mut crate::test_runner::rng_for("t", 3));
        let b = crate::collection::vec(0u32..100, 1..10)
            .generate(&mut crate::test_runner::rng_for("t", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_pipeline_works(
            xs in crate::collection::vec(0i32..10, 0..5),
            flag in any::<bool>(),
            which in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(xs.len() < 5);
            prop_assert!(u8::from(flag) <= 1);
            prop_assert_eq!(u8::from(which == 1) + u8::from(which == 2), 1);
        }
    }
}
