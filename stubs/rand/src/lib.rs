//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the *subset* of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::random`]. The generator is SplitMix64 — statistically fine
//! for the simulator's noise streams and the benches' synthetic data,
//! deterministic for a given seed, and dependency-free.
//!
//! The value streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, so seeded sequences are reproducible *within* this
//! workspace but not across implementations.

/// Sampling support: types that can be drawn uniformly from an RNG.
pub trait FromRng {
    /// Draws one uniformly distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    ///
    /// For `f64` the distribution is uniform in `[0, 1)`, matching
    /// upstream `rand`'s `StandardUniform` for floats.
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// A deterministic seeded generator (SplitMix64).
    ///
    /// SplitMix64 passes BigCrush on its own and is the generator
    /// Vigna recommends for seeding; one self-contained multiply-xor
    /// pipeline per output keeps this stub tiny.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
