//! Splittable parallel iterators with **length-driven** chunking.
//!
//! The central invariant: how an input is split into pieces is a pure
//! function of its *length* (recursive halving down to [`min_len`]),
//! never of the thread count or of runtime timing. Pieces may execute
//! on any thread in any order, but element-wise effects are disjoint
//! and every reduction ([`ParallelIterator::sum`], `collect`) combines
//! piece results positionally along the same fixed tree — so outputs,
//! including floating-point sums, are byte-identical whether the pool
//! runs 1 thread or 64.
//!
//! [`min_len`]: ParallelIterator::min_len
//!
//! Only the API subset this workspace uses is implemented: slice
//! `par_iter` / `par_iter_mut` / `par_chunks_mut`, integer-range
//! `into_par_iter`, the `map` / `zip` / `enumerate` / `with_min_len`
//! adapters, and the `for_each` / `collect` / `sum` consumers.

/// Pieces smaller than this many items are not split further (unless a
/// call site overrides it with [`ParallelIterator::with_min_len`]).
///
/// The value trades dispatch overhead against parallel slack: at the
/// workspace's `PAR_THRESHOLD` of 64 Ki elements this still yields
/// eight leaves, enough to keep 4–8 threads busy.
pub const DEFAULT_MIN_LEN: usize = 8 * 1024;

/// A finite, splittable, exactly-sized parallel iterator.
///
/// Implementors describe *data*; the provided consumers drive it over
/// the global pool via `join`, splitting by recursive halving until
/// pieces reach [`ParallelIterator::min_len`] items.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item;
    /// The sequential iterator a leaf piece collapses into.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// Whether there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into the first `index` items and the rest.
    /// `index` must be `<= self.len()`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Collapses this (leaf) piece into a sequential iterator.
    fn into_seq(self) -> Self::Seq;

    /// Smallest piece the drivers will split down to, in items.
    fn min_len(&self) -> usize {
        DEFAULT_MIN_LEN
    }

    // -- adapters -----------------------------------------------------------

    /// Maps each item through `f` (cloned into each piece when split).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send,
    {
        Map { base: self, f }
    }

    /// Pairs this iterator with another, truncating to the shorter.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: ParallelIterator,
    {
        let n = self.len().min(other.len());
        Zip {
            a: truncate(self, n),
            b: truncate(other, n),
        }
    }

    /// Attaches each item's index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: 0,
            inner: self,
        }
    }

    /// Overrides the smallest piece size. Use `1` when each item is
    /// itself a coarse unit of work (a file read, a whole-array scan).
    /// The value is part of the call site, so it cannot break the
    /// determinism guarantee — only shift the overhead/parallelism
    /// trade-off.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen {
            base: self,
            min: min.max(1),
        }
    }

    // -- consumers ----------------------------------------------------------

    /// Calls `f` on every item, in parallel above the split threshold.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive_for_each(self, &f);
    }

    /// Collects into `C`, preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the items along the fixed, length-driven reduction tree.
    ///
    /// The tree is walked even when the pool is limited to one thread
    /// (the forks just run inline), so floating-point results never
    /// depend on the thread count.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        drive_sum(self)
    }
}

/// Conversion into a [`ParallelIterator`] by value (integer ranges).
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Its element type.
    type Item;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()`: borrowing parallel iterator over `&T` items.
pub trait IntoParallelRefIterator<'data> {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Its element type.
    type Item;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

/// `par_iter_mut()`: borrowing parallel iterator over `&mut T` items.
pub trait IntoParallelRefMutIterator<'data> {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Its element type.
    type Item;
    /// Mutably borrows `self` as a parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

/// `par_chunks_mut()`: parallel iterator over disjoint mutable chunks.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of `chunk_size` (last may be
    /// shorter), each a coarse parallel item. Panics if `chunk_size`
    /// is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> SliceChunksMut<'_, T>;
}

/// Types constructible from a parallel iterator ([`Vec`], and
/// `Result<Vec<T>, E>` with a deterministic *leftmost* error).
pub trait FromParallelIterator<T>: Sized {
    /// Builds `Self` from the iterator, preserving item order.
    fn from_par_iter<P>(iter: P) -> Self
    where
        P: ParallelIterator<Item = T>;
}

// ---------------------------------------------------------------------------
// producers
// ---------------------------------------------------------------------------

/// Parallel iterator over `&T` items of a slice.
pub struct SliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceIter<'data, T> {
    type Item = &'data T;
    type Seq = std::slice::Iter<'data, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at(index);
        (Self { slice: left }, Self { slice: right })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over `&mut T` items of a slice.
pub struct SliceIterMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParallelIterator for SliceIterMut<'data, T> {
    type Item = &'data mut T;
    type Seq = std::slice::IterMut<'data, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at_mut(index);
        (Self { slice: left }, Self { slice: right })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = SliceIterMut<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> SliceIterMut<'data, T> {
        SliceIterMut { slice: self }
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
///
/// Items are whole chunks, so the default smallest piece is a *single*
/// chunk — the chunk size chosen at the call site already sets the
/// grain.
pub struct SliceChunksMut<'data, T> {
    slice: &'data mut [T],
    chunk: usize,
}

impl<'data, T: Send> ParallelIterator for SliceChunksMut<'data, T> {
    type Item = &'data mut [T];
    type Seq = std::slice::ChunksMut<'data, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn min_len(&self) -> usize {
        1
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.chunk).min(self.slice.len());
        let (left, right) = self.slice.split_at_mut(elems);
        (
            Self {
                slice: left,
                chunk: self.chunk,
            },
            Self {
                slice: right,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk)
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> SliceChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        SliceChunksMut {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: std::ops::Range<T>,
}

macro_rules! range_par_iter {
    ($($t:ty),+) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { range: self }
            }
        }

        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Seq = std::ops::Range<$t>;

            fn len(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }

            fn into_seq(self) -> Self::Seq {
                self.range
            }
        }
    )+};
}

range_par_iter!(usize, u32, u64, i32, i64);

// ---------------------------------------------------------------------------
// adapters
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Clone + Send,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (
            Self {
                base: left,
                f: self.f.clone(),
            },
            Self {
                base: right,
                f: self.f,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().map(self.f)
    }
}

/// See [`ParallelIterator::zip`]. Both sides always hold equal lengths.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

fn truncate<P: ParallelIterator>(iter: P, n: usize) -> P {
    if iter.len() > n {
        iter.split_at(n).0
    } else {
        iter
    }
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn len(&self) -> usize {
        self.a.len()
    }

    fn min_len(&self) -> usize {
        self.a.min_len().max(self.b.min_len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Self { a: al, b: bl }, Self { a: ar, b: br })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: usize,
    inner: P,
}

impl<P> ParallelIterator for Enumerate<P>
where
    P: ParallelIterator,
{
    type Item = (usize, P::Item);
    type Seq = std::iter::Zip<std::ops::Range<usize>, P::Seq>;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn min_len(&self) -> usize {
        self.inner.min_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.inner.split_at(index);
        (
            Self {
                base: self.base,
                inner: left,
            },
            Self {
                base: self.base + index,
                inner: right,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        let end = self.base + self.inner.len();
        (self.base..end).zip(self.inner.into_seq())
    }
}

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Item;
    type Seq = P::Seq;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn min_len(&self) -> usize {
        self.min
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (
            Self {
                base: left,
                min: self.min,
            },
            Self {
                base: right,
                min: self.min,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq()
    }
}

// ---------------------------------------------------------------------------
// drivers
// ---------------------------------------------------------------------------

fn drive_for_each<P, F>(iter: P, f: &F)
where
    P: ParallelIterator,
    F: Fn(P::Item) + Sync,
{
    let len = iter.len();
    if crate::pool::current_num_threads() <= 1 || len <= iter.min_len().max(1) {
        iter.into_seq().for_each(f);
        return;
    }
    let (a, b) = iter.split_at(len / 2);
    crate::pool::join(|| drive_for_each(a, f), || drive_for_each(b, f));
}

/// Walks the fixed reduction tree unconditionally — no thread-count
/// check — so floating-point association never varies; `join` itself
/// collapses to inline calls on a single-thread pool.
fn drive_sum<P, S>(iter: P) -> S
where
    P: ParallelIterator,
    S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
{
    let len = iter.len();
    if len <= iter.min_len().max(1) {
        return iter.into_seq().sum();
    }
    let (a, b) = iter.split_at(len / 2);
    let (sa, sb) = crate::pool::join(|| drive_sum::<P, S>(a), || drive_sum::<P, S>(b));
    [sa, sb].into_iter().sum()
}

fn drive_collect_vec<P>(iter: P, out: &mut Vec<P::Item>)
where
    P: ParallelIterator,
    P::Item: Send,
{
    let len = iter.len();
    if crate::pool::current_num_threads() <= 1 || len <= iter.min_len().max(1) {
        out.extend(iter.into_seq());
        return;
    }
    let (a, b) = iter.split_at(len / 2);
    let ((), mut right) = crate::pool::join(
        || drive_collect_vec(a, out),
        || {
            let mut v = Vec::with_capacity(b.len());
            drive_collect_vec(b, &mut v);
            v
        },
    );
    out.append(&mut right);
}

fn drive_try_collect<P, T, E>(iter: P) -> Result<Vec<T>, E>
where
    P: ParallelIterator<Item = Result<T, E>>,
    T: Send,
    E: Send,
{
    let len = iter.len();
    if crate::pool::current_num_threads() <= 1 || len <= iter.min_len().max(1) {
        return iter.into_seq().collect();
    }
    let (a, b) = iter.split_at(len / 2);
    let (ra, rb) = crate::pool::join(|| drive_try_collect(a), || drive_try_collect(b));
    match (ra, rb) {
        (Ok(mut va), Ok(mut vb)) => {
            va.append(&mut vb);
            Ok(va)
        }
        // The *leftmost* error wins regardless of which half finished
        // first, so the failure value is deterministic too.
        (Err(e), _) | (_, Err(e)) => Err(e),
    }
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P>(iter: P) -> Self
    where
        P: ParallelIterator<Item = T>,
    {
        let mut out = Vec::with_capacity(iter.len());
        drive_collect_vec(iter, &mut out);
        out
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter<P>(iter: P) -> Self
    where
        P: ParallelIterator<Item = Result<T, E>>,
    {
        drive_try_collect(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::test_support::with_threads;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0..10_000u64)
            .into_par_iter()
            .with_min_len(16)
            .map(|x| x * 2)
            .collect();
        let expect: Vec<u64> = (0..10_000u64).map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zip_truncates_to_the_shorter_side() {
        let long = [1i64; 100];
        let short = [2i64; 7];
        let out: Vec<i64> = long
            .par_iter()
            .zip(short.par_iter())
            .with_min_len(1)
            .map(|(a, b)| a + b)
            .collect();
        assert_eq!(out, vec![3i64; 7]);
    }

    #[test]
    fn par_iter_mut_reaches_every_element() {
        let mut xs = vec![0u32; 50_000];
        xs.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u32);
        assert!(xs.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn chunks_mut_covers_the_slice_with_correct_indices() {
        let mut xs = [1, 2, 3, 4, 5];
        xs.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x += i as i32 * 10));
        assert_eq!(xs, [1, 2, 13, 14, 25]);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: [f64; 0] = [];
        let collected: Vec<f64> = empty.par_iter().map(|&x| x).collect();
        assert!(collected.is_empty());
        let sum: f64 = empty.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 0.0);
        let mut none: Vec<u8> = Vec::new();
        none.par_iter_mut().for_each(|x| *x += 1);
        let chunks = none.par_chunks_mut(4).len();
        assert_eq!(chunks, 0);
    }

    #[test]
    fn single_element_inputs_are_fine() {
        let one = [42.0f64];
        let collected: Vec<f64> = one.par_iter().map(|&x| x).collect();
        assert_eq!(collected, vec![42.0]);
        let sum: f64 = one.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 42.0);
    }

    #[test]
    fn float_sum_is_bitwise_identical_across_thread_counts() {
        // A sum whose result is association-sensitive: if the reduction
        // tree varied with the thread count, these would differ in the
        // low bits.
        let xs: Vec<f64> = (0..100_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let at = |threads: usize| -> f64 {
            let _guard = with_threads(threads);
            xs.par_iter().map(|&x| x).sum()
        };
        let one = at(1);
        assert_eq!(one.to_bits(), at(2).to_bits());
        assert_eq!(one.to_bits(), at(8).to_bits());
    }

    #[test]
    fn result_collect_reports_the_leftmost_error() {
        for threads in [1, 4] {
            let _guard = with_threads(threads);
            let out: Result<Vec<u32>, u32> = (0..1000u32)
                .into_par_iter()
                .with_min_len(1)
                .map(|i| if i % 7 == 3 { Err(i) } else { Ok(i) })
                .collect();
            assert_eq!(out, Err(3));
        }
    }

    #[test]
    fn sum_splits_respect_with_min_len() {
        // min_len 1 forces a maximal tree even on 3 elements; the value
        // must still be the plain sum.
        let xs = [1.5f64, 2.25, 3.75];
        let total: f64 = xs.par_iter().map(|&x| x).with_min_len(1).sum();
        assert_eq!(total, 7.5);
    }
}
