//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crate registry, so this stub provides
//! the `par_iter`/`par_iter_mut`/`into_par_iter` entry points the
//! workspace uses and executes them **serially**: each entry point
//! simply returns the corresponding standard-library iterator, so all
//! adapters (`zip`, `map`, `for_each`, `collect`, ...) come from
//! [`std::iter::Iterator`] unchanged.
//!
//! Semantics are identical to data-parallel execution for the pure
//! element-wise kernels this workspace runs; only the speedup is gone.
//! When a real registry is available again, point the workspace
//! dependency back at upstream `rayon` and nothing else changes.

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude`.

    /// Serial stand-in for `rayon::prelude::IntoParallelIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns this collection's ordinary sequential iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// Serial stand-in for `rayon::prelude::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The sequential iterator type standing in for the parallel one.
        type Iter: Iterator;
        /// Returns a sequential shared-reference iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }
    impl<'data, T: ?Sized + 'data> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Serial stand-in for `rayon::prelude::ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        /// Returns the ordinary sequential `chunks_mut` iterator.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// Serial stand-in for `rayon::prelude::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The sequential iterator type standing in for the parallel one.
        type Iter: Iterator;
        /// Returns a sequential mutable-reference iterator.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }
    impl<'data, T: ?Sized + 'data> IntoParallelRefMutIterator<'data> for T
    where
        &'data mut T: IntoIterator,
    {
        type Iter = <&'data mut T as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Serial stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn entry_points_behave_like_std_iterators() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);

        let mut dst = [1.0, 2.0, 3.0];
        let src = [0.5, 0.5, 0.5];
        dst.par_iter_mut()
            .zip(src.par_iter())
            .for_each(|(d, s)| *d -= *s);
        assert_eq!(dst, [0.5, 1.5, 2.5]);

        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);

        let mut xs = [1, 2, 3, 4, 5];
        xs.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x += i as i32 * 10));
        assert_eq!(xs, [1, 2, 13, 14, 25]);
    }
}
