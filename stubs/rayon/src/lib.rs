//! Offline stand-in for the `rayon` crate, backed by a **real** thread
//! pool.
//!
//! The build environment has no crate registry, so this crate provides
//! the `rayon` API subset the workspace uses — `par_iter`,
//! `par_iter_mut`, `par_chunks_mut`, integer-range `into_par_iter`,
//! [`join`], [`scope`] — executing on a process-wide pool of
//! `std::thread` workers (see [`mod@iter`] and the pool docs in the
//! source). Call sites written against upstream `rayon` compile
//! unchanged; point the workspace dependency back at upstream and
//! nothing else moves.
//!
//! # Sizing
//!
//! The pool starts lazily with `CUBE_THREADS`, else `RAYON_NUM_THREADS`,
//! else [`std::thread::available_parallelism`] threads (the caller
//! counts as one of them). [`set_threads`] retargets it at runtime —
//! this is a facade extension used by `cube --threads N`; upstream
//! `rayon` sizes its global pool with `ThreadPoolBuilder` instead. At
//! an effective count of 1 every entry point runs inline with zero
//! dispatch cost.
//!
//! # Determinism
//!
//! All results are **byte-identical for every thread count**. Work is
//! split by input length alone (recursive halving to a fixed leaf
//! size), element-wise effects are disjoint, and reductions combine
//! leaf results positionally along that fixed tree — floating-point
//! association never depends on scheduling. `ci/check.sh` enforces
//! this end-to-end by comparing derived `.cube` files across
//! `--threads 1/2/8`.

mod pool;

pub mod iter;

pub use pool::{current_num_threads, join, scope, set_threads, Scope};

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude`.

    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    //! The drop-in-compatibility smoke test kept verbatim from the old
    //! serial shim: every entry point the workspace uses, exercised
    //! through `prelude::*` exactly as call sites write it.

    use super::prelude::*;

    #[test]
    // The Vec really is the point: call sites par_iter over Vecs, and
    // that must keep reaching the slice impl through autoderef.
    #[allow(clippy::useless_vec)]
    fn entry_points_behave_like_std_iterators() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);

        let mut dst = [1.0, 2.0, 3.0];
        let src = [0.5, 0.5, 0.5];
        dst.par_iter_mut()
            .zip(src.par_iter())
            .for_each(|(d, s)| *d -= *s);
        assert_eq!(dst, [0.5, 1.5, 2.5]);

        let sum: i32 = (0..5i32).into_par_iter().sum();
        assert_eq!(sum, 10);

        let mut xs = [1, 2, 3, 4, 5];
        xs.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x += i as i32 * 10));
        assert_eq!(xs, [1, 2, 13, 14, 25]);
    }
}
