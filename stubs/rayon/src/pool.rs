//! The global work-sharing thread pool behind the facade.
//!
//! One process-wide pool, lazily started on first use. Callers submit
//! work through [`join`] and [`scope`]; both keep the *caller* as one of
//! the executing threads, so a pool limited to one thread degenerates to
//! plain inline execution with zero dispatch cost.
//!
//! Design notes:
//!
//! * **Shared FIFO queue, LIFO helping.** Jobs live in one
//!   `Mutex<VecDeque>`: idle workers pop from the front (oldest first,
//!   breadth across independent submitters), while a thread *waiting*
//!   for its own fork pops from the back (newest first — most likely its
//!   own subtree, keeping the working set hot). The queue only ever
//!   holds `O(live forks)` entries, so a mutex is not a bottleneck at
//!   the coarse grain sizes the workspace dispatches.
//! * **Deadlock freedom.** A waiting thread never blocks: it executes
//!   queued jobs until its own completion flag flips ("helping"). Nested
//!   `join`/`scope` therefore cannot deadlock even with zero workers.
//! * **Panic propagation.** Every job runs under `catch_unwind`; the
//!   payload is carried back and re-raised on the thread that owns the
//!   fork (`join`) or the scope exit (`scope`), matching `rayon`.
//! * **Determinism.** The pool never influences *what* is computed —
//!   only where. All splitting decisions are made by the iterator layer
//!   from input lengths alone, so results are byte-identical for any
//!   thread count (see the crate docs).

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Thread-count override recorded by [`set_threads`] before (or after)
/// the pool starts. Zero means "not configured".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// The process-wide pool.
static POOL: OnceLock<Pool> = OnceLock::new();

// ---------------------------------------------------------------------------
// jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a queued unit of work.
///
/// The pointee is either a [`StackJob`] owned by a frame currently
/// blocked in [`Pool::wait_until`] (so it outlives execution), or a
/// leaked [`HeapJob`] box reclaimed by its executor.
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a `JobRef` is a one-shot token: exactly one thread executes
// it, and both job kinds synchronise their results back to the owner
// (done-flag / pending-counter with release/acquire ordering).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job. Must be called exactly once.
    ///
    /// # Safety
    ///
    /// `self` must have been produced by `StackJob::as_job_ref` or
    /// `HeapJob::into_job_ref` and not executed before.
    unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// A fork whose closure and result live on the forking thread's stack.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
}

// SAFETY: the cells are accessed by at most one thread at a time — the
// executor writes them before the release-store of `done`, the owner
// reads them only after the acquire-load of `done`.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    /// Erases this job into a queue token.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive and in place until
    /// [`Pool::wait_until`] has observed `self.done`.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: (self as *const Self).cast(),
            exec: Self::execute_erased,
        }
    }

    /// # Safety
    ///
    /// `ptr` must come from [`StackJob::as_job_ref`] on a still-live job.
    unsafe fn execute_erased(ptr: *const ()) {
        let this = &*ptr.cast::<Self>();
        let func = (*this.func.get()).take().expect("stack job executed twice");
        let outcome = catch_unwind(AssertUnwindSafe(func));
        *this.result.get() = Some(outcome);
        this.done.store(true, Ordering::Release);
    }

    /// Consumes the finished job, re-raising a captured panic.
    fn unwrap_result(self) -> R {
        match self
            .result
            .into_inner()
            .expect("stack job consumed before completion")
        {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// A detached job for [`Scope::spawn`]; boxed, reclaimed by its executor.
struct HeapJob<F> {
    body: F,
}

impl<F: FnOnce() + Send> HeapJob<F> {
    fn new(body: F) -> Self {
        Self { body }
    }

    /// Leaks the box into a queue token.
    ///
    /// # Safety
    ///
    /// Everything `body` borrows must stay alive until the job has run;
    /// [`scope`] guarantees this by blocking until its counter drains.
    unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef {
            data: Box::into_raw(self) as *const (),
            exec: Self::execute_erased,
        }
    }

    /// # Safety
    ///
    /// `ptr` must come from [`HeapJob::into_job_ref`], exactly once.
    unsafe fn execute_erased(ptr: *const ()) {
        let job = Box::from_raw(ptr as *mut Self);
        (job.body)();
    }
}

// ---------------------------------------------------------------------------
// the pool proper
// ---------------------------------------------------------------------------

struct State {
    queue: VecDeque<JobRef>,
    /// Worker threads spawned so far (workers never exit; shrinking the
    /// limit only narrows future dispatch, it does not reap threads).
    workers: usize,
}

pub(crate) struct Pool {
    state: Mutex<State>,
    work_available: Condvar,
    /// Effective thread count (caller + workers used for dispatch).
    /// Zero only during construction, before the first `resize`.
    limit: AtomicUsize,
}

impl Pool {
    /// The process-wide pool, started on first use.
    pub(crate) fn global() -> &'static Pool {
        let pool = POOL.get_or_init(|| Pool {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                workers: 0,
            }),
            work_available: Condvar::new(),
            limit: AtomicUsize::new(0),
        });
        if pool.limit.load(Ordering::Acquire) == 0 {
            let configured = CONFIGURED.load(Ordering::SeqCst);
            let target = if configured == 0 {
                threads_from_env()
            } else {
                configured
            };
            pool.resize(target);
        }
        pool
    }

    /// Current effective thread count; `<= 1` means inline execution.
    pub(crate) fn limit(&self) -> usize {
        self.limit.load(Ordering::Acquire)
    }

    /// Retargets the pool: publishes the new limit and tops up workers
    /// to `target - 1` (the caller is always the remaining thread).
    fn resize(&'static self, target: usize) {
        let target = target.max(1);
        self.limit.store(target, Ordering::Release);
        let mut state = self.lock_state();
        while state.workers + 1 < target {
            state.workers += 1;
            let id = state.workers;
            std::thread::Builder::new()
                .name(format!("cube-pool-{id}"))
                .spawn(move || self.worker_loop())
                .expect("failed to spawn pool worker thread");
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        // A panic can only poison this mutex between `lock` and `drop`
        // below, where no unwinding code runs; recover rather than
        // cascade the (impossible) poison into every later caller.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a job and wakes one sleeping worker.
    pub(crate) fn push(&self, job: JobRef) {
        self.lock_state().queue.push_back(job);
        self.work_available.notify_one();
    }

    /// Steals the most recently queued job, if any.
    fn try_pop(&self) -> Option<JobRef> {
        self.lock_state().queue.pop_back()
    }

    /// Worker body: oldest-first service loop, parked when idle.
    fn worker_loop(&self) {
        let mut state = self.lock_state();
        loop {
            match state.queue.pop_front() {
                Some(job) => {
                    drop(state);
                    // SAFETY: queued tokens are valid until executed once,
                    // and popping removed this one from the queue.
                    unsafe { job.execute() };
                    state = self.lock_state();
                }
                None => {
                    state = self
                        .work_available
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Blocks until `finished` holds, executing queued jobs meanwhile
    /// ("helping") so nested forks can never deadlock.
    fn help_until(&self, finished: impl Fn() -> bool) {
        let mut spins: u32 = 0;
        while !finished() {
            if let Some(job) = self.try_pop() {
                // SAFETY: popping transferred sole execution rights.
                unsafe { job.execute() };
                spins = 0;
            } else if spins < 64 {
                std::hint::spin_loop();
                spins += 1;
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// [`Pool::help_until`] on a job's completion flag.
    fn wait_until(&self, flag: &AtomicBool) {
        self.help_until(|| flag.load(Ordering::Acquire));
    }
}

/// Thread count from the environment: `CUBE_THREADS`, then
/// `RAYON_NUM_THREADS`, then [`std::thread::available_parallelism`].
fn threads_from_env() -> usize {
    for var in ["CUBE_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(raw) = std::env::var(var) {
            if let Some(n) = parse_thread_var(&raw) {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses one thread-count variable; `0` clamps to 1 (inline), garbage
/// is ignored so the next source applies.
fn parse_thread_var(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().map(|n| n.max(1))
}

// ---------------------------------------------------------------------------
// public API: sizing
// ---------------------------------------------------------------------------

/// Sets the effective thread count for all subsequent parallel work.
///
/// `1` disables dispatch entirely (inline execution); values are clamped
/// to at least 1. May be called before or after the pool has started;
/// shrinking narrows future dispatch but never reaps live workers.
///
/// Results of the facade's operations do **not** depend on this value —
/// see the crate-level determinism guarantee.
pub fn set_threads(threads: usize) {
    let threads = threads.max(1);
    CONFIGURED.store(threads, Ordering::SeqCst);
    if let Some(pool) = POOL.get() {
        pool.resize(threads);
    }
}

/// The effective thread count parallel work may currently use
/// (including the calling thread). Starts the pool if necessary.
pub fn current_num_threads() -> usize {
    Pool::global().limit()
}

// ---------------------------------------------------------------------------
// public API: join + scope
// ---------------------------------------------------------------------------

/// Runs both closures, potentially in parallel, and returns both
/// results. The caller always executes `oper_a` itself; `oper_b` is
/// offered to the pool and reclaimed by the caller if no worker takes
/// it. With an effective thread count of 1 both simply run inline.
///
/// A panic in either closure resumes on the calling thread once both
/// halves have finished (if both panic, the first payload wins).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = Pool::global();
    if pool.limit() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let job_b = StackJob::new(oper_b);
    // SAFETY: `job_b` stays pinned on this frame until `wait_until`
    // below observes its done flag — the executor's final access.
    pool.push(unsafe { job_b.as_job_ref() });
    let result_a = catch_unwind(AssertUnwindSafe(oper_a));
    // Even if `oper_a` panicked we must wait: the queued job borrows
    // this very stack frame.
    pool.wait_until(&job_b.done);
    match result_a {
        Ok(ra) => (ra, job_b.unwrap_result()),
        Err(payload) => {
            // `job_b`'s own panic payload, if any, is dropped with it.
            drop(job_b);
            resume_unwind(payload)
        }
    }
}

/// A fork scope handed to [`scope`]'s closure; see there.
pub struct Scope<'scope> {
    pool: &'static Pool,
    pending: AtomicUsize,
    first_panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Invariant in `'scope` so callers cannot shrink the region the
    /// spawned closures are allowed to borrow from.
    _marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

/// Creates a scope in which closures borrowing non-`'static` data may
/// be spawned onto the pool; returns only after every spawned closure
/// has finished. The first panic from any spawned closure (or from `op`
/// itself) resumes on the calling thread at scope exit.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope {
        pool: Pool::global(),
        pending: AtomicUsize::new(0),
        first_panic: Mutex::new(None),
        _marker: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&s)));
    s.wait_all();
    let spawned_panic = s
        .first_panic
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = spawned_panic {
                resume_unwind(payload);
            }
            value
        }
    }
}

/// A `*const Scope` that may cross threads.
struct ScopePtr<'scope>(*const Scope<'scope>);

// SAFETY: `Scope` is `Sync` (atomics, a mutex, a `&'static Pool`), and
// the owning `scope` call outlives every job holding one of these.
unsafe impl Send for ScopePtr<'_> {}

impl<'scope> ScopePtr<'scope> {
    /// Accessor (rather than a public field) so closures capture the
    /// whole `Send` wrapper, not the raw pointer field — 2021-edition
    /// disjoint capture would otherwise bypass the `Send` impl.
    fn get(&self) -> *const Scope<'scope> {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` onto the pool. The closure may borrow anything
    /// that outlives `'scope`; the surrounding [`scope`] call will not
    /// return before it has run. Runs inline when the pool's effective
    /// thread count is 1.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if self.pool.limit() <= 1 {
            // Inline fallback: capture panics exactly like the pooled
            // path so `scope` reports them identically.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(self))) {
                self.record_panic(payload);
            }
            return;
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        let ptr = ScopePtr(self as *const Scope<'scope>);
        let job = Box::new(HeapJob::new(move || {
            // SAFETY: the owning `scope` call blocks in `wait_all` until
            // `pending` drains, so the `Scope` is still alive here.
            let scope = unsafe { &*ptr.get() };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.record_panic(payload);
            }
            scope.pending.fetch_sub(1, Ordering::Release);
        }));
        // SAFETY: `wait_all` below keeps every `'scope` borrow alive
        // until the job has executed.
        self.pool.push(unsafe { job.into_job_ref() });
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send + 'static>) {
        let mut slot = self.first_panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn wait_all(&self) {
        self.pool
            .help_until(|| self.pending.load(Ordering::Acquire) == 0);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Serialises tests that depend on a *specific* global thread limit.

    use std::sync::{Mutex, MutexGuard};

    static LIMIT_LOCK: Mutex<()> = Mutex::new(());

    /// Holds the limit lock and restores the previous limit on drop.
    pub(crate) struct LimitGuard {
        prev: usize,
        _lock: MutexGuard<'static, ()>,
    }

    /// Sets the global limit to `n` for the guard's lifetime.
    pub(crate) fn with_threads(n: usize) -> LimitGuard {
        let lock = LIMIT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = super::current_num_threads();
        super::set_threads(n);
        LimitGuard { prev, _lock: lock }
    }

    impl Drop for LimitGuard {
        fn drop(&mut self) {
            super::set_threads(self.prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::with_threads;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "b".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "b");
    }

    #[test]
    fn nested_join_computes_a_reduction_tree() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 8 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 1000), 499_500);
    }

    #[test]
    fn join_propagates_panic_from_first_closure() {
        let caught = std::panic::catch_unwind(|| {
            join(|| panic!("first half"), || 1);
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("first half"), "unexpected payload: {msg:?}");
    }

    #[test]
    fn join_propagates_panic_from_second_closure() {
        let caught = std::panic::catch_unwind(|| {
            join(|| 1, || panic!("second half"));
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("second half"), "unexpected payload: {msg:?}");
    }

    #[test]
    fn join_runs_inline_when_limit_is_one() {
        let _guard = with_threads(1);
        let caller = std::thread::current().id();
        let (ta, tb) = join(
            || std::thread::current().id(),
            || std::thread::current().id(),
        );
        assert_eq!(ta, caller);
        assert_eq!(tb, caller, "limit 1 must not dispatch to a worker");
    }

    #[test]
    fn scope_waits_for_all_spawned_jobs() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_supports_nested_spawns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn scope_propagates_spawned_panic() {
        let caught = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("spawned failure"));
            });
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(
            msg.contains("spawned failure"),
            "unexpected payload: {msg:?}"
        );
    }

    #[test]
    fn scope_runs_inline_when_limit_is_one() {
        let _guard = with_threads(1);
        let caller = std::thread::current().id();
        let mut seen = None;
        scope(|s| {
            s.spawn(|_| {
                seen = Some(std::thread::current().id());
            });
        });
        assert_eq!(seen, Some(caller));
    }

    #[test]
    fn set_threads_clamps_zero_to_one() {
        let _guard = with_threads(4);
        set_threads(0);
        assert_eq!(current_num_threads(), 1);
    }

    #[test]
    fn thread_var_parsing() {
        assert_eq!(parse_thread_var("4"), Some(4));
        assert_eq!(parse_thread_var(" 8 "), Some(8));
        assert_eq!(parse_thread_var("0"), Some(1), "zero clamps to inline");
        assert_eq!(parse_thread_var(""), None);
        assert_eq!(parse_thread_var("many"), None);
        assert_eq!(parse_thread_var("-2"), None);
    }

    #[test]
    fn join_distributes_work_when_limit_allows() {
        let _guard = with_threads(4);
        // With helping in place this cannot deadlock even if the pool
        // never picks the job up; we only assert completion + results.
        let (a, b) = join(|| (0..1000).sum::<u64>(), || (0..1000).product::<u64>());
        assert_eq!(a, 499_500);
        assert_eq!(b, 0);
    }
}
