//! Offline stand-in for the `criterion` crate.
//!
//! Implements the bench-definition API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`],
//! [`criterion_main!`] — on a deliberately simple wall-clock harness:
//! a short warm-up, then timed batches until a fixed measurement
//! budget, reporting the fastest batch's per-iteration mean (the
//! noise-robust estimator) and derived throughput to stdout. No
//! statistics, plots, or saved baselines; the numbers are honest
//! best-observed figures good enough for before/after comparisons.
//!
//! When the `BENCH_JSON` environment variable names a file, every
//! measurement is *additionally* appended to it as a tab-separated
//! `group/bench\tnanoseconds` line. The `bench_gate` tool in
//! `cube-bench` assembles those raw lines into the `BENCH_5.json`
//! metrics document that `ci/bench_gate.sh` compares against the
//! committed baseline.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// How units of work relate to wall time, for derived throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// A benchmark's identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id that is just the displayed parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Measured mean time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`: warms up briefly, then runs timed batches until
    /// the measurement budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one run, at most ~50 ms.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget || warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;

        // Measurement: batches sized to ~10 ms, total budget ~200 ms.
        // The reported figure is the *fastest* batch's per-iteration
        // mean, not the grand mean: the minimum is robust against
        // contention spikes from other processes, which matters for
        // the CI regression gate comparing single runs on shared
        // machines (upward noise would read as a regression).
        let budget = Duration::from_millis(200);
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        let mut best: Option<Duration> = None;
        while total < budget {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            let per = elapsed / batch.max(1) as u32;
            if best.is_none_or(|b| per < b) {
                best = Some(per);
            }
        }
        self.elapsed_per_iter = best.unwrap_or(per_iter);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Ignored knob kept for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored knob kept for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.name, bencher.elapsed_per_iter);
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.name, bencher.elapsed_per_iter);
    }

    fn report(&self, name: &str, per_iter: Duration) {
        let ns = per_iter.as_nanos().max(1);
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                let mib_s = b as f64 * 1e9 / ns as f64 / (1024.0 * 1024.0);
                format!("  ({mib_s:.1} MiB/s)")
            }
            Some(Throughput::Elements(e)) => {
                let me_s = e as f64 * 1e9 / ns as f64 / 1e6;
                format!("  ({me_s:.2} Melem/s)")
            }
            None => String::new(),
        };
        println!("{}/{name:<28} {ns:>12} ns/iter{rate}", self.name);
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                append_raw_line(&path, &format!("{}/{name}\t{ns}\n", self.name));
            }
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Appends one raw measurement line to the `BENCH_JSON` sink. Failures
/// are reported to stderr but never fail the bench run itself — a
/// missing directory must not turn a measurement session into a crash.
fn append_raw_line(path: &str, line: &str) {
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = appended {
        eprintln!("criterion: cannot append to BENCH_JSON={path}: {e}");
    }
}

/// Re-export kept for code written against `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut group = Criterion::default();
        let mut g = group.benchmark_group("selftest");
        g.throughput(Throughput::Elements(100));
        let mut measured = false;
        g.bench_with_input(BenchmarkId::new("noop", 1), &1u32, |b, _| {
            b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
            measured = true;
        });
        g.finish();
        assert!(measured);
    }

    #[test]
    fn bench_json_sink_accumulates_raw_lines() {
        let path = std::env::temp_dir().join(format!("criterion_raw_{}.tsv", std::process::id()));
        let path = path.to_string_lossy().into_owned();
        let _ = std::fs::remove_file(&path);
        append_raw_line(&path, "g/a\t100\n");
        append_raw_line(&path, "g/b/2\t250\n");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "g/a\t100\ng/b/2\t250\n");
        std::fs::remove_file(&path).unwrap();
    }
}
