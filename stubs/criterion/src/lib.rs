//! Offline stand-in for the `criterion` crate.
//!
//! Implements the bench-definition API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`],
//! [`criterion_main!`] — on a deliberately simple wall-clock harness:
//! a short warm-up, then timed batches until a fixed measurement
//! budget, reporting the per-iteration mean and derived throughput to
//! stdout. No statistics, plots, or saved baselines; the numbers are
//! honest medians-of-means good enough for before/after comparisons.

use std::time::{Duration, Instant};

/// How units of work relate to wall time, for derived throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// A benchmark's identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id that is just the displayed parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Measured mean time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`: warms up briefly, then runs timed batches until
    /// the measurement budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one run, at most ~50 ms.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget || warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;

        // Measurement: batches sized to ~10 ms, total budget ~200 ms.
        let budget = Duration::from_millis(200);
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < budget {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.elapsed_per_iter = total / iters.max(1) as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Ignored knob kept for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored knob kept for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.name, bencher.elapsed_per_iter);
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.name, bencher.elapsed_per_iter);
    }

    fn report(&self, name: &str, per_iter: Duration) {
        let ns = per_iter.as_nanos().max(1);
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                let mib_s = b as f64 * 1e9 / ns as f64 / (1024.0 * 1024.0);
                format!("  ({mib_s:.1} MiB/s)")
            }
            Some(Throughput::Elements(e)) => {
                let me_s = e as f64 * 1e9 / ns as f64 / 1e6;
                format!("  ({me_s:.2} Melem/s)")
            }
            None => String::new(),
        };
        println!("{}/{name:<28} {ns:>12} ns/iter{rate}", self.name);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export kept for code written against `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut group = Criterion::default();
        let mut g = group.benchmark_group("selftest");
        g.throughput(Throughput::Elements(100));
        let mut measured = false;
        g.bench_with_input(BenchmarkId::new("noop", 1), &1u32, |b, _| {
            b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
            measured = true;
        });
        g.finish();
        assert!(measured);
    }
}
