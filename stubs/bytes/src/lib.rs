//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], [`Buf`], and [`BufMut`] with the
//! little-endian accessor subset the EPILOG codec uses. [`Bytes`] is a
//! plain `Vec<u8>` plus a read cursor — no reference-counted slicing —
//! which is all a sequential trace decoder needs.

use std::fmt;

/// An immutable byte buffer with a consuming read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// The unread bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Number of unread bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Copies the unread bytes into a new vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} unread)", self.len())
    }
}

/// A growable byte buffer for encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Number of bytes written so far.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }
}

/// Read access to a byte buffer (little-endian subset).
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `n` bytes into a fresh [`Bytes`]. Panics if `n > remaining()`.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
    /// Fills `dst` from the buffer. Panics on underrun.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte. Panics on underrun.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian `u32`. Panics on underrun.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `i32`. Panics on underrun.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }
    /// Reads a little-endian `u64`. Panics on underrun.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Reads a little-endian `f64`. Panics on underrun.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "copy_to_bytes past end of buffer");
        let out = Bytes::from(self.data[self.pos..self.pos + n].to_vec());
        self.pos += n;
        out
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice past end of buffer"
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Write access to a byte buffer (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i32_le(-42);
        w.put_u64_le(u64::MAX - 1);
        w.put_f64_le(2.5);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32_le(), -42);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), 2.5);
        let tail = r.copy_to_bytes(3);
        assert_eq!(tail.as_slice(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn underrun_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }
}
