#!/usr/bin/env sh
# CI gate, structured as named, individually-timed stages so gate
# regressions are attributable to a subsystem at a glance:
#
#   build   tier-1 release build + the release binaries later stages use
#   test    tier-1 tests, the full workspace suites, miri (if installed)
#   lint    fmt/clippy/doc hygiene, panic-free server sources, the lint
#           and check corpora
#   store   recovery corpus, thread-count determinism, .cubec-vs-XML
#           byte equality, pack/unpack round-trip, the speedup gate
#   serve   /eval byte-equality with the CLI, caches, pre-flight, drain
#   chaos   fault-injected serving, fsck, the serve_chaos harness
#   kernel  fused-kernel unit suite and the fused-vs-unfused
#           differential gate (CLI and server)
#
# `CI_STAGES="lint kernel" ci/check.sh` runs a subset (comma or space
# separated). Stages are independent: whichever subset is selected,
# shared prerequisites (release binaries, the generated corpus) are
# built on first use. A per-stage timing summary is printed at the end.
#
# The build and test stages are the tier-1 gate from ROADMAP.md,
# verbatim — a red run there must mean a red tier-1. Benches are
# compiled (clippy --all-targets) but never *run* here, so adding
# benches cannot slow this gate; run them explicitly with
# `make bench-batch` / `make bench-fused` / `ci/bench_gate.sh`.
set -eu

cd "$(dirname "$0")/.."

STAGES="$(printf '%s' "${CI_STAGES:-build test lint store serve chaos kernel}" | tr ',' ' ')"

work="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT

det="$work/det"

# -- shared prerequisites (built on first use) -------------------------------

## The `cube` CLI and the corpus generator, release profile.
need_bins() {
    if [ ! -f "$work/.bins" ]; then
        cargo build --release -q -p cube-cli
        cargo build --release -q -p cube-bench --bins
        : >"$work/.bins"
    fi
}

## The 153,600-value determinism corpus (6 runs), packed to .cubec as
## well so mixed-format gates can pick either side.
need_corpus() {
    if [ ! -f "$work/.corpus" ]; then
        need_bins
        ./target/release/gen_corpus "$det/corpus" 6 >/dev/null
        for f in "$det"/corpus/*.cube; do
            ./target/release/cube pack "$f" "${f%.cube}.cubec" >/dev/null
        done
        : >"$work/.corpus"
    fi
}

## Scrapes `listening on HOST:PORT` from the server log in $1 into $addr.
serve_addr() {
    addr=""
    tries=0
    while [ -z "$addr" ]; do
        addr="$(sed -n 's/^listening on //p' "$1")"
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ]; then
            echo "cube serve did not report its address:" >&2
            cat "$1" >&2
            exit 1
        fi
        [ -n "$addr" ] || sleep 0.1
    done
}

## Ingests run0.cube run1.cube run2.cubec run3.cubec into the server at
## $addr; leaves the ids in $ids.
ingest_corpus() {
    ids=""
    for f in run0.cube run1.cube run2.cubec run3.cubec; do
        reply="$(curl -sS -H 'Expect:' -X PUT \
            --data-binary @"$det/corpus/$f" "http://$addr/experiments")"
        id="$(printf '%s' "$reply" | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')"
        if [ -z "$id" ]; then
            echo "ingest of $f returned no id: $reply" >&2
            exit 1
        fi
        ids="$ids $id"
    done
}

# -- build -------------------------------------------------------------------

stage_build() {
    echo "== tier-1: cargo build --release"
    cargo build --release
    echo "== build: release binaries for the gate stages"
    need_bins
}

# -- test --------------------------------------------------------------------

stage_test() {
    echo "== tier-1: cargo test -q"
    cargo test -q

    echo "== workspace tests"
    # The tier-1 step above already ran the umbrella crate (the root
    # package); exclude it here so its integration suites don't run twice.
    cargo test --workspace --exclude cube-suite -q

    echo "== miri gate: pool facade, server cache, fused kernels (when available)"
    if cargo miri --version >/dev/null 2>&1; then
        make miri
    else
        echo "skipped: the miri component is not installed on this toolchain"
    fi
}

# -- lint --------------------------------------------------------------------

stage_lint() {
    need_bins

    echo "== hygiene: fmt, clippy -D warnings, doc -D warnings"
    make fmt-check clippy doc

    echo "== hygiene: server request paths are panic-free (ci/lint_source.sh)"
    ./ci/lint_source.sh

    echo "== lint gate: valid fixtures pass --deny warnings"
    ./target/release/cube lint --deny warnings tests/fixtures/valid/*.cube

    echo "== lint gate: derived experiments pass --deny warnings (closure)"
    ./target/release/cube diff tests/fixtures/valid/full.cube \
        tests/fixtures/valid/minimal.cube -o "$work/derived.cube"
    ./target/release/cube lint --deny warnings "$work/derived.cube"

    echo "== lint gate: malformed corpus reports its documented codes"
    for cube in tests/fixtures/malformed/*.cube; do
        expect="${cube%.cube}.expect"
        if out="$(./target/release/cube lint --deny warnings "$cube")"; then
            echo "lint accepted malformed file $cube" >&2
            exit 1
        fi
        for code in $(cat "$expect"); do
            case "$out" in
            *"$code"*) ;;
            *)
                echo "lint output for $cube is missing code $code:" >&2
                echo "$out" >&2
                exit 1
                ;;
            esac
        done
    done

    echo "== check gate: warning-free expressions pass --deny warnings"
    # Mixed .cube/.cubec operands from the generated corpus share one
    # shape, so reductions over them are statically clean; the .cubec
    # side exercises the metadata-only open path.
    need_corpus
    ./target/release/cube check "mean(run0,run1,run2)" \
        "$det/corpus/run0.cube" "$det/corpus/run1.cube" "$det/corpus/run2.cubec" \
        --deny warnings >/dev/null
    ./target/release/cube check "diff(mean(run0,run1),mean(run2,run3))" \
        "$det/corpus/run0.cubec" "$det/corpus/run1.cubec" \
        "$det/corpus/run2.cubec" "$det/corpus/run3.cubec" \
        --deny warnings >/dev/null

    echo "== check gate: golden fixtures report their documented codes"
    for expr_file in tests/fixtures/check/a*.expr; do
        # a001-unresolved.expr documents code A001, and so on.
        code="$(basename "$expr_file" | cut -c1-4 | tr 'a' 'A')"
        set +e
        out="$(./target/release/cube check "$(cat "$expr_file")" \
            tests/fixtures/valid/full.cube tests/fixtures/valid/minimal.cube \
            tests/fixtures/check/operands/twin.cube \
            tests/fixtures/check/operands/disjoint.cube \
            --format json)"
        set -e
        case "$out" in
        *"\"$code\""*) ;;
        *)
            echo "cube check output for $expr_file is missing code $code:" >&2
            echo "$out" >&2
            exit 1
            ;;
        esac
    done
}

# -- store -------------------------------------------------------------------

stage_store() {
    need_corpus

    echo "== recovery gate: corrupt corpus salvages to its documented prefixes"
    for cube in tests/fixtures/corrupt/*.cube tests/fixtures/corrupt/*.cubec; do
        expect="${cube%.*}.expect"
        out_file="$work/$(basename "$cube")"
        rm -f "$out_file"
        set +e
        ./target/release/cube repair "$cube" "$out_file"
        status=$?
        set -e
        if [ -f "$expect" ]; then
            # Partial recovery: documented exit code 1 and a byte-exact
            # prefix snapshot.
            if [ "$status" -ne 1 ]; then
                echo "cube repair $cube exited $status, expected 1" >&2
                exit 1
            fi
            if ! cmp -s "$out_file" "$expect"; then
                echo "repaired output for $cube diverges from $expect" >&2
                exit 1
            fi
            # The repaired prefix must be strictly readable and lint-clean.
            ./target/release/cube lint --deny warnings "$out_file" >/dev/null
        else
            # Unrecoverable: documented exit code 2 and no output written.
            if [ "$status" -ne 2 ]; then
                echo "cube repair $cube exited $status, expected 2" >&2
                exit 1
            fi
            if [ -e "$out_file" ]; then
                echo "cube repair $cube wrote output despite failing" >&2
                exit 1
            fi
        fi
    done

    echo "== recovery gate: intact files repair with exit 0"
    ./target/release/cube repair tests/fixtures/valid/full.cube "$work/intact.cube"

    echo "== recovery gate: salvage is unchanged under a busy worker pool"
    # The salvage path shares the pool with everything else; repairs must
    # produce the same prefixes whether the pool has 1 worker or 8.
    CUBE_THREADS=8 cargo test -q --test recovery_corpus

    echo "== determinism gate: derived files are thread-count-independent"
    # Evaluate the three pipeline operations over the 153,600-value
    # corpus at 1, 2, and 8 threads, and require byte-identical
    # outputs. This is the end-to-end check behind the facade's
    # "results never depend on the pool size" contract.
    for t in 1 2 8; do
        ./target/release/cube --threads "$t" stats "$det/mean.t$t.cube" \
            "$det"/corpus/*.cube --op mean >/dev/null
        ./target/release/cube --threads "$t" diff \
            "$det/corpus/run0.cube" "$det/corpus/run1.cube" \
            -o "$det/diff.t$t.cube" >/dev/null
        ./target/release/cube --threads "$t" merge \
            "$det/corpus/run0.cube" "$det/corpus/run1.cube" \
            -o "$det/merge.t$t.cube" >/dev/null
    done
    for op in mean diff merge; do
        for t in 2 8; do
            if ! cmp "$det/$op.t1.cube" "$det/$op.t$t.cube"; then
                echo "cube $op output differs between --threads 1 and --threads $t" >&2
                exit 1
            fi
        done
    done

    echo "== store gate: .cubec backend matches the XML path byte-for-byte"
    # Re-run the reductions over the columnar backend at every tracked
    # thread count, and require the outputs to be byte-identical to the
    # XML-path outputs produced above. (cold-open latency is tracked
    # separately: ci/bench_gate.sh holds the store/cold_open/* metrics
    # to the committed baseline.)
    for t in 1 2 8; do
        ./target/release/cube --threads "$t" stats "$det/mean.store.t$t.cube" \
            "$det"/corpus/*.cubec --op mean >/dev/null
        if ! cmp "$det/mean.t1.cube" "$det/mean.store.t$t.cube"; then
            echo "cube stats over .cubec differs from the XML path at --threads $t" >&2
            exit 1
        fi
        ./target/release/cube --threads "$t" diff \
            "$det/corpus/run0.cubec" "$det/corpus/run1.cubec" \
            -o "$det/diff.store.t$t.cube" >/dev/null
        if ! cmp "$det/diff.t1.cube" "$det/diff.store.t$t.cube"; then
            echo "cube diff over .cubec differs from the XML path at --threads $t" >&2
            exit 1
        fi
    done

    echo "== store gate: pack/unpack round-trip is byte-exact"
    ./target/release/cube unpack "$det/corpus/run0.cubec" "$det/run0.back.cube" >/dev/null
    if ! cmp "$det/corpus/run0.cube" "$det/run0.back.cube"; then
        echo "unpack(pack(x)) diverged from x" >&2
        exit 1
    fi

    echo "== speedup gate: stats --op mean, 4 threads vs 1"
    # Wall-clock acceptance check; only meaningful with real cores to
    # spread over, so skip (with a note) on smaller machines.
    if [ "$(nproc)" -ge 4 ]; then
        best_ns() {
            best=""
            for _ in 1 2 3; do
                start=$(date +%s%N)
                ./target/release/cube --threads "$1" stats "$det/speed.cube" \
                    "$det"/corpus/*.cube --op mean >/dev/null
                end=$(date +%s%N)
                ns=$((end - start))
                if [ -z "$best" ] || [ "$ns" -lt "$best" ]; then best=$ns; fi
            done
            echo "$best"
        }
        best_ns 1 >/dev/null # warm the page cache
        t1=$(best_ns 1)
        t4=$(best_ns 4)
        echo "stats --op mean: ${t1} ns at 1 thread, ${t4} ns at 4 threads"
        if ! awk "BEGIN{exit !($t1 >= 2.0 * $t4)}"; then
            echo "speedup gate failed: expected >=2x at 4 threads" >&2
            exit 1
        fi
    else
        echo "skipped: $(nproc) core(s) < 4 (needs real parallelism to measure)"
    fi
}

# -- serve -------------------------------------------------------------------

stage_serve() {
    need_corpus

    echo "== serve gate: /eval bytes match the CLI at every thread count"
    # Boot the analysis server on an ephemeral port over a fresh repository,
    # ingest the determinism corpus through the HTTP API (both formats),
    # and require every /eval response — cache miss and cache hit — to be
    # byte-identical to what `cube stats` writes from the same objects at
    # --threads 1, 2, and 8. Then SIGTERM must drain and exit 0.
    sdir="$work/serve"
    mkdir -p "$sdir"
    ./target/release/cube serve --repo "$sdir/repo" --port 0 --workers 2 \
        >"$sdir/serve.log" 2>&1 &
    serve_pid=$!
    serve_addr "$sdir/serve.log"
    ingest_corpus
    # shellcheck disable=SC2086
    set -- $ids
    objects=""
    for id in "$@"; do
        objects="$objects $sdir/repo/objects/$(printf '%s' "$id" | cut -c1-2)/$id.cubec"
    done
    mean_expr="mean($1,$2,$3,$4)"
    diff_expr="diff(mean($1,$2),mean($3,$4))"

    round=0
    for t in 1 2 8; do
        # shellcheck disable=SC2086
        ./target/release/cube --threads "$t" stats "$sdir/cli.mean.t$t.cube" \
            $objects --op mean >/dev/null
        # shellcheck disable=SC2086
        ./target/release/cube --threads "$t" stats "$sdir/cli.diff.t$t.cube" \
            $objects --minus 2 >/dev/null
        for kind in mean diff; do
            case "$kind" in
            mean) expr="$mean_expr" ;;
            *) expr="$diff_expr" ;;
            esac
            curl -sS -H 'Expect:' -X POST --data "$expr" \
                -D "$sdir/hdr.$kind.t$t" -o "$sdir/srv.$kind.t$t.cube" \
                "http://$addr/eval"
            if ! cmp -s "$sdir/cli.$kind.t$t.cube" "$sdir/srv.$kind.t$t.cube"; then
                echo "/eval '$expr' differs from the CLI at --threads $t" >&2
                exit 1
            fi
            if [ "$round" -eq 0 ]; then
                want=miss
            else
                want=hit
            fi
            if ! grep -qi "x-cache: $want" "$sdir/hdr.$kind.t$t"; then
                echo "/eval '$expr' round $round expected X-Cache: $want" >&2
                cat "$sdir/hdr.$kind.t$t" >&2
                exit 1
            fi
        done
        round=$((round + 1))
    done

    echo "== serve gate: /eval pre-flight rejects invalid expressions"
    # A missing operand id must come back as the checker's stable A001
    # code with a structured diagnostics array — and must not grow the
    # result cache (nothing is evaluated, nothing is inserted).
    cache_entries() {
        curl -sS "http://$addr/stats" \
            | sed -n 's/.*"result_cache":{[^}]*"entries":\([0-9]*\).*/\1/p'
    }
    entries_before="$(cache_entries)"
    status="$(curl -sS -o "$sdir/preflight.json" -w '%{http_code}' -H 'Expect:' \
        -X POST --data 'mean(00000000deadbeef)' "http://$addr/eval")"
    if [ "$status" != "404" ]; then
        echo "/eval with a missing id answered $status, expected 404:" >&2
        cat "$sdir/preflight.json" >&2
        exit 1
    fi
    grep -q '"code":"A001"' "$sdir/preflight.json"
    grep -q '"diagnostics":\[' "$sdir/preflight.json"
    entries_after="$(cache_entries)"
    if [ "$entries_before" != "$entries_after" ]; then
        echo "pre-flight rejection changed the result cache" \
            "($entries_before -> $entries_after entries)" >&2
        exit 1
    fi
    # /check exposes the same analysis: a statically-zero diff reports
    # A008 and the zero() rewrite without evaluating anything.
    curl -sS -H 'Expect:' -X POST --data "diff($1,$1)" \
        "http://$addr/check" >"$sdir/check.json"
    grep -q '"A008"' "$sdir/check.json"
    grep -q '"rewritten":"zero()"' "$sdir/check.json"
    # The fused cost block rides along in /check (and `cube check`).
    curl -sS -H 'Expect:' -X POST --data "$mean_expr" \
        "http://$addr/check" >"$sdir/check.fused.json"
    grep -q '"fused":{"instrs":' "$sdir/check.fused.json"

    kill -TERM "$serve_pid"
    set +e
    wait "$serve_pid"
    serve_status=$?
    set -e
    serve_pid=""
    if [ "$serve_status" -ne 0 ]; then
        echo "cube serve exited $serve_status after SIGTERM:" >&2
        cat "$sdir/serve.log" >&2
        exit 1
    fi
    grep -q "shutdown complete" "$sdir/serve.log"
}

# -- chaos -------------------------------------------------------------------

stage_chaos() {
    need_corpus

    echo "== chaos gate: /eval under a fixed fault schedule stays sound"
    # Boot a fault-free reference server with all caches off (so every
    # request drives real disk reads), record the canonical /eval bytes,
    # then re-boot the same repository under a fixed CUBE_FAULTS seed and
    # require: every status within the fault model (200/206/503/504),
    # every 200 byte-identical to the reference, and a clean SIGTERM
    # drain while faults are still firing. The driver is single-threaded,
    # so the seeded schedule makes this gate exactly reproducible.
    cdir="$work/chaos"
    mkdir -p "$cdir"
    ./target/release/cube serve --repo "$cdir/repo" --port 0 --workers 2 \
        --cache-results 0 --cache-plans 0 --cache-handles 0 \
        >"$cdir/ref.log" 2>&1 &
    serve_pid=$!
    serve_addr "$cdir/ref.log"
    ingest_corpus
    # shellcheck disable=SC2086
    set -- $ids
    chaos_mean="mean($1,$2,$3,$4)"
    chaos_diff="diff(mean($1,$2),mean($3,$4))"
    for kind in mean diff; do
        case "$kind" in
        mean) expr="$chaos_mean" ;;
        *) expr="$chaos_diff" ;;
        esac
        status="$(curl -sS -H 'Expect:' -X POST --data "$expr" \
            -o "$cdir/ref.$kind.cube" -w '%{http_code}' "http://$addr/eval")"
        if [ "$status" != "200" ]; then
            echo "fault-free reference /eval '$expr' answered $status" >&2
            exit 1
        fi
    done
    kill -TERM "$serve_pid"
    wait "$serve_pid"
    serve_pid=""

    CUBE_FAULTS='seed=20260808,read_error=0.15,torn_read=0.08,checksum_flip=0.08,latency=2@0.25' \
        ./target/release/cube serve --repo "$cdir/repo" --port 0 --workers 2 \
        --cache-results 0 --cache-plans 0 --cache-handles 0 \
        --retries 3 --backoff-ms 1 --breaker 4 \
        >"$cdir/chaos.log" 2>&1 &
    serve_pid=$!
    serve_addr "$cdir/chaos.log"
    successes=0
    round=0
    while [ "$round" -lt 6 ]; do
        for kind in mean diff; do
            case "$kind" in
            mean) expr="$chaos_mean" ;;
            *) expr="$chaos_diff" ;;
            esac
            # Odd rounds opt into degraded mode; 200s must still be
            # byte-identical either way.
            if [ $((round % 2)) -eq 1 ]; then
                path="/eval?keep_going=1"
            else
                path="/eval"
            fi
            status="$(curl -sS -H 'Expect:' -X POST --data "$expr" \
                -o "$cdir/got.$kind" -w '%{http_code}' "http://$addr$path")"
            case "$status" in
            200)
                if ! cmp -s "$cdir/ref.$kind.cube" "$cdir/got.$kind"; then
                    echo "faulted 200 for '$expr' diverged from the fault-free run" >&2
                    exit 1
                fi
                successes=$((successes + 1))
                ;;
            206)
                grep -q '"status":"degraded"' "$cdir/got.$kind"
                grep -q '"omitted_operands":\[{' "$cdir/got.$kind"
                ;;
            503 | 504)
                grep -q '"code":"' "$cdir/got.$kind"
                ;;
            *)
                echo "status $status outside the fault model for '$expr':" >&2
                cat "$cdir/got.$kind" >&2
                exit 1
                ;;
            esac
        done
        round=$((round + 1))
    done
    if [ "$successes" -eq 0 ]; then
        echo "no /eval ever succeeded under the CI fault seed" >&2
        exit 1
    fi
    curl -sS "http://$addr/healthz" | grep -q '"ok":true'
    curl -sS "http://$addr/stats" | grep -q '"faults":{'
    kill -TERM "$serve_pid"
    set +e
    wait "$serve_pid"
    chaos_status=$?
    set -e
    serve_pid=""
    if [ "$chaos_status" -ne 0 ]; then
        echo "cube serve exited $chaos_status after SIGTERM under faults:" >&2
        cat "$cdir/chaos.log" >&2
        exit 1
    fi
    grep -q "shutdown complete" "$cdir/chaos.log"

    echo "== chaos gate: fsck passes over the served repository"
    # In-memory fault injection never touches the disk: the repository
    # the chaos server just hammered must still verify clean.
    ./target/release/cube fsck "$cdir/repo" >/dev/null

    echo "== chaos gate: serve_chaos harness"
    cargo test -q --test serve_chaos
}

# -- kernel ------------------------------------------------------------------

stage_kernel() {
    need_corpus

    echo "== kernel gate: fused-kernel unit suite (bitwise vs the scalar oracle)"
    cargo test -q -p cube-algebra --test kernel_props

    echo "== kernel gate: --fusion on|off outputs are byte-identical (threads 1/2/8)"
    # The fused single-pass kernels must reproduce the unfused tree
    # walker bit for bit over the 153K-value corpus, for every surfaced
    # operation, at every tracked thread count — over both the XML and
    # the columnar backend. This is the determinism contract from
    # docs/KERNELS.md, enforced end-to-end.
    kdir="$work/kernel"
    mkdir -p "$kdir"
    for t in 1 2 8; do
        for fus in on off; do
            ./target/release/cube --threads "$t" --fusion "$fus" \
                stats "$kdir/mean.$fus.t$t.cube" \
                "$det"/corpus/*.cube --op mean >/dev/null
            ./target/release/cube --threads "$t" --fusion "$fus" \
                stats "$kdir/stddev.$fus.t$t.cube" \
                "$det"/corpus/*.cube --op stddev >/dev/null
            ./target/release/cube --threads "$t" --fusion "$fus" \
                stats "$kdir/minus.$fus.t$t.cube" \
                "$det"/corpus/*.cube --minus 3 >/dev/null
            ./target/release/cube --threads "$t" --fusion "$fus" diff \
                "$det/corpus/run0.cube" "$det/corpus/run1.cube" \
                -o "$kdir/diff.$fus.t$t.cube" >/dev/null
            ./target/release/cube --threads "$t" --fusion "$fus" merge \
                "$det/corpus/run0.cube" "$det/corpus/run1.cube" \
                -o "$kdir/merge.$fus.t$t.cube" >/dev/null
        done
        for op in mean stddev minus diff merge; do
            if ! cmp "$kdir/$op.on.t$t.cube" "$kdir/$op.off.t$t.cube"; then
                echo "cube $op differs between --fusion on and off at --threads $t" >&2
                exit 1
            fi
            if ! cmp "$kdir/$op.on.t1.cube" "$kdir/$op.on.t$t.cube"; then
                echo "fused cube $op differs between --threads 1 and --threads $t" >&2
                exit 1
            fi
        done
    done
    # Columnar operands stream page-granular blocks through the fused
    # loop; the bytes still must not move.
    ./target/release/cube --threads 2 --fusion on stats "$kdir/store.on.cube" \
        "$det"/corpus/*.cubec --minus 3 >/dev/null
    ./target/release/cube --threads 2 --fusion off stats "$kdir/store.off.cube" \
        "$det"/corpus/*.cubec --minus 3 >/dev/null
    if ! cmp "$kdir/store.on.cube" "$kdir/store.off.cube"; then
        echo "cube stats over .cubec differs between --fusion on and off" >&2
        exit 1
    fi

    echo "== kernel gate: /eval X-Cache behavior is unchanged by fusion"
    # A fused server (the default) must answer miss-then-hit with bytes
    # equal to the *unfused* CLI; a CUBE_FUSION=off server must answer
    # the same bytes with the same miss-then-hit sequence. Fusion being
    # invisible in the bytes is what keeps the result caches sound.
    for mode in on off; do
        mdir="$kdir/serve.$mode"
        mkdir -p "$mdir"
        CUBE_FUSION="$mode" ./target/release/cube serve --repo "$mdir/repo" \
            --port 0 --workers 2 >"$mdir/serve.log" 2>&1 &
        serve_pid=$!
        serve_addr "$mdir/serve.log"
        curl -sS "http://$addr/stats" >"$mdir/stats.json"
        if [ "$mode" = on ]; then
            grep -q '"fusion":true' "$mdir/stats.json"
        else
            grep -q '"fusion":false' "$mdir/stats.json"
        fi
        ingest_corpus
        # shellcheck disable=SC2086
        set -- $ids
        expr="diff(mean($1,$2),mean($3,$4))"
        for round in 0 1; do
            curl -sS -H 'Expect:' -X POST --data "$expr" \
                -D "$mdir/hdr.$round" -o "$mdir/srv.$round.cube" \
                "http://$addr/eval"
            if [ "$round" -eq 0 ]; then want=miss; else want=hit; fi
            if ! grep -qi "x-cache: $want" "$mdir/hdr.$round"; then
                echo "/eval (fusion $mode) round $round expected X-Cache: $want" >&2
                cat "$mdir/hdr.$round" >&2
                exit 1
            fi
        done
        if ! cmp -s "$mdir/srv.0.cube" "$mdir/srv.1.cube"; then
            echo "/eval (fusion $mode) miss and hit bytes differ" >&2
            exit 1
        fi
        objects=""
        for id in "$@"; do
            objects="$objects $mdir/repo/objects/$(printf '%s' "$id" | cut -c1-2)/$id.cubec"
        done
        # shellcheck disable=SC2086
        ./target/release/cube --fusion off stats "$mdir/cli.unfused.cube" \
            $objects --minus 2 >/dev/null
        if ! cmp -s "$mdir/cli.unfused.cube" "$mdir/srv.0.cube"; then
            echo "/eval (fusion $mode) bytes differ from the unfused CLI" >&2
            exit 1
        fi
        kill -TERM "$serve_pid"
        wait "$serve_pid"
        serve_pid=""
    done
}

# -- driver ------------------------------------------------------------------

timing="$work/timing"
: >"$timing"
total=0
for s in $STAGES; do
    case "$s" in
    build | test | lint | store | serve | chaos | kernel) ;;
    *)
        echo "ci/check.sh: unknown stage '$s'" \
            "(expected: build test lint store serve chaos kernel)" >&2
        exit 2
        ;;
    esac
    echo "==== stage: $s"
    stage_start=$(date +%s)
    "stage_$s"
    stage_dur=$(($(date +%s) - stage_start))
    total=$((total + stage_dur))
    printf '%-8s %5ss\n' "$s" "$stage_dur" >>"$timing"
done

echo "== stage timing summary"
cat "$timing"
printf '%-8s %5ss\n' total "$total"
echo "== ci/check.sh: all green ($STAGES)"
