#!/usr/bin/env sh
# CI gate. The first two steps are the tier-1 gate from ROADMAP.md,
# verbatim — a red run there must mean a red tier-1. The rest is the
# full hygiene sweep: every workspace test (including the batch
# differential suite and the property laws), formatting, clippy, docs.
#
# Benches are compiled (clippy --all-targets) but never *run* here, so
# adding benches cannot slow this gate; run them explicitly with
# `make bench-batch` / `make bench-xml`.
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== workspace tests"
cargo test --workspace -q

echo "== hygiene: fmt, clippy -D warnings, doc -D warnings"
make fmt-check clippy doc

echo "== lint gate: valid fixtures pass --deny warnings"
# The tier-1 build covers the umbrella crate only; the `cube` binary
# needs an explicit package build.
cargo build --release -q -p cube-cli
./target/release/cube lint --deny warnings tests/fixtures/valid/*.cube

echo "== lint gate: derived experiments pass --deny warnings (closure)"
lint_tmp="$(mktemp -d)"
trap 'rm -rf "$lint_tmp"' EXIT
./target/release/cube diff tests/fixtures/valid/full.cube \
    tests/fixtures/valid/minimal.cube -o "$lint_tmp/derived.cube"
./target/release/cube lint --deny warnings "$lint_tmp/derived.cube"

echo "== lint gate: malformed corpus reports its documented codes"
for cube in tests/fixtures/malformed/*.cube; do
    expect="${cube%.cube}.expect"
    if out="$(./target/release/cube lint --deny warnings "$cube")"; then
        echo "lint accepted malformed file $cube" >&2
        exit 1
    fi
    for code in $(cat "$expect"); do
        case "$out" in
        *"$code"*) ;;
        *)
            echo "lint output for $cube is missing code $code:" >&2
            echo "$out" >&2
            exit 1
            ;;
        esac
    done
done

echo "== recovery gate: corrupt corpus salvages to its documented prefixes"
for cube in tests/fixtures/corrupt/*.cube; do
    expect="${cube%.cube}.expect"
    out_file="$lint_tmp/$(basename "$cube")"
    rm -f "$out_file"
    set +e
    ./target/release/cube repair "$cube" "$out_file"
    status=$?
    set -e
    if [ -f "$expect" ]; then
        # Partial recovery: documented exit code 1 and a byte-exact
        # prefix snapshot.
        if [ "$status" -ne 1 ]; then
            echo "cube repair $cube exited $status, expected 1" >&2
            exit 1
        fi
        if ! cmp -s "$out_file" "$expect"; then
            echo "repaired output for $cube diverges from $expect" >&2
            exit 1
        fi
        # The repaired prefix must be strictly readable and lint-clean.
        ./target/release/cube lint --deny warnings "$out_file" >/dev/null
    else
        # Unrecoverable: documented exit code 2 and no output written.
        if [ "$status" -ne 2 ]; then
            echo "cube repair $cube exited $status, expected 2" >&2
            exit 1
        fi
        if [ -e "$out_file" ]; then
            echo "cube repair $cube wrote output despite failing" >&2
            exit 1
        fi
    fi
done

echo "== recovery gate: intact files repair with exit 0"
./target/release/cube repair tests/fixtures/valid/full.cube "$lint_tmp/intact.cube"

echo "== ci/check.sh: all green"
