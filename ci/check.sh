#!/usr/bin/env sh
# CI gate. The first two steps are the tier-1 gate from ROADMAP.md,
# verbatim — a red run there must mean a red tier-1. The rest is the
# full hygiene sweep: every workspace test (including the batch
# differential suite and the property laws), formatting, clippy, docs.
#
# Benches are compiled (clippy --all-targets) but never *run* here, so
# adding benches cannot slow this gate; run them explicitly with
# `make bench-batch` / `make bench-xml`.
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== workspace tests"
cargo test --workspace -q

echo "== hygiene: fmt, clippy -D warnings, doc -D warnings"
make fmt-check clippy doc

echo "== ci/check.sh: all green"
