#!/usr/bin/env sh
# CI perf-regression gate, median-of-3.
#
# Runs the tracked benchmark set in JSON mode (`make bench-json`) three
# times, folds the runs into per-metric medians (`bench_gate median` →
# BENCH_5.json at the repo root), and fails when any tracked metric's
# median is more than 15% slower than the committed baseline in
# ci/bench_baseline.json, or has disappeared from the run. Comparing
# medians keeps one noisy run — a scheduler hiccup, a thermal dip — from
# tripping the threshold; a real regression shifts all three runs.
#
# The comparison prints a signed delta per metric and a closing summary
# of everything over budget, so the log tail names every casualty.
#
# The baseline is a measurement on one reference machine, not a law of
# nature: after an intentional performance change (or a hardware move),
# re-baseline with
#
#     sh ci/bench_gate.sh --rebaseline   # or: cp BENCH_5.json ci/bench_baseline.json
#
# and commit both files with a note on what moved and why. Never
# re-baseline to silence a regression you cannot explain.
set -eu
cd "$(dirname "$0")/.."

RUNS="${BENCH_GATE_RUNS:-3}"

i=1
run_files=""
while [ "$i" -le "$RUNS" ]; do
  echo "== bench run $i/$RUNS"
  make bench-json
  cp BENCH_5.json "target/bench_run_$i.json"
  run_files="$run_files target/bench_run_$i.json"
  i=$((i + 1))
done

# shellcheck disable=SC2086  # run_files is a deliberate word list
cargo run -q -p cube-bench --bin bench_gate -- median BENCH_5.json $run_files

if [ "${1:-}" = "--rebaseline" ]; then
  cp BENCH_5.json ci/bench_baseline.json
  echo "bench_gate: re-baselined ci/bench_baseline.json from median of $RUNS runs"
  exit 0
fi

cargo run -q -p cube-bench --bin bench_gate -- \
  compare BENCH_5.json ci/bench_baseline.json --max-regression 0.15
