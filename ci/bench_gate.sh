#!/usr/bin/env sh
# CI perf-regression gate.
#
# Runs the tracked benchmark set in JSON mode (`make bench-json`, which
# writes BENCH_5.json at the repo root) and fails when any tracked
# metric is more than 15% slower than the committed baseline in
# ci/bench_baseline.json, or has disappeared from the run.
#
# The baseline is a measurement on one reference machine, not a law of
# nature: after an intentional performance change (or a hardware move),
# re-baseline with
#
#     make bench-json && cp BENCH_5.json ci/bench_baseline.json
#
# and commit both files with a note on what moved and why. Never
# re-baseline to silence a regression you cannot explain.
set -eu
cd "$(dirname "$0")/.."

make bench-json

cargo run -q -p cube-bench --bin bench_gate -- \
  compare BENCH_5.json ci/bench_baseline.json --max-regression 0.15
