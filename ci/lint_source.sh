#!/usr/bin/env sh
# Source-level lint for the server's request-handling paths.
#
# cube-serve promises that no request can panic a worker: a panicking
# worker poisons the shared caches and strands queued connections, so
# the crate recovers poisoned locks (cache::lock_recover) and routes
# every failure through ServeError instead of unwinding. This script
# keeps that promise greppable. Rules (stable ids, used in CI output):
#
#   SL001  `.unwrap()` is banned in cube-serve non-test code
#   SL002  `.expect(`  is banned in cube-serve non-test code
#   SL003  `panic!`    is banned in cube-serve non-test code
#   SL004  cache.rs and repo.rs must document the lock-acquisition
#          order (a "LOCK ORDER" comment) next to their mutexes
#   SL005  no line may acquire two locks (every cube-serve mutex is a
#          leaf lock; two `.lock(` on one line would break that)
#
# Everything from the first `#[cfg(test)]` line to the end of a file
# is test code and exempt: tests may unwrap freely.
set -eu

cd "$(dirname "$0")/.."

fail=0

# Non-test prefix of a source file (everything before `#[cfg(test)]`),
# with `file:line:` prefixes for findings.
nontest() {
    awk '/#\[cfg\(test\)\]/{exit} {print FILENAME ":" FNR ":" $0}' "$1"
}

for f in crates/cube-serve/src/*.rs; do
    if out="$(nontest "$f" | grep -F '.unwrap()')"; then
        echo "SL001: .unwrap() in server request path:" >&2
        echo "$out" >&2
        fail=1
    fi
    if out="$(nontest "$f" | grep -F '.expect(')"; then
        echo "SL002: .expect( in server request path:" >&2
        echo "$out" >&2
        fail=1
    fi
    if out="$(nontest "$f" | grep -F 'panic!')"; then
        echo "SL003: panic! in server request path:" >&2
        echo "$out" >&2
        fail=1
    fi
    if out="$(nontest "$f" | grep -c '\.lock(' )" && [ "$out" -gt 0 ]; then
        if two="$(nontest "$f" | grep '\.lock(.*\.lock(')"; then
            echo "SL005: two lock acquisitions on one line (leaf-lock rule):" >&2
            echo "$two" >&2
            fail=1
        fi
    fi
done

for f in crates/cube-serve/src/cache.rs crates/cube-serve/src/repo.rs; do
    if ! grep -q 'LOCK ORDER' "$f"; then
        echo "SL004: $f does not document the lock-acquisition order" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "ci/lint_source.sh: failed" >&2
    exit 1
fi
echo "ci/lint_source.sh: all clean"
