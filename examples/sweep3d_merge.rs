//! The paper's §5.2 case study: integrating performance data.
//!
//! Run with:
//! ```text
//! cargo run --release --example sweep3d_merge
//! ```
//!
//! Hardware-counter restrictions (POWER4: floating-point instructions
//! and L1 data-cache misses cannot be counted together) force *two*
//! CONE profiling runs with different event sets. A third run is traced
//! and EXPERT-analyzed. The merge operator integrates all three into
//! one experiment (Figure 3): EXPERT's trace-based pattern hierarchy on
//! top, CONE's counter metrics below — revealing that the cache misses
//! concentrated at `MPI_Recv` coincide with Late-Sender waiting, so the
//! cache-miss problem is insignificant (that time was waiting anyway).

use cube_algebra::ops;
use cube_display::{BrowserState, RenderOptions, ValueMode};
use cube_model::aggregate::{call_value, CallSelection, MetricSelection};
use cube_model::Experiment;
use cube_suite::cone::{ConeError, ConeProfiler, CounterKind, EventSet};
use cube_suite::expert::{analyze, AnalyzeOptions};
use cube_suite::simmpi::apps::{sweep3d, Sweep3dConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, MachineModel};

fn cone_run(set: EventSet) -> Experiment {
    let program = sweep3d(&Sweep3dConfig::default());
    let mut profiler = ConeProfiler::new(set)
        .expect("event set is conflict-free")
        .with_layout("POWER4 system (simulated)", 4);
    simulate(&program, &MachineModel::default(), &mut profiler).expect("simulation succeeds");
    profiler.into_experiment().expect("valid experiment")
}

fn main() {
    // The counter combination the analysis needs is impossible in one run:
    let forbidden = EventSet::new("FP+L1", vec![CounterKind::FpIns, CounterKind::L1Dcm]);
    match forbidden {
        Err(e @ ConeError::ConflictingEventSet { .. }) => {
            println!("hardware restriction reproduced: {e}\n")
        }
        other => panic!("expected a counter conflict, got {other:?}"),
    }

    // Run 1 + 2: CONE with the two conflict-free event sets.
    let fp_profile = cone_run(EventSet::flops());
    let l1_profile = cone_run(EventSet::l1_cache());

    // Run 3: EXPERT trace analysis.
    let program = sweep3d(&Sweep3dConfig::default());
    let mut tracer = EpilogTracer::new("POWER4 system (simulated)", 4);
    simulate(&program, &MachineModel::default(), &mut tracer).expect("simulation succeeds");
    let expert_exp = analyze(
        &tracer.into_trace(),
        &AnalyzeOptions {
            name: Some("EXPERT (SWEEP3D)".into()),
        },
    )
    .expect("analysis succeeds");

    // Merge: EXPERT first (its Time hierarchy wins for shared metrics),
    // then the two counter profiles. Closure lets us chain the binary
    // operator.
    let merged = ops::merge(&ops::merge(&expert_exp, &fp_profile), &l1_profile);
    merged.validate().expect("closure");
    println!(
        "merged experiment: {} metrics from three runs ({})",
        merged.metadata().num_metrics(),
        merged.provenance().label()
    );

    // --- Figure 3: the joint metric forest over one call tree.
    let mut state = BrowserState::new(&merged);
    state.expand_all(&merged);
    state.value_mode = ValueMode::Percent;
    assert!(state.select_metric_by_name(&merged, "PAPI_L1_DCM"));
    state.select_call_by_region(&merged, "MPI_Recv");
    println!(
        "\n=== Figure 3: merge of EXPERT + two CONE event sets ===\n{}",
        cube_display::render_view(&merged, &state, RenderOptions::default())
    );

    // The punchline: cache misses concentrate at MPI_Recv — and the
    // same call paths are Late-Sender sites.
    let md = merged.metadata();
    let dcm = md.find_metric("PAPI_L1_DCM").expect("merged from L1 run");
    let ls = md.find_metric("Late Sender").expect("merged from EXPERT");
    let recv_nodes: Vec<_> = md
        .call_node_ids()
        .filter(|&c| md.region(md.call_node_callee(c)).name == "MPI_Recv")
        .collect();
    let misses_at_recv: f64 = recv_nodes
        .iter()
        .map(|&c| {
            call_value(
                &merged,
                MetricSelection::inclusive(dcm),
                CallSelection::exclusive(c),
            )
        })
        .sum();
    let waiting_at_recv: f64 = recv_nodes
        .iter()
        .map(|&c| {
            call_value(
                &merged,
                MetricSelection::inclusive(ls),
                CallSelection::exclusive(c),
            )
        })
        .sum();
    println!(
        "cache misses at MPI_Recv: {misses_at_recv:.3e}; Late-Sender waiting there: {waiting_at_recv:.4} s"
    );
    assert!(misses_at_recv > 0.0 && waiting_at_recv > 0.0);
    println!(
        "→ the high miss rate in MPI_Recv is mostly waiting time anyway — \
         the cache-miss problem is insignificant (the paper's conclusion)."
    );
}
