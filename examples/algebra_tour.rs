//! A tour of every operator in the algebra, including the statistical
//! extensions and the Karavanic–Miller baseline the paper compares
//! against.
//!
//! Run with:
//! ```text
//! cargo run --release --example algebra_tour
//! ```

use cube_algebra::baseline::performance_difference;
use cube_algebra::stats::{hotspots, imbalance, stddev};
use cube_algebra::{cut, ops};
use cube_model::aggregate::MetricSelection;
use cube_model::Experiment;
use cube_suite::expert::{analyze, AnalyzeOptions};
use cube_suite::simmpi::apps::{stencil, StencilConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, MachineModel, NoiseModel};

fn run(seed: u64, imbalance: f64) -> Experiment {
    let program = stencil(&StencilConfig {
        imbalance,
        ..StencilConfig::default()
    });
    let model = MachineModel {
        noise: NoiseModel {
            amplitude: 0.1,
            seed,
        },
        ..MachineModel::default()
    };
    let mut tracer = EpilogTracer::new("cluster", 2);
    simulate(&program, &model, &mut tracer).expect("simulation succeeds");
    analyze(
        &tracer.into_trace(),
        &AnalyzeOptions {
            name: Some(format!("stencil seed {seed}")),
        },
    )
    .expect("analysis succeeds")
}

fn total(e: &Experiment, name: &str) -> f64 {
    let m = e.metadata().find_metric(name).expect("metric exists");
    cube_model::aggregate::metric_total(e, cube_model::aggregate::MetricSelection::inclusive(m))
}

fn main() {
    // A noisy series of the same configuration, plus a tuned variant.
    let series: Vec<Experiment> = (0..5).map(|i| run(i, 0.4)).collect();
    let refs: Vec<&Experiment> = series.iter().collect();
    let tuned = run(99, 0.05);

    // --- n-ary reductions over the series.
    let avg = ops::mean(&refs).expect("non-empty");
    let best = ops::min(&refs).expect("non-empty");
    let worst = ops::max(&refs).expect("non-empty");
    let spread = stddev(&refs).expect("non-empty");
    println!("series of {} runs:", series.len());
    println!("  mean(Time)   = {:.4} s", total(&avg, "Time"));
    println!("  min(Time)    = {:.4} s", total(&best, "Time"));
    println!("  max(Time)    = {:.4} s", total(&worst, "Time"));
    println!(
        "  stddev(Time) = {:.4} s  <- itself a browsable experiment",
        total(&spread, "Time")
    );

    // --- the composite the paper highlights: difference of averages.
    let saved = ops::diff(&avg, &tuned);
    saved.validate().expect("closure");
    println!(
        "\ndifference(mean(series), tuned): Time delta = {:.4} s ({})",
        total(&saved, "Time"),
        saved.provenance().label()
    );

    // --- hotspot search works identically on the derived experiment.
    let time = saved.metadata().find_metric("Time").expect("Time exists");
    println!("\ntop severity deltas (positive = tuned is faster there):");
    for h in hotspots(&saved, time, 5) {
        let md = saved.metadata();
        let thread = md.thread(h.thread);
        println!(
            "  {:>10.5} s  rank {} at {}",
            h.value,
            md.process(thread.process).rank,
            md.call_path(h.call_node).join(" / ")
        );
    }

    // --- imbalance report on the original vs tuned run. Per the
    // paper's §5.1 coda, waiting hides imbalance: the per-thread *wall*
    // time is equal (everyone leaves the last collective together), so
    // look at execution time *without* MPI — the exclusive value of
    // Execution, whose only child is MPI.
    let report = |e: &Experiment| {
        let execution = e.metadata().find_metric("Execution").expect("Execution");
        imbalance(e, MetricSelection::exclusive(execution))
    };
    let (before, after) = (report(&series[0]), report(&tuned));
    println!(
        "\nload imbalance factor of compute time (max/mean): {:.3} -> {:.3}",
        before.imbalance_factor, after.imbalance_factor
    );

    // --- call-tree surgery: focus on the relax kernel only.
    let relax = saved
        .metadata()
        .call_node_ids()
        .find(|&c| {
            saved
                .metadata()
                .region(saved.metadata().call_node_callee(c))
                .name
                == "relax"
        })
        .expect("relax call path exists");
    let focused = cut::reroot(&saved, relax);
    println!(
        "\nreroot at 'relax': {} call paths -> {}",
        saved.metadata().num_call_nodes(),
        focused.metadata().num_call_nodes()
    );

    // --- the baseline for contrast: a list of foci, not an experiment.
    let foci = performance_difference(&series[0], &tuned, 0.002);
    println!(
        "\nKaravanic–Miller baseline difference: {} significant foci (a list —\n\
         cannot be re-viewed, re-stored, or fed into another operator;\n\
         CUBE's closed diff above can, which is the paper's contribution)",
        foci.len()
    );
    if let Some(top) = foci.first() {
        println!(
            "  largest: {} at {} on rank {}: {:+.5} s",
            top.metric,
            top.call_path.join(" / "),
            top.location.0,
            top.delta()
        );
    }
}
