//! Quickstart: build two experiments, apply the algebra, browse the
//! result.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks the shortest path through the library: simulate a small
//! stencil code twice (a "slow" and a "tuned" configuration), profile
//! both runs, subtract the experiments, and render the derived
//! difference experiment exactly like an original one — the closure
//! property in action.

use cube_algebra::ops;
use cube_display::{BrowserState, RenderOptions, ValueMode};
use cube_suite::cone::{ConeProfiler, EventSet};
use cube_suite::simmpi::apps::{stencil, StencilConfig};
use cube_suite::simmpi::{simulate, MachineModel};

fn profile(cfg: &StencilConfig) -> cube_model::Experiment {
    let program = stencil(cfg);
    let mut profiler = ConeProfiler::new(EventSet::flops()).expect("conflict-free event set");
    simulate(&program, &MachineModel::default(), &mut profiler).expect("simulation succeeds");
    profiler.into_experiment().expect("valid experiment")
}

fn main() {
    // A deliberately imbalanced configuration ...
    let slow = profile(&StencilConfig {
        imbalance: 0.6,
        ..StencilConfig::default()
    });
    // ... and a tuned one.
    let tuned = profile(&StencilConfig {
        imbalance: 0.05,
        ..StencilConfig::default()
    });

    // The difference operator yields a full derived experiment.
    let saved = ops::diff(&slow, &tuned);
    saved
        .validate()
        .expect("closure: operator results are valid experiments");

    println!("=== the tuned run, browsed directly ===");
    let mut state = BrowserState::new(&tuned);
    state.expand_all(&tuned);
    state.value_mode = ValueMode::Percent;
    println!(
        "{}",
        cube_display::render_view(&tuned, &state, RenderOptions::default())
    );

    println!("=== what the tuning saved (difference experiment) ===");
    let mut state = BrowserState::new(&saved);
    state.expand_all(&saved);
    println!(
        "{}",
        cube_display::render_view(&saved, &state, RenderOptions::default())
    );

    // Derived experiments are operands like any other: sanity-check that
    // tuned + saved == slow (up to floating point).
    let reconstructed = ops::sum(&[&tuned, &saved]).expect("non-empty operand list");
    assert!(
        reconstructed.severity().approx_eq(slow.severity(), 1e-9),
        "tuned + (slow - tuned) must equal slow"
    );
    println!("closure check passed: tuned + diff == slow");
}
