//! The paper's §5.1 case study: subtracting performance data.
//!
//! Run with:
//! ```text
//! cargo run --release --example pescan_diff
//! ```
//!
//! Pipeline:
//! 1. simulate the unoptimized PESCAN (barriers present), tracing it;
//! 2. EXPERT-analyze the trace → a CUBE experiment (Figure 1: the
//!    selected Wait-at-Barrier metric carries ≈13 % of execution time);
//! 3. repeat for the optimized version (barriers removed);
//! 4. subtract: `difference(original, optimized)`, shown normalized to
//!    the original version's execution time (Figure 2) — barrier-related
//!    times are recovered (raised relief), P2P and Wait-at-NxN grow
//!    (sunken relief), and the balance is clearly positive.

use cube_algebra::ops;
use cube_display::{BrowserState, NormalizationRef, RenderOptions, ValueMode};
use cube_model::aggregate::{metric_total, MetricSelection};
use cube_model::Experiment;
use cube_suite::expert::{analyze, AnalyzeOptions};
use cube_suite::simmpi::apps::{pescan, PescanConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, MachineModel};

fn run_and_analyze(barriers: bool) -> Experiment {
    let cfg = PescanConfig {
        barriers,
        ..PescanConfig::default()
    };
    let program = pescan(&cfg);
    // 8 four-way SMP nodes, 16 processes on four of them — the paper's
    // cluster layout.
    let mut tracer = EpilogTracer::new("Pentium III Xeon cluster (simulated)", 4);
    simulate(&program, &MachineModel::default(), &mut tracer).expect("simulation succeeds");
    let trace = tracer.into_trace();
    println!(
        "traced {} ({} events from {} locations)",
        program.name,
        trace.events.len(),
        trace.defs.locations.len()
    );
    analyze(
        &trace,
        &AnalyzeOptions {
            name: Some(program.name.clone()),
        },
    )
    .expect("valid trace analyzes cleanly")
}

fn metric(e: &Experiment, name: &str) -> f64 {
    let m = e
        .metadata()
        .find_metric(name)
        .expect("pattern metric exists");
    metric_total(e, MetricSelection::inclusive(m))
}

fn main() {
    let original = run_and_analyze(true);
    let optimized = run_and_analyze(false);

    // --- Figure 1: browse the original version, percent mode, with the
    // Wait-at-Barrier metric selected.
    let mut state = BrowserState::new(&original);
    state.expand_all(&original);
    state.value_mode = ValueMode::Percent;
    assert!(state.select_metric_by_name(&original, "Wait at Barrier"));
    state.select_call_by_region(&original, "solver");
    println!("\n=== Figure 1: unoptimized PESCAN, percent of total time ===");
    println!(
        "{}",
        cube_display::render_view(&original, &state, RenderOptions::default())
    );
    let wab_pct = metric(&original, "Wait at Barrier") / metric(&original, "Time") * 100.0;
    println!("Wait-at-Barrier share of execution time: {wab_pct:.1} % (paper: 13.2 %)");

    // --- Figure 2: the difference experiment, normalized to the
    // original version ("improvements in percent of the previous
    // execution time").
    let saved = ops::diff(&original, &optimized);
    saved.validate().expect("closure");
    let mut state = BrowserState::new(&saved);
    state.expand_all(&saved);
    state.value_mode = ValueMode::PercentNormalized(NormalizationRef::from_experiment(&original));
    println!("\n=== Figure 2: difference(original, optimized), % of original time ===");
    println!(
        "{}",
        cube_display::render_view(&saved, &state, RenderOptions::default())
    );

    println!("Reading the difference experiment:");
    for name in [
        "Wait at Barrier",
        "Synchronization",
        "Barrier Completion",
        "Late Sender",
        "P2P",
        "Wait at N x N",
        "Time",
    ] {
        let v = metric(&saved, name);
        let pct = v / metric(&original, "Time") * 100.0;
        let direction = if v >= 0.0 { "recovered" } else { "GREW" };
        println!("  {name:<20} {pct:>7.2} % of original time ({direction})");
    }
    let gain = metric(&saved, "Time") / metric(&original, "Time") * 100.0;
    println!("\ngross balance: {gain:.1} % of the original execution time saved");
}
