//! Working around hardware-counter limits with the merge operator.
//!
//! Run with:
//! ```text
//! cargo run --release --example counter_event_sets
//! ```
//!
//! Demonstrates the paper's measurement workflow in isolation:
//! 1. enumerate which counter pairs the (simulated POWER4) PMU can
//!    measure together;
//! 2. run CONE once per conflict-free event set — applying the *mean*
//!    operator over repeated runs of each set to smooth noise;
//! 3. merge the averaged profiles into one experiment carrying every
//!    counter, which no single run could have measured.

use cube_algebra::ops;
use cube_model::aggregate::{metric_total, MetricSelection};
use cube_model::Experiment;
use cube_suite::cone::{ConeProfiler, CounterKind, EventSet};
use cube_suite::simmpi::apps::{pescan, PescanConfig};
use cube_suite::simmpi::{simulate, MachineModel, NoiseModel};

fn cone_run(set: &EventSet, seed: u64) -> Experiment {
    let program = pescan(&PescanConfig {
        ranks: 8,
        iterations: 10,
        ..PescanConfig::default()
    });
    let model = MachineModel {
        noise: NoiseModel {
            amplitude: 0.05,
            seed,
        },
        ..MachineModel::default()
    };
    let mut profiler = ConeProfiler::new(set.clone()).expect("valid event set");
    simulate(&program, &model, &mut profiler).expect("simulation succeeds");
    profiler.into_experiment().expect("valid experiment")
}

fn main() {
    // 1. The conflict matrix.
    println!("counter compatibility on the simulated PMU:");
    for a in CounterKind::ALL {
        for b in CounterKind::ALL {
            if (a as usize) < (b as usize) {
                let status = match EventSet::new("probe", vec![a, b]) {
                    Ok(_) => "ok together",
                    Err(_) => "CONFLICT — needs separate runs",
                };
                println!("  {:<14} + {:<14} {status}", a.papi_name(), b.papi_name());
            }
        }
    }

    // 2. One averaged profile per event set (3 noisy runs each).
    let sets = [EventSet::flops(), EventSet::l1_cache()];
    let mut averaged = Vec::new();
    for set in &sets {
        let runs: Vec<Experiment> = (0..3).map(|i| cone_run(set, 100 + i)).collect();
        let refs: Vec<&Experiment> = runs.iter().collect();
        let mean = ops::mean(&refs).expect("non-empty series");
        println!(
            "\nevent set {}: averaged {} runs → {}",
            set.name,
            runs.len(),
            mean.provenance().label()
        );
        averaged.push(mean);
    }

    // 3. Merge the averaged profiles.
    let joint = ops::merge(&averaged[0], &averaged[1]);
    joint.validate().expect("closure");
    println!("\njoint experiment metrics:");
    for m in joint.metadata().metric_ids() {
        let metric = joint.metadata().metric(m);
        let total = metric_total(&joint, MetricSelection::inclusive(m));
        println!("  {:<14} total {total:>14.3e} {}", metric.name, metric.unit);
    }
    // Both conflicting counters are now present in ONE experiment.
    assert!(joint.metadata().find_metric("PAPI_FP_INS").is_some());
    assert!(joint.metadata().find_metric("PAPI_L1_DCM").is_some());
    println!("\nPAPI_FP_INS and PAPI_L1_DCM coexist — impossible in any single run.");
}
