//! # cube-suite — the CUBE cross-experiment performance algebra, in Rust
//!
//! Umbrella crate re-exporting the whole stack. See the individual
//! crates for details:
//!
//! * [`model`] — the CUBE data model (metric / program / system
//!   dimensions + severity function);
//! * [`algebra`] — the closed operators: difference, merge, mean, and
//!   extensions;
//! * [`xml`] — the `.cube` file format on a self-contained XML
//!   substrate;
//! * [`display`] — the three-pane tree-browser display engine;
//! * [`epilog`] — the event-trace substrate;
//! * [`simmpi`] — the discrete-event message-passing simulator and the
//!   paper's workloads (PESCAN, SWEEP3D, stencil);
//! * [`expert`] — the trace analyzer (pattern search → CUBE);
//! * [`cone`] — the call-graph profiler with PAPI-like counters and
//!   event-set conflicts.
//!
//! The `examples/` directory walks through the paper's two case
//! studies; `cube-bench` regenerates every figure.

pub use cone;
pub use cube_algebra as algebra;
pub use cube_display as display;
pub use cube_model as model;
pub use cube_xml as xml;
pub use epilog;
pub use expert;
pub use simmpi;
