//! Golden corpus for the salvage/repair pipeline.
//!
//! Every file under `tests/fixtures/corrupt/` is a damaged `.cube`
//! XML document or `.cubec` columnar store. Fixtures with a sibling
//! `.expect` file must repair *partially* (`cube repair` exit code 1)
//! and the repaired output must be byte-identical to the snapshot —
//! the longest valid prefix (XML) or the intact pages with damaged
//! chunks zeroed (store), checksummed and marked `recovered`. Fixtures
//! without a snapshot are unrecoverable (exit code 2, nothing
//! written). The same corpus drives the recovery gate in
//! `ci/check.sh`.

use std::path::{Path, PathBuf};

use cube_model::Experiment;

fn corrupt_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corrupt")
}

fn cube_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "cube" || x == "cubec"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures in {}", dir.display());
    files
}

/// Strict read of a repaired output in whichever format its extension
/// names — repairs must survive the unforgiving reader of their own
/// backend.
fn read_strict(path: &Path) -> Experiment {
    if path.extension().is_some_and(|x| x == "cubec") {
        cube_store::read_store_file(path).unwrap()
    } else {
        cube_xml::read_experiment_file(path).unwrap()
    }
}

fn repair(input: &Path, output: &Path) -> cube_cli::Outcome {
    let args: Vec<String> = [
        "repair",
        &input.to_string_lossy(),
        &output.to_string_lossy(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    cube_cli::run(&args).expect("repair of a readable file never usage-errors")
}

#[test]
fn corrupt_corpus_repairs_to_the_documented_prefixes() {
    let tmp = std::env::temp_dir().join(format!("cube_recovery_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    for cube in cube_files(&corrupt_dir()) {
        let expect = cube.with_extension("expect");
        let out = tmp.join(cube.file_name().unwrap());
        let _ = std::fs::remove_file(&out);
        let outcome = repair(&cube, &out);
        if expect.exists() {
            assert_eq!(outcome.code, 1, "{}: {}", cube.display(), outcome.stdout);
            let got = std::fs::read(&out)
                .unwrap_or_else(|e| panic!("{}: no repaired output: {e}", cube.display()));
            let want = std::fs::read(&expect).unwrap();
            assert_eq!(
                got,
                want,
                "{}: repaired bytes diverge from the snapshot",
                cube.display()
            );
            // The repaired prefix must itself be a clean, strictly
            // readable experiment with recovered provenance.
            let exp = read_strict(&out);
            assert!(exp.provenance().is_recovered(), "{}", cube.display());
            assert_eq!(exp.lint().num_errors(), 0, "{}", cube.display());
        } else {
            assert_eq!(outcome.code, 2, "{}: {}", cube.display(), outcome.stdout);
            assert!(
                !out.exists(),
                "{}: unrecoverable input must not produce output",
                cube.display()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn valid_fixtures_repair_fully() {
    let tmp = std::env::temp_dir().join(format!("cube_recovery_full_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let valid = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/valid");
    for cube in cube_files(&valid) {
        let out = tmp.join(cube.file_name().unwrap());
        let outcome = repair(&cube, &out);
        assert_eq!(outcome.code, 0, "{}: {}", cube.display(), outcome.stdout);
        let exp = cube_xml::read_experiment_file(&out).unwrap();
        assert!(!exp.provenance().is_recovered(), "{}", cube.display());
    }
    let _ = std::fs::remove_dir_all(&tmp);
}
