//! Concurrency harness for `cube serve`: many clients hammering
//! overlapping `/eval` requests must always see the same bytes for the
//! same expression (hit or miss), the bounded admission queue must
//! answer 429 immediately instead of hanging when full, and a
//! graceful shutdown must drain every admitted request.

#[path = "serve_util/mod.rs"]
mod serve_util;

use serve_util::{json_field, json_number, request, Reply};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cube_model::builder::single_threaded_system;
use cube_model::{Experiment, ExperimentBuilder, RegionKind, Unit};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cube_serve_stress_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small synthetic experiment; `seed` varies the severity values so
/// distinct uploads get distinct content ids.
fn sample(seed: u64) -> Experiment {
    let mut b = ExperimentBuilder::new(format!("stress run {seed}"));
    let time = b.def_metric("time", Unit::Seconds, "total time", None);
    let m = b.def_module("a.c", "/a.c");
    let main_r = b.def_region("main", m, RegionKind::Function, 1, 9);
    let solve_r = b.def_region("solve", m, RegionKind::Function, 2, 8);
    let cs0 = b.def_call_site("a.c", 1, main_r);
    let cs1 = b.def_call_site("a.c", 3, solve_r);
    let root = b.def_call_node(cs0, None);
    let solve = b.def_call_node(cs1, Some(root));
    let ts = single_threaded_system(&mut b, 4);
    for (i, &t) in ts.iter().enumerate() {
        b.set_severity(time, root, t, (seed * 7 + i as u64) as f64 * 0.5);
        b.set_severity(time, solve, t, (seed * 3 + i as u64) as f64 * 0.25);
    }
    b.build().unwrap()
}

fn boot(tag: &str, config: cube_serve::ServeConfig) -> (cube_serve::RunningServer, Vec<String>) {
    let dir = workdir(tag);
    let server = cube_serve::start(config, &dir.join("repo")).expect("server starts");
    let addr = server.local_addr();
    let ids: Vec<String> = (1..=3)
        .map(|seed| {
            let reply = request(
                addr,
                "PUT",
                "/experiments",
                &cube_store::write_store(&sample(seed)),
            );
            assert_eq!(reply.status, 201, "{}", reply.text());
            json_field(&reply.text(), "id").expect("ingest returns an id")
        })
        .collect();
    (server, ids)
}

/// The deterministic LCG the fuzz harnesses use (`fuzz_lint.rs`).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn overlapping_clients_see_identical_bytes() {
    let (server, ids) = boot(
        "overlap",
        cube_serve::ServeConfig {
            workers: 4,
            ..cube_serve::ServeConfig::default()
        },
    );
    let addr = server.local_addr();
    let exprs: Arc<Vec<String>> = Arc::new(vec![
        format!("mean({},{},{})", ids[0], ids[1], ids[2]),
        format!("diff(mean({},{}),{})", ids[0], ids[1], ids[2]),
        format!("scale(sum({},{}),0.5)", ids[1], ids[2]),
    ]);

    const CLIENTS: usize = 12;
    const ROUNDS: usize = 6;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let exprs = Arc::clone(&exprs);
            std::thread::spawn(move || {
                let mut rng = Lcg(0x5eed + client as u64);
                let mut seen: Vec<(usize, Vec<u8>)> = Vec::new();
                for _ in 0..ROUNDS {
                    let which = rng.below(exprs.len());
                    let reply = request(addr, "POST", "/eval", exprs[which].as_bytes());
                    assert_eq!(reply.status, 200, "{}", reply.text());
                    assert!(
                        matches!(reply.header("x-cache"), Some("hit" | "miss")),
                        "x-cache must always be present"
                    );
                    seen.push((which, reply.body));
                }
                seen
            })
        })
        .collect();

    // Collect every response; the reference bytes for each expression
    // are whatever the server said — all 72 responses must agree
    // per-expression, across cache hits, misses, and worker threads.
    let mut reference: Vec<Option<Vec<u8>>> = vec![None; exprs.len()];
    for handle in handles {
        for (which, body) in handle.join().expect("client thread must not panic") {
            match &reference[which] {
                None => reference[which] = Some(body),
                Some(expected) => assert_eq!(
                    &body, expected,
                    "response bytes diverged for expression {which}"
                ),
            }
        }
    }
    for (which, bytes) in reference.iter().enumerate() {
        assert!(bytes.is_some(), "expression {which} was never exercised");
    }

    // The cache did real work: some hits, and at most one miss per
    // expression per... rebuild race; misses stay tiny next to hits.
    let stats = request(addr, "GET", "/stats", b"").text();
    let hits = json_number(&stats, "hits").expect("result cache hits");
    assert!(hits > 0, "no cache hits under overlap: {stats}");

    server.shutdown();
    server.join();
}

#[test]
fn full_queue_answers_429_immediately_never_hangs() {
    let (server, ids) = boot(
        "queue",
        cube_serve::ServeConfig {
            workers: 1,
            queue_depth: 1,
            delay_ms: 400,
            ..cube_serve::ServeConfig::default()
        },
    );
    let addr = server.local_addr();
    let expr = format!("mean({},{})", ids[0], ids[1]);

    const CLIENTS: usize = 8;
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let expr = expr.clone();
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let reply = request(addr, "POST", "/eval", expr.as_bytes());
                (reply, t0.elapsed())
            })
        })
        .collect();

    let mut ok = 0usize;
    let mut rejected = 0usize;
    for handle in handles {
        let (reply, elapsed): (Reply, Duration) =
            handle.join().expect("client thread must not panic");
        match reply.status {
            200 => ok += 1,
            429 => {
                rejected += 1;
                assert_eq!(
                    json_field(&reply.text(), "code").as_deref(),
                    Some("queue_full")
                );
                // A rejection is immediate — it must not wait out the
                // worker's 400 ms stall even once.
                assert!(
                    elapsed < Duration::from_millis(350),
                    "429 took {elapsed:?}; overload must shed instantly"
                );
            }
            other => panic!("unexpected status {other}: {}", reply.text()),
        }
    }
    // One in service + one queued are guaranteed to succeed; with all
    // eight fired into a 400 ms stall, at least one must bounce.
    assert!(ok >= 2, "expected at least two successes, got {ok}");
    assert!(rejected >= 1, "expected at least one 429, got {rejected}");
    assert_eq!(ok + rejected, CLIENTS);
    // "Never hangs": every client got *some* answer well inside the
    // worst case of eight serial stalls.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "queue test stalled: {:?}",
        started.elapsed()
    );

    let stats = request(addr, "GET", "/stats", b"").text();
    assert_eq!(json_number(&stats, "rejected"), Some(rejected as u64));

    server.shutdown();
    server.join();
}

#[test]
fn slow_loris_is_reaped_within_the_header_deadline() {
    use std::io::{Read as _, Write as _};

    let (server, _ids) = boot(
        "loris",
        cube_serve::ServeConfig {
            workers: 2,
            header_deadline_ms: 400,
            ..cube_serve::ServeConfig::default()
        },
    );
    let addr = server.local_addr();

    // A client that sends part of a request head and then stalls
    // forever. Without the header deadline this would park a worker
    // until the coarse socket timeout (30 s by default).
    let started = Instant::now();
    let loris = std::thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        s.write_all(b"GET /stats HTTP/1.1\r\nhost: t").unwrap();
        s.flush().unwrap();
        let mut raw = Vec::new();
        let _ = s.read_to_end(&mut raw);
        raw
    });

    // While the loris stalls one worker, the server keeps answering.
    let reply = request(addr, "GET", "/healthz", b"");
    assert_eq!(reply.status, 200, "{}", reply.text());

    let raw = loris.join().expect("loris thread must not panic");
    let elapsed = started.elapsed();
    // Reaped at the 400 ms header deadline, not the 30 s socket
    // timeout — generous slack for a loaded CI machine.
    assert!(
        elapsed < Duration::from_secs(5),
        "slow-loris connection held a worker for {elapsed:?}"
    );
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.contains("504") && text.contains("deadline_exceeded"),
        "stalled head should answer 504 deadline_exceeded, got: {text}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn half_closed_body_is_answered_not_hung() {
    use std::io::{Read as _, Write as _};

    let (server, ids) = boot(
        "halfclose",
        cube_serve::ServeConfig {
            workers: 2,
            ..cube_serve::ServeConfig::default()
        },
    );
    let addr = server.local_addr();
    let expr = format!("mean({},{})", ids[0], ids[1]);

    // Declare a body, send a fragment of it, then half-close the write
    // side: the server sees EOF mid-body and must answer right away
    // instead of waiting out any timeout.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let head = format!(
        "POST /eval HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
        expr.len() + 10
    );
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(&expr.as_bytes()[..4]).unwrap();
    s.flush().unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();

    let started = Instant::now();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw)
        .expect("server answers the half-closed peer");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "half-closed request took {:?}",
        started.elapsed()
    );
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.contains("400") && text.contains("mid-body"),
        "EOF mid-body should answer 400, got: {text}"
    );

    // The worker is free again: a well-formed request still succeeds.
    let reply = request(addr, "POST", "/eval", expr.as_bytes());
    assert_eq!(reply.status, 200, "{}", reply.text());

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_admitted_requests() {
    let (server, ids) = boot(
        "drain",
        cube_serve::ServeConfig {
            workers: 1,
            queue_depth: 16,
            delay_ms: 200,
            ..cube_serve::ServeConfig::default()
        },
    );
    let addr = server.local_addr();
    let expr = format!("sum({},{},{})", ids[0], ids[1], ids[2]);

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let expr = expr.clone();
            std::thread::spawn(move || request(addr, "POST", "/eval", expr.as_bytes()))
        })
        .collect();
    // Give the acceptor time to admit all four, then stop the server
    // while three are still queued behind the 200 ms stalls.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    server.join();

    // Every admitted request was still answered — drained, not dropped.
    let mut bodies = Vec::new();
    for handle in handles {
        let reply = handle.join().expect("client thread must not panic");
        assert_eq!(reply.status, 200, "{}", reply.text());
        bodies.push(reply.body);
    }
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "drained responses must match");
    }

    // The listener is gone: new connections are refused, not queued.
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "socket should be closed after shutdown"
    );
}
