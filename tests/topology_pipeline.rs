//! Topology information end to end: recorded with the trace (as the
//! paper's future work proposes, "obtained from instrumented MPI
//! topology routines"), carried into the experiment, preserved by the
//! algebra and the XML format, and rendered as a severity heat map.

use cube_algebra::ops;
use cube_display::{render_topology, BrowserState, RenderOptions};
use cube_model::Experiment;
use cube_suite::expert::{analyze, AnalyzeOptions};
use cube_suite::simmpi::apps::sweep3d::{grid_coordinates, sweep3d, Sweep3dConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, MachineModel};

fn analyzed() -> Experiment {
    let cfg = Sweep3dConfig::default();
    let program = sweep3d(&cfg);
    let mut tracer = EpilogTracer::new("power4", 4).with_topology(
        "process grid",
        vec![cfg.px as u32, cfg.py as u32],
        vec![false, false],
        grid_coordinates(&cfg),
    );
    simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
    analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap()
}

#[test]
fn topology_flows_from_trace_to_experiment() {
    let e = analyzed();
    e.validate().unwrap();
    let topos = e.metadata().topologies();
    assert_eq!(topos.len(), 1);
    assert_eq!(topos[0].name, "process grid");
    assert_eq!(topos[0].dims, vec![4, 4]);
    assert_eq!(topos[0].coords.len(), 16);
    // Rank 5 sits at (1, 1).
    let p5 = e.metadata().find_process_by_rank(5).unwrap();
    assert_eq!(topos[0].coord_of(p5), Some(&[1u32, 1][..]));
}

#[test]
fn topology_survives_xml_roundtrip() {
    let e = analyzed();
    let back = cube_xml::read_experiment(&cube_xml::write_experiment(&e)).unwrap();
    assert_eq!(back.metadata().topologies(), e.metadata().topologies());
    assert!(back.approx_eq(&e, 0.0));
}

#[test]
fn topology_survives_the_algebra() {
    let a = analyzed();
    let b = analyzed();
    let d = ops::diff(&a, &b);
    d.validate().unwrap();
    // Fast path (equal metadata) keeps the topology trivially; also
    // check the slow path by merging with a topology-free experiment.
    assert_eq!(d.metadata().topologies().len(), 1);

    let mut tracer = EpilogTracer::new("other", 1);
    let program = sweep3d(&Sweep3dConfig {
        px: 2,
        py: 2,
        sweeps: 1,
        ..Sweep3dConfig::default()
    });
    simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
    let plain = analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap();
    let merged = ops::merge(&a, &plain);
    merged.validate().unwrap();
    let topos = merged.metadata().topologies();
    assert_eq!(topos.len(), 1, "first operand's topology is carried");
    assert_eq!(topos[0].coords.len(), 16);
}

#[test]
fn heat_view_renders_the_wavefront() {
    let e = analyzed();
    let mut state = BrowserState::new(&e);
    // Late-Sender severity over the grid: the corner rank (0,0) of the
    // first sweep direction never waits; downstream ranks do.
    assert!(state.select_metric_by_name(&e, "Late Sender"));
    let view = render_topology(&e, &state, 0, RenderOptions::default()).unwrap();
    assert!(view.contains("topology 'process grid' (4x4)"));
    let grid: Vec<&str> = view.lines().skip(1).take(4).collect();
    assert_eq!(grid.len(), 4);
    // All 16 cells occupied (no '·').
    assert!(grid.iter().all(|row| !row.contains('·')), "{view}");
    assert!(view.contains("legend:"));
}
