//! End-to-end pipeline for hybrid MPI + OpenMP runs: the data model's
//! mandatory thread level, the Idle Threads pattern, and the display's
//! thread-level handling, all through real tool output.

use cube_algebra::ops;
use cube_display::{BrowserState, RenderOptions, RowKind};
use cube_model::aggregate::{metric_total, MetricSelection};
use cube_model::Experiment;
use cube_suite::expert::{analyze, AnalyzeOptions};
use cube_suite::simmpi::apps::{hybrid, HybridConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, MachineModel};

fn analyzed(cfg: &HybridConfig) -> Experiment {
    let program = hybrid(cfg);
    let mut tracer = EpilogTracer::new("smp cluster", 2);
    simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
    analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap()
}

fn total(e: &Experiment, name: &str) -> f64 {
    let m = e.metadata().find_metric(name).unwrap();
    metric_total(e, MetricSelection::inclusive(m))
}

#[test]
fn display_shows_thread_level_for_hybrid_runs() {
    let e = analyzed(&HybridConfig::default());
    let mut state = BrowserState::new(&e);
    state.expand_all(&e);
    let rows = state.system_rows(&e);
    let threads = rows
        .iter()
        .filter(|r| matches!(r.kind, RowKind::Thread(_)))
        .count();
    assert_eq!(threads, 16, "4 ranks x 4 threads visible");
    // And the full view renders without issue.
    let text = cube_display::render_view(&e, &state, RenderOptions::default());
    assert!(text.contains("thread 3"));
}

#[test]
fn more_threads_more_idleness() {
    let narrow = analyzed(&HybridConfig {
        threads: 2,
        ..HybridConfig::default()
    });
    let wide = analyzed(&HybridConfig {
        threads: 6,
        ..HybridConfig::default()
    });
    let narrow_idle = total(&narrow, "Idle Threads");
    let wide_idle = total(&wide, "Idle Threads");
    assert!(narrow_idle > 0.0);
    assert!(
        wide_idle > narrow_idle,
        "more workers idle during the same sequential sections"
    );
}

#[test]
fn diff_of_hybrid_configurations_is_closed() {
    let a = analyzed(&HybridConfig::default());
    let b = analyzed(&HybridConfig {
        thread_imbalance: 0.0,
        ..HybridConfig::default()
    });
    let d = ops::diff(&a, &b);
    d.validate().unwrap();
    // Thread imbalance inflates the parallel region (join waits for the
    // slowest thread), so the balanced version is faster.
    assert!(total(&d, "Time") > 0.0);
    // The difference experiment still carries the thread level.
    assert_eq!(d.metadata().num_threads(), 16);
}

#[test]
fn idle_threads_fraction_grows_with_serial_share() {
    // Longer sequential (master-only) sections → larger idle share.
    let compute_heavy = analyzed(&HybridConfig {
        base_compute: 4e-3,
        ..HybridConfig::default()
    });
    let comm_heavy = analyzed(&HybridConfig {
        base_compute: 0.5e-3,
        halo_bytes: 512 * 1024,
        ..HybridConfig::default()
    });
    let share = |e: &Experiment| total(e, "Idle Threads") / total(e, "Time");
    assert!(
        share(&comm_heavy) > share(&compute_heavy),
        "idle share {:.3} !> {:.3}",
        share(&comm_heavy),
        share(&compute_heavy)
    );
}
