//! Golden corpus for the `/eval` expression parser.
//!
//! Every `tests/fixtures/expr/*.expr` file is parsed and the outcome
//! compared byte-exactly against its `.expect` snapshot: accepted
//! expressions pin their canonical rendering and operand interning
//! order (the server's cache key), rejected ones pin the stable
//! `P00x` code, byte offset, and rendered message (the server's error
//! body). Set `CUBE_REGEN_EXPR=1` to rewrite the snapshots after an
//! intentional parser change.

use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/expr")
}

fn render(input: &str) -> String {
    match cube_algebra::parse_expr(input) {
        Ok(p) => format!("ok {}\noperands {}\n", p.canonical(), p.operands.join(",")),
        Err(e) => format!("error {} {}\n{e}\n", e.code, e.offset),
    }
}

#[test]
fn expression_corpus_matches_snapshots() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(fixture_dir())
        .expect("expression fixture directory exists")
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "expr"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .expr fixtures found");

    let regen = std::env::var_os("CUBE_REGEN_EXPR").is_some();
    let (mut oks, mut errors) = (0usize, 0usize);
    for file in &files {
        let input = std::fs::read_to_string(file).unwrap();
        let got = render(&input);
        if got.starts_with("ok ") {
            oks += 1;
        } else {
            errors += 1;
        }
        let expect = file.with_extension("expect");
        if regen {
            std::fs::write(&expect, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&expect)
            .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", expect.display()));
        assert_eq!(got, want, "{} drifted from its snapshot", file.display());
    }
    // The corpus must keep exercising both sides of the contract.
    assert!(oks >= 2, "corpus needs accepted expressions, found {oks}");
    assert!(errors >= 8, "corpus needs rejections, found {errors}");
}

#[test]
fn every_documented_error_code_is_covered() {
    // P001..P009 is the parser's full, stable error vocabulary; the
    // corpus must witness each one so a code can never silently vanish
    // or change meaning.
    let mut seen: Vec<String> = std::fs::read_dir(fixture_dir())
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "expr"))
        .filter_map(|p| {
            let input = std::fs::read_to_string(&p).unwrap();
            cube_algebra::parse_expr(&input)
                .err()
                .map(|e| e.code.to_string())
        })
        .collect();
    seen.sort();
    seen.dedup();
    let expected: Vec<String> = (1..=9).map(|i| format!("P00{i}")).collect();
    assert_eq!(seen, expected, "corpus does not cover every P00x code");
}
