//! End-to-end reproduction of the paper's §5.2 case study as a test:
//! counter conflicts force separate CONE runs; EXPERT and both CONE
//! profiles merge into one experiment with the joint metric forest.

use cube_algebra::ops;
use cube_model::aggregate::{call_value, metric_total, CallSelection, MetricSelection};
use cube_model::Experiment;
use cube_suite::cone::{ConeError, ConeProfiler, CounterKind, EventSet};
use cube_suite::expert::{analyze, AnalyzeOptions};
use cube_suite::simmpi::apps::{sweep3d, Sweep3dConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, MachineModel};

fn cone_profile(set: EventSet) -> Experiment {
    let program = sweep3d(&Sweep3dConfig::default());
    let mut profiler = ConeProfiler::new(set).unwrap().with_layout("power4", 4);
    simulate(&program, &MachineModel::default(), &mut profiler).unwrap();
    profiler.into_experiment().unwrap()
}

fn expert_experiment() -> Experiment {
    let program = sweep3d(&Sweep3dConfig::default());
    let mut tracer = EpilogTracer::new("power4", 4);
    simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
    analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap()
}

fn total(e: &Experiment, name: &str) -> f64 {
    let m = e.metadata().find_metric(name).unwrap();
    metric_total(e, MetricSelection::inclusive(m))
}

#[test]
fn the_forbidden_combination_requires_two_runs() {
    assert!(matches!(
        EventSet::new("fp+l1", vec![CounterKind::FpIns, CounterKind::L1Dcm]),
        Err(ConeError::ConflictingEventSet { .. })
    ));
    // Both halves are measurable on their own.
    assert!(EventSet::new("fp", vec![CounterKind::FpIns]).is_ok());
    assert!(EventSet::new("l1", vec![CounterKind::L1Dcm, CounterKind::L1Dca]).is_ok());
}

#[test]
fn figure3_merge_carries_all_three_sources() {
    let ex = expert_experiment();
    let fp = cone_profile(EventSet::flops());
    let l1 = cone_profile(EventSet::l1_cache());
    let merged = ops::merge(&ops::merge(&ex, &fp), &l1);
    merged.validate().unwrap();

    let md = merged.metadata();
    // EXPERT's pattern tree and both counter hierarchies coexist.
    for name in [
        "Time",
        "Late Sender",
        "Wait at N x N",
        "PAPI_FP_INS",
        "PAPI_TOT_CYC",
        "PAPI_L1_DCA",
        "PAPI_L1_DCM",
    ] {
        assert!(md.find_metric(name).is_some(), "missing metric {name}");
    }
    // Shared metrics come from the FIRST operand: EXPERT's Time values
    // win over CONE's wall-time metric of the same name.
    let time = md.find_metric("Time").unwrap();
    let expert_time = total(&ex, "Time");
    assert!(
        (merged.severity().metric_sum(time) - expert_time).abs() < 1e-9,
        "merge must take shared metrics from the first operand"
    );
    // Counter totals survive from their respective runs.
    assert!((total(&merged, "PAPI_FP_INS") - total(&fp, "PAPI_FP_INS")).abs() < 1e-6);
    assert!((total(&merged, "PAPI_L1_DCM") - total(&l1, "PAPI_L1_DCM")).abs() < 1e-6);
}

#[test]
fn cache_misses_coincide_with_late_sender_sites() {
    let ex = expert_experiment();
    let l1 = cone_profile(EventSet::l1_cache());
    let merged = ops::merge(&ex, &l1);
    let md = merged.metadata();
    let dcm = md.find_metric("PAPI_L1_DCM").unwrap();
    let ls = md.find_metric("Late Sender").unwrap();

    // Call paths ending in MPI_Recv carry BOTH above-average cache-miss
    // rates AND Late-Sender waiting.
    let recv_nodes: Vec<_> = md
        .call_node_ids()
        .filter(|&c| md.region(md.call_node_callee(c)).name == "MPI_Recv")
        .collect();
    assert!(!recv_nodes.is_empty());
    let misses: f64 = recv_nodes
        .iter()
        .map(|&c| {
            call_value(
                &merged,
                MetricSelection::inclusive(dcm),
                CallSelection::exclusive(c),
            )
        })
        .sum();
    let waiting: f64 = recv_nodes
        .iter()
        .map(|&c| {
            call_value(
                &merged,
                MetricSelection::inclusive(ls),
                CallSelection::exclusive(c),
            )
        })
        .sum();
    assert!(misses > 0.0, "cache misses must appear at MPI_Recv");
    assert!(waiting > 0.0, "Late-Sender waiting must appear at MPI_Recv");
    // The §5.2 conclusion: most of the P2P time at these sites is
    // waiting, so the miss problem is insignificant.
    let p2p_at_recv: f64 = recv_nodes
        .iter()
        .map(|&c| {
            call_value(
                &merged,
                MetricSelection::inclusive(md.find_metric("P2P").unwrap()),
                CallSelection::exclusive(c),
            )
        })
        .sum();
    assert!(waiting / p2p_at_recv > 0.3);
}

#[test]
fn mean_before_merge_composes() {
    // "To alleviate the effects of random errors, we can summarize
    // multiple outputs from every single tool by applying the mean
    // operator before we perform the merge operation."
    use cube_suite::simmpi::NoiseModel;
    let run = |seed: u64, set: EventSet| {
        let program = sweep3d(&Sweep3dConfig {
            px: 2,
            py: 2,
            sweeps: 3,
            ..Sweep3dConfig::default()
        });
        let model = MachineModel {
            noise: NoiseModel {
                amplitude: 0.1,
                seed,
            },
            ..MachineModel::default()
        };
        let mut profiler = ConeProfiler::new(set).unwrap();
        simulate(&program, &model, &mut profiler).unwrap();
        profiler.into_experiment().unwrap()
    };
    let fp_runs: Vec<Experiment> = (0..3).map(|i| run(i, EventSet::flops())).collect();
    let l1_runs: Vec<Experiment> = (0..3).map(|i| run(10 + i, EventSet::l1_cache())).collect();
    let fp_mean = ops::mean(&fp_runs.iter().collect::<Vec<_>>()).unwrap();
    let l1_mean = ops::mean(&l1_runs.iter().collect::<Vec<_>>()).unwrap();
    let joint = ops::merge(&fp_mean, &l1_mean);
    joint.validate().unwrap();
    assert!(joint.metadata().find_metric("PAPI_FP_INS").is_some());
    assert!(joint.metadata().find_metric("PAPI_L1_DCM").is_some());
    assert!(joint.provenance().label().contains("merge(mean("));
}

#[test]
fn merged_system_dimension_is_consistent() {
    // EXPERT and CONE used the same layout → compatible partitions →
    // the hierarchy is copied, not collapsed.
    let ex = expert_experiment();
    let l1 = cone_profile(EventSet::l1_cache());
    let merged = ops::merge(&ex, &l1);
    let md = merged.metadata();
    assert_eq!(md.machines().len(), 1);
    assert_eq!(md.machines()[0].name, "power4");
    assert_eq!(md.nodes().len(), 4);
    assert_eq!(md.processes().len(), 16);
    assert_eq!(md.num_threads(), 16);
}
