//! Cross-tool consistency: CONE (direct call-graph profiling) and
//! EXPERT (post-mortem trace analysis) observe the *same* simulated run
//! through entirely different code paths — monitor callbacks vs event
//! replay. Their Time and Visits severities must agree per call path,
//! which validates both implementations against each other (and is
//! precisely why the paper's merge of the two tools' outputs is
//! meaningful).

use cube_model::aggregate::{call_value, CallSelection, MetricSelection};
use cube_model::Experiment;
use cube_suite::cone::{ConeProfiler, EventSet};
use cube_suite::expert::{analyze, AnalyzeOptions};
use cube_suite::simmpi::apps::{pescan, stencil, PescanConfig, StencilConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, Fanout, MachineModel, Program};

/// Runs both tools over one simulation (simultaneously, via Fanout).
fn both_tools(program: &Program) -> (Experiment, Experiment) {
    let mut tracer = EpilogTracer::new("consistency", 2);
    let mut profiler = ConeProfiler::new(EventSet::flops())
        .unwrap()
        .with_layout("consistency", 2);
    {
        let mut fan = Fanout::new().attach(&mut tracer).attach(&mut profiler);
        simulate(program, &MachineModel::default(), &mut fan).unwrap();
    }
    let expert_exp = analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap();
    let cone_exp = profiler.into_experiment().unwrap();
    (expert_exp, cone_exp)
}

/// Inclusive Time per region name, summed over all call paths ending in
/// that region — a representation-independent fingerprint.
fn time_by_region(e: &Experiment) -> std::collections::BTreeMap<String, f64> {
    let md = e.metadata();
    let time = md.find_metric("Time").unwrap();
    let msel = MetricSelection::inclusive(time);
    let mut out = std::collections::BTreeMap::new();
    for c in md.call_node_ids() {
        let region = md.region(md.call_node_callee(c)).name.clone();
        *out.entry(region).or_insert(0.0) += call_value(e, msel, CallSelection::exclusive(c));
    }
    out
}

fn assert_fingerprints_match(a: &Experiment, b: &Experiment) {
    let fa = time_by_region(a);
    let fb = time_by_region(b);
    for (region, &va) in &fa {
        let vb = fb.get(region).copied().unwrap_or(0.0);
        assert!(
            (va - vb).abs() <= 1e-9 * va.abs().max(1e-9),
            "region '{region}': EXPERT {va} vs CONE {vb}"
        );
    }
    // Same region set (modulo regions with zero time everywhere).
    for region in fb.keys() {
        assert!(fa.contains_key(region), "CONE-only region '{region}'");
    }
}

#[test]
fn expert_and_cone_agree_on_pescan() {
    let program = pescan(&PescanConfig {
        ranks: 6,
        iterations: 5,
        ..PescanConfig::default()
    });
    let (expert_exp, cone_exp) = both_tools(&program);
    assert_fingerprints_match(&expert_exp, &cone_exp);
}

#[test]
fn expert_and_cone_agree_on_stencil() {
    let program = stencil(&StencilConfig::default());
    let (expert_exp, cone_exp) = both_tools(&program);
    assert_fingerprints_match(&expert_exp, &cone_exp);
}

#[test]
fn visits_agree_too() {
    let program = stencil(&StencilConfig {
        ranks: 4,
        iterations: 6,
        ..StencilConfig::default()
    });
    let (expert_exp, cone_exp) = both_tools(&program);
    let count = |e: &Experiment, region: &str| -> f64 {
        let md = e.metadata();
        let visits = md.find_metric("Visits").unwrap();
        let msel = MetricSelection::inclusive(visits);
        md.call_node_ids()
            .filter(|&c| md.region(md.call_node_callee(c)).name == region)
            .map(|c| call_value(e, msel, CallSelection::exclusive(c)))
            .sum()
    };
    for region in ["main", "relax", "exchange_halo", "MPI_Send", "MPI_Recv"] {
        assert_eq!(
            count(&expert_exp, region),
            count(&cone_exp, region),
            "visit counts differ for '{region}'"
        );
    }
}

#[test]
fn merging_the_two_tools_changes_nothing_about_time() {
    // The paper's workflow merges EXPERT + CONE; the shared Time metric
    // comes from the first operand — and since both tools agree, the
    // choice is immaterial for Time.
    let program = stencil(&StencilConfig::default());
    let (expert_exp, cone_exp) = both_tools(&program);
    let m1 = cube_algebra::ops::merge(&expert_exp, &cone_exp);
    let m2 = cube_algebra::ops::merge(&cone_exp, &expert_exp);
    let t1 = time_by_region(&m1);
    let t2 = time_by_region(&m2);
    for (region, &v1) in &t1 {
        let v2 = t2.get(region).copied().unwrap_or(0.0);
        assert!(
            (v1 - v2).abs() <= 1e-9 * v1.abs().max(1e-9),
            "merge order changed Time at '{region}'"
        );
    }
}
