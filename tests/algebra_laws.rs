//! Property-based tests pinning the algebraic laws of the CUBE
//! operators over *randomly generated* experiments.
//!
//! The generator produces structurally diverse experiments: random
//! metric forests (with shared name pools so that operands partially
//! overlap), random call trees, random system sizes, and random
//! severity values including negatives — the hard cases for metadata
//! integration.

use proptest::prelude::*;

use cube_algebra::batch::pairwise;
use cube_algebra::{integrate, ops, stats, MergeOptions};
use cube_model::builder::single_threaded_system;
use cube_model::{Experiment, ExperimentBuilder, MetricId, RegionKind, Unit};

// ---------------------------------------------------------------------------
// generator
// ---------------------------------------------------------------------------

/// Compact description of an experiment, drawn by proptest.
#[derive(Clone, Debug)]
struct Spec {
    /// Metric names drawn from a shared pool; parent index into the
    /// prefix of already-created metrics (None = root).
    metrics: Vec<(u8, Option<u8>)>,
    /// Call nodes: region name index + parent index into prefix.
    calls: Vec<(u8, Option<u8>)>,
    ranks: u8,
    /// Severity values in insertion order (cycled over tuples).
    values: Vec<i32>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let metric = (0u8..6, proptest::option::of(0u8..4));
    let call = (0u8..6, proptest::option::of(0u8..4));
    (
        proptest::collection::vec(metric, 1..5),
        proptest::collection::vec(call, 1..6),
        1u8..5,
        proptest::collection::vec(-50i32..50, 1..20),
    )
        .prop_map(|(metrics, calls, ranks, values)| Spec {
            metrics,
            calls,
            ranks,
            values,
        })
}

fn build(spec: &Spec, name: &str) -> Experiment {
    build_with_metric_prefix(spec, name, "metric")
}

/// Like [`build`], but metric names start with `prefix` — two specs
/// built with different prefixes have guaranteed-disjoint metric sets,
/// which some laws (merge commutativity) need.
fn build_with_metric_prefix(spec: &Spec, name: &str, prefix: &str) -> Experiment {
    let mut b = ExperimentBuilder::new(name);
    let mut metric_ids: Vec<MetricId> = Vec::new();
    for (name_idx, parent) in &spec.metrics {
        // Parent must already exist and (for unit homogeneity) every
        // generated metric uses seconds.
        let parent_id = parent.and_then(|p| metric_ids.get(p as usize).copied());
        let id = b.def_metric(format!("{prefix}{name_idx}"), Unit::Seconds, "", parent_id);
        metric_ids.push(id);
    }
    let module = b.def_module("gen.rs", "/gen.rs");
    let mut region_of_name = std::collections::HashMap::new();
    let mut call_ids = Vec::new();
    for (name_idx, parent) in &spec.calls {
        let region = *region_of_name.entry(*name_idx).or_insert_with(|| {
            b.def_region(
                format!("region{name_idx}"),
                module,
                RegionKind::Function,
                u32::from(*name_idx) + 1,
                u32::from(*name_idx) + 1,
            )
        });
        let cs = b.def_call_site("gen.rs", u32::from(*name_idx) + 1, region);
        let parent_id = parent.and_then(|p| call_ids.get(p as usize).copied());
        call_ids.push(b.def_call_node(cs, parent_id));
    }
    let threads = single_threaded_system(&mut b, spec.ranks as usize);
    let mut vi = 0usize;
    for &m in &metric_ids {
        for &c in &call_ids {
            for &t in &threads {
                let v = spec.values[vi % spec.values.len()];
                vi += 1;
                if v != 0 {
                    b.set_severity(m, c, t, f64::from(v) * 0.25);
                }
            }
        }
    }
    b.build().expect("generated experiment is valid")
}

/// Builds a *lint-clean* experiment from the spec: severity values are
/// made non-negative (negative values in an `original` experiment draw
/// W005) and duplicate sibling metrics fold into one definition (W001).
/// The structural diversity of [`build`] is otherwise preserved.
fn build_clean(spec: &Spec, name: &str) -> Experiment {
    let mut sanitized = spec.clone();
    for v in &mut sanitized.values {
        *v = v.abs();
    }
    let mut b = ExperimentBuilder::new(name);
    let mut metric_ids: Vec<MetricId> = Vec::new();
    let mut seen: std::collections::HashMap<(u8, Option<MetricId>), MetricId> =
        std::collections::HashMap::new();
    for (name_idx, parent) in &sanitized.metrics {
        let parent_id = parent.and_then(|p| metric_ids.get(p as usize).copied());
        let id = *seen.entry((*name_idx, parent_id)).or_insert_with(|| {
            b.def_metric(format!("metric{name_idx}"), Unit::Seconds, "", parent_id)
        });
        metric_ids.push(id);
    }
    let module = b.def_module("gen.rs", "/gen.rs");
    let mut region_of_name = std::collections::HashMap::new();
    let mut call_ids = Vec::new();
    for (name_idx, parent) in &sanitized.calls {
        let region = *region_of_name.entry(*name_idx).or_insert_with(|| {
            b.def_region(
                format!("region{name_idx}"),
                module,
                RegionKind::Function,
                u32::from(*name_idx) + 1,
                u32::from(*name_idx) + 1,
            )
        });
        let cs = b.def_call_site("gen.rs", u32::from(*name_idx) + 1, region);
        let parent_id = parent.and_then(|p| call_ids.get(p as usize).copied());
        call_ids.push(b.def_call_node(cs, parent_id));
    }
    let threads = single_threaded_system(&mut b, sanitized.ranks as usize);
    let mut vi = 0usize;
    for &m in &metric_ids {
        for &c in &call_ids {
            for &t in &threads {
                let v = sanitized.values[vi % sanitized.values.len()];
                vi += 1;
                if v != 0 {
                    b.set_severity(m, c, t, f64::from(v) * 0.25);
                }
            }
        }
    }
    b.build().expect("generated experiment is valid")
}

/// Serializes tests that retarget the global worker pool
/// ([`rayon::set_threads`]); the limit is process-wide, so sweeps over
/// thread counts must not interleave.
fn threads_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The severity array as raw bits — the unit of "byte-identical".
fn severity_bits(e: &Experiment) -> Vec<u64> {
    e.severity().values().iter().map(|v| v.to_bits()).collect()
}

fn total(e: &Experiment) -> f64 {
    e.severity().values().iter().sum()
}

/// Totals per *metric path* (names from the root down), which
/// integration keeps unique. Entity ids may be remapped between two
/// equivalent integrations, so laws that mix operand orders compare
/// these maps instead of raw arrays.
fn metric_path_totals(e: &Experiment) -> std::collections::HashMap<String, f64> {
    let md = e.metadata();
    let mut out = std::collections::HashMap::new();
    for m in md.metric_ids() {
        let mut parts = vec![md.metric(m).name.clone()];
        let mut cur = m;
        while let Some(p) = md.metric(cur).parent {
            parts.push(md.metric(p).name.clone());
            cur = p;
        }
        parts.reverse();
        *out.entry(parts.join("/")).or_insert(0.0) += e.severity().metric_sum(m);
    }
    out
}

/// Severity accumulated per `(metric path, call path, rank, thread)`.
/// Duplicate-named siblings fold into one key, so this is a
/// remapping-invariant view of the full severity tensor.
fn canonical_totals(e: &Experiment) -> std::collections::BTreeMap<(String, String, i32, u32), f64> {
    let md = e.metadata();
    let mut metric_path = Vec::new();
    for m in md.metric_ids() {
        let mut parts = vec![md.metric(m).name.clone()];
        let mut cur = m;
        while let Some(p) = md.metric(cur).parent {
            parts.push(md.metric(p).name.clone());
            cur = p;
        }
        parts.reverse();
        metric_path.push(parts.join("/"));
    }
    let mut out = std::collections::BTreeMap::new();
    for m in md.metric_ids() {
        for c in md.call_node_ids() {
            let call_path = md.call_path(c).join("/");
            for t in md.thread_ids() {
                let thread = md.thread(t);
                let rank = md.process(thread.process).rank;
                *out.entry((
                    metric_path[m.index()].clone(),
                    call_path.clone(),
                    rank,
                    thread.number,
                ))
                .or_insert(0.0) += e.severity().get(m, c, t);
            }
        }
    }
    out
}

fn assert_same_totals<K: Ord + std::fmt::Debug>(
    x: &std::collections::BTreeMap<K, f64>,
    y: &std::collections::BTreeMap<K, f64>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        x.keys().collect::<Vec<_>>(),
        y.keys().collect::<Vec<_>>(),
        "canonical domains diverged"
    );
    for (k, vx) in x {
        let vy = y[k];
        prop_assert!(
            (vx - vy).abs() <= 1e-9 * vx.abs().max(1.0),
            "{k:?}: {vx} vs {vy}"
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Closure: every operator output is a valid experiment.
    #[test]
    fn operators_are_closed(sa in spec_strategy(), sb in spec_strategy()) {
        let a = build(&sa, "a");
        let b = build(&sb, "b");
        ops::diff(&a, &b).validate().unwrap();
        ops::merge(&a, &b).validate().unwrap();
        ops::mean(&[&a, &b]).unwrap().validate().unwrap();
        ops::min(&[&a, &b]).unwrap().validate().unwrap();
        ops::max(&[&a, &b]).unwrap().validate().unwrap();
        ops::sum(&[&a, &b]).unwrap().validate().unwrap();
    }

    /// diff(a, a) has a's structure and zero severity everywhere.
    #[test]
    fn self_difference_is_zero(s in spec_strategy()) {
        let a = build(&s, "a");
        let d = ops::diff(&a, &a);
        prop_assert!(d.severity().values().iter().all(|&v| v == 0.0));
        prop_assert_eq!(d.metadata(), a.metadata());
    }

    /// mean of k copies of a is a (values-wise).
    #[test]
    fn mean_of_copies_is_identity(s in spec_strategy(), k in 1usize..5) {
        let a = build(&s, "a");
        let copies: Vec<&Experiment> = std::iter::repeat_n(&a, k).collect();
        let m = ops::mean(&copies).unwrap();
        prop_assert!(m.severity().approx_eq(a.severity(), 1e-9));
    }

    /// mean is permutation-invariant.
    #[test]
    fn mean_is_permutation_invariant(
        sa in spec_strategy(),
        sb in spec_strategy(),
        sc in spec_strategy(),
    ) {
        let (a, b, c) = (build(&sa, "a"), build(&sb, "b"), build(&sc, "c"));
        let abc = ops::mean(&[&a, &b, &c]).unwrap();
        let cba = ops::mean(&[&c, &b, &a]).unwrap();
        // Metadata ordering may differ (entities are appended in operand
        // order), so compare totals per metric path.
        let x = metric_path_totals(&abc);
        let y = metric_path_totals(&cba);
        prop_assert_eq!(
            x.keys().collect::<std::collections::BTreeSet<_>>(),
            y.keys().collect::<std::collections::BTreeSet<_>>()
        );
        for (k, vx) in &x {
            let vy = y[k];
            prop_assert!((vx - vy).abs() <= 1e-9 * vx.abs().max(1.0), "{}: {} vs {}", k, vx, vy);
        }
    }

    /// merge(a, a) is a (values-wise).
    #[test]
    fn merge_is_idempotent(s in spec_strategy()) {
        let a = build(&s, "a");
        let m = ops::merge(&a, &a);
        prop_assert!(m.approx_eq(&a, 1e-12));
    }

    /// Closure round-trip: merging b in and subtracting it back out is
    /// a no-op. With equal metadata, merge takes every metric from a,
    /// so diff(merge(a, b), b) = diff(a, b) exactly.
    #[test]
    fn merge_then_diff_round_trips(s in spec_strategy(), delta in -10i32..10) {
        let a = build(&s, "a");
        let mut b = build(&s, "b");
        for v in b.severity_mut().values_mut() {
            *v += f64::from(delta);
        }
        let round = ops::diff(&ops::merge(&a, &b), &b);
        let direct = ops::diff(&a, &b);
        prop_assert_eq!(round.metadata(), direct.metadata());
        prop_assert!(round.severity().approx_eq(direct.severity(), 1e-12));
        round.validate().unwrap();
    }

    /// merge is commutative up to id remapping when the operands
    /// provide disjoint metric sets: each metric's values come from its
    /// sole provider regardless of operand order.
    #[test]
    fn merge_commutes_up_to_remapping(sa in spec_strategy(), sb in spec_strategy()) {
        let a = build_with_metric_prefix(&sa, "a", "left");
        let b = build_with_metric_prefix(&sb, "b", "right");
        let ab = ops::merge(&a, &b);
        let ba = ops::merge(&b, &a);
        assert_same_totals(&canonical_totals(&ab), &canonical_totals(&ba))?;
    }

    /// diff is anticommutative on the integrated domain.
    #[test]
    fn diff_is_anticommutative(sa in spec_strategy(), sb in spec_strategy()) {
        let a = build(&sa, "a");
        let b = build(&sb, "b");
        let ab = ops::diff(&a, &b);
        let ba = ops::diff(&b, &a);
        // Compare via totals (metadata entity order may differ).
        prop_assert!((total(&ab) + total(&ba)).abs() < 1e-9);
    }

    /// Zero extension conserves mass: sum(diff) = sum(a) − sum(b), and
    /// sum(sum-op) = sum(a) + sum(b).
    #[test]
    fn totals_are_conserved(sa in spec_strategy(), sb in spec_strategy()) {
        let a = build(&sa, "a");
        let b = build(&sb, "b");
        let d = ops::diff(&a, &b);
        prop_assert!((total(&d) - (total(&a) - total(&b))).abs() < 1e-9);
        let s = ops::sum(&[&a, &b]).unwrap();
        prop_assert!((total(&s) - (total(&a) + total(&b))).abs() < 1e-9);
    }

    /// min ≤ mean ≤ max element-wise over the integrated domain.
    #[test]
    fn min_mean_max_ordering(sa in spec_strategy(), sb in spec_strategy()) {
        let a = build(&sa, "a");
        let b = build(&sb, "b");
        let lo = ops::min(&[&a, &b]).unwrap();
        let mid = ops::mean(&[&a, &b]).unwrap();
        let hi = ops::max(&[&a, &b]).unwrap();
        for ((&l, &m), &h) in lo
            .severity()
            .values()
            .iter()
            .zip(mid.severity().values())
            .zip(hi.severity().values())
        {
            prop_assert!(l <= m + 1e-12 && m <= h + 1e-12);
        }
    }

    /// The batch engine behind the public n-ary entry points agrees
    /// with the legacy pairwise fold on every reduction, for arbitrary
    /// partially-overlapping operands — compared on the canonical
    /// (remapping-invariant) severity view, since the two evaluation
    /// orders may lay out the integrated metadata differently.
    #[test]
    fn batch_matches_pairwise_fold(
        sa in spec_strategy(),
        sb in spec_strategy(),
        sc in spec_strategy(),
    ) {
        let (a, b, c) = (build(&sa, "a"), build(&sb, "b"), build(&sc, "c"));
        let refs: [&Experiment; 3] = [&a, &b, &c];
        let o = MergeOptions::default;
        let cases = [
            (ops::sum(&refs).unwrap(), pairwise::sum(&refs, o()).unwrap()),
            (ops::mean(&refs).unwrap(), pairwise::mean(&refs, o()).unwrap()),
            (ops::min(&refs).unwrap(), pairwise::min(&refs, o()).unwrap()),
            (ops::max(&refs).unwrap(), pairwise::max(&refs, o()).unwrap()),
            (stats::variance(&refs).unwrap(), pairwise::variance(&refs, o()).unwrap()),
            (stats::stddev(&refs).unwrap(), pairwise::stddev(&refs, o()).unwrap()),
        ];
        for (fast, slow) in &cases {
            assert_same_totals(&canonical_totals(fast), &canonical_totals(slow))?;
        }
    }

    /// Thread-count invariance of the batch engine: over random shapes
    /// and a sweep of pool sizes, every reduction is *bit-identical*
    /// to its 1-thread evaluation, and on an equal-metadata series the
    /// order-insensitive reductions (`sum`, `min`, `max`) reproduce
    /// the sequential pairwise oracle bit-for-bit as well.
    #[test]
    fn batch_is_bit_identical_across_thread_counts(
        s in spec_strategy(),
        factors in proptest::collection::vec(-4i32..=4, 1..4),
    ) {
        let base = build(&s, "base");
        // Scaling preserves metadata exactly, so the series shares one
        // layout and severity arrays are directly comparable.
        let scaled: Vec<Experiment> = factors
            .iter()
            .map(|&f| ops::scale(&base, f64::from(f) / 2.0))
            .collect();
        let mut refs: Vec<&Experiment> = vec![&base];
        refs.extend(scaled.iter());

        let _lock = threads_lock();
        let prev = rayon::current_num_threads();
        let mut reference: Option<Vec<Vec<u64>>> = None;
        for t in [1usize, 2, 4] {
            rayon::set_threads(t);
            let results = vec![
                severity_bits(&ops::sum(&refs).unwrap()),
                severity_bits(&ops::min(&refs).unwrap()),
                severity_bits(&ops::max(&refs).unwrap()),
                severity_bits(&ops::mean(&refs).unwrap()),
                severity_bits(&stats::stddev(&refs).unwrap()),
                severity_bits(&ops::diff(&base, refs[refs.len() - 1])),
            ];
            match &reference {
                None => reference = Some(results),
                Some(r) => prop_assert_eq!(r, &results, "thread count {} diverged", t),
            }
        }
        rayon::set_threads(prev);

        let o = MergeOptions::default;
        let oracles = [
            (ops::sum(&refs).unwrap(), pairwise::sum(&refs, o()).unwrap()),
            (ops::min(&refs).unwrap(), pairwise::min(&refs, o()).unwrap()),
            (ops::max(&refs).unwrap(), pairwise::max(&refs, o()).unwrap()),
        ];
        for (fast, slow) in &oracles {
            prop_assert_eq!(severity_bits(fast), severity_bits(slow));
        }
    }

    /// Integration maps are total and consistent: every operand tuple
    /// lands inside the integrated shape.
    #[test]
    fn integration_maps_are_total(sa in spec_strategy(), sb in spec_strategy()) {
        let a = build(&sa, "a");
        let b = build(&sb, "b");
        let integrated = integrate(&[&a, &b], MergeOptions::default());
        let (nm, nc, nt) = integrated.metadata.shape();
        for (op, map) in [(&a, &integrated.maps[0]), (&b, &integrated.maps[1])] {
            let (om, oc, ot) = op.metadata().shape();
            prop_assert_eq!(map.metrics.len(), om);
            prop_assert_eq!(map.call_nodes.len(), oc);
            prop_assert_eq!(map.threads.len(), ot);
            prop_assert!(map.metrics.iter().all(|m| m.index() < nm));
            prop_assert!(map.call_nodes.iter().all(|c| c.index() < nc));
            prop_assert!(map.threads.iter().all(|t| t.index() < nt));
        }
        integrated.metadata.validate().unwrap();
    }

    /// The composite "difference of means" (the paper's example of
    /// operator composition) equals the mean of pairwise differences
    /// when operands share metadata.
    #[test]
    fn linear_composites_commute(s in spec_strategy(), deltas in proptest::collection::vec(-10i32..10, 4)) {
        let base = build(&s, "base");
        let variant = |d: i32, name: &str| {
            let mut e = build(&s, name);
            for v in e.severity_mut().values_mut() {
                *v += f64::from(d);
            }
            e
        };
        let a1 = variant(deltas[0], "a1");
        let a2 = variant(deltas[1], "a2");
        let b1 = variant(deltas[2], "b1");
        let b2 = variant(deltas[3], "b2");
        let diff_of_means = ops::diff(
            &ops::mean(&[&a1, &a2]).unwrap(),
            &ops::mean(&[&b1, &b2]).unwrap(),
        );
        let mean_of_diffs = ops::mean(&[&ops::diff(&a1, &b1), &ops::diff(&a2, &b2)]).unwrap();
        prop_assert!(diff_of_means
            .severity()
            .approx_eq(mean_of_diffs.severity(), 1e-9));
        let _ = base;
    }

    /// XML round-trip preserves arbitrary experiments exactly.
    #[test]
    fn xml_roundtrip_is_exact(s in spec_strategy()) {
        let a = build(&s, "xml roundtrip");
        let text = cube_xml::write_experiment(&a);
        let back = cube_xml::read_experiment(&text).unwrap();
        prop_assert!(back.approx_eq(&a, 0.0));
    }

    /// Derived experiments survive the XML round-trip too (closure at
    /// the file level).
    #[test]
    fn derived_experiments_roundtrip(sa in spec_strategy(), sb in spec_strategy()) {
        let d = ops::diff(&build(&sa, "a"), &build(&sb, "b"));
        let back = cube_xml::read_experiment(&cube_xml::write_experiment(&d)).unwrap();
        prop_assert!(back.approx_eq(&d, 0.0));
        prop_assert_eq!(back.provenance(), d.provenance());
    }

    /// The closure theorem as a lint property: operators applied to
    /// lint-clean operands produce lint-clean results — no errors *and*
    /// no warnings — for the binary ops, the n-ary reductions, and the
    /// statistical composites.
    #[test]
    fn operators_preserve_lint_cleanliness(
        sa in spec_strategy(),
        sb in spec_strategy(),
        sc in spec_strategy(),
    ) {
        let (a, b, c) = (
            build_clean(&sa, "a"),
            build_clean(&sb, "b"),
            build_clean(&sc, "c"),
        );
        for (name, e) in [("a", &a), ("b", &b), ("c", &c)] {
            prop_assert!(e.lint().is_clean(), "operand {name} not clean:\n{}", e.lint());
        }
        let refs: [&Experiment; 3] = [&a, &b, &c];
        let results = [
            ("diff", ops::diff(&a, &b)),
            ("merge", ops::merge(&a, &b)),
            ("mean", ops::mean(&refs).unwrap()),
            ("sum", ops::sum(&refs).unwrap()),
            ("min", ops::min(&refs).unwrap()),
            ("max", ops::max(&refs).unwrap()),
            ("scale", ops::scale(&a, -1.5)),
            ("variance", stats::variance(&refs).unwrap()),
            ("stddev", stats::stddev(&refs).unwrap()),
        ];
        for (op, e) in &results {
            let report = e.lint();
            prop_assert!(report.is_clean(), "{op} result not clean:\n{report}");
        }
    }

    /// Columnar-store round-trip is exact *and* canonical: decoding a
    /// store and re-encoding it reproduces the original bytes —
    /// `pack(unpack(x)) == x` — for arbitrary experiments, original or
    /// derived.
    #[test]
    fn store_roundtrip_is_canonical(sa in spec_strategy(), sb in spec_strategy()) {
        let a = build(&sa, "store roundtrip");
        let d = ops::diff(&a, &build(&sb, "b"));
        for e in [&a, &d] {
            let bytes = cube_store::write_store(e);
            let back = cube_store::read_store(&bytes, &cube_xml::ReadLimits::default()).unwrap();
            prop_assert!(back.approx_eq(e, 0.0));
            prop_assert_eq!(back.provenance(), e.provenance());
            prop_assert_eq!(cube_store::write_store(&back), bytes);
        }
    }

    /// Backend equivalence: a batch reduction gathered from lazily
    /// opened `.cubec` stores is *bit-identical* to the same reduction
    /// over the in-memory experiments.
    #[test]
    fn batch_agrees_across_backends(sa in spec_strategy(), sb in spec_strategy()) {
        use cube_algebra::{BatchOperand, BatchPlan, Expr, Reduction};
        static CASE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("cube_laws_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let exps = [build(&sa, "a"), build(&sb, "b")];
        let handles: Vec<cube_store::ColumnarExperiment> = exps
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let path = dir.join(format!("case{case}_{i}.cubec"));
                cube_store::write_store_file(e, &path).unwrap();
                let h = cube_store::ColumnarExperiment::open(&path).unwrap();
                h.severity().unwrap();
                h
            })
            .collect();

        let expr = Expr::reduce(Reduction::Mean, 0..exps.len());
        let from_memory = {
            let refs: Vec<&Experiment> = exps.iter().collect();
            BatchPlan::new(&refs).eval(&expr).unwrap()
        };
        let from_store = {
            let ops: Vec<&dyn BatchOperand> = handles.iter().map(|h| h as _).collect();
            BatchPlan::from_operands(&ops, MergeOptions::default()).eval(&expr).unwrap()
        };
        prop_assert_eq!(from_memory.metadata(), from_store.metadata());
        prop_assert_eq!(severity_bits(&from_memory), severity_bits(&from_store));
        prop_assert_eq!(from_memory.provenance(), from_store.provenance());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Lint-cleanliness survives the file format: writing a clean
    /// experiment (original or derived, including negative derived
    /// severities) and strict-reading it back reports no diagnostics.
    #[test]
    fn roundtrip_preserves_lint_cleanliness(sa in spec_strategy(), sb in spec_strategy()) {
        let a = build_clean(&sa, "a");
        let d = ops::diff(&a, &build_clean(&sb, "b"));
        for (name, e) in [("original", &a), ("derived", &d)] {
            let (back, report) = cube_xml::lint_read(&cube_xml::write_experiment(e));
            prop_assert!(report.is_clean(), "{name} round-trip not clean:\n{report}");
            prop_assert!(back.is_some_and(|x| x.approx_eq(e, 0.0)));
        }
    }
}

/// A dense experiment big enough to cross the operators' parallel
/// threshold: 4 metrics × 64 call nodes × 300 ranks = 76,800 severity
/// values, pseudo-random including negatives.
fn big_experiment(seed: u64) -> Experiment {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut b = ExperimentBuilder::new(format!("big {seed}"));
    let root = b.def_metric("time", Unit::Seconds, "", None);
    let mut metrics = vec![root];
    for i in 1..4 {
        metrics.push(b.def_metric(format!("m{i}"), Unit::Seconds, "", Some(root)));
    }
    let module = b.def_module("big.rs", "/big.rs");
    let mut calls = Vec::new();
    let mut parent = None;
    for i in 0..64u32 {
        let region = b.def_region(format!("r{i}"), module, RegionKind::Function, i + 1, i + 1);
        let site = b.def_call_site("big.rs", i + 1, region);
        let node = b.def_call_node(site, parent);
        // Alternate chain and sibling so the tree has depth and fanout.
        if i % 2 == 0 {
            parent = Some(node);
        }
        calls.push(node);
    }
    let threads = single_threaded_system(&mut b, 300);
    let mut rng = StdRng::seed_from_u64(seed);
    for &m in &metrics {
        for &c in &calls {
            for &t in &threads {
                b.set_severity(m, c, t, rng.random::<f64>() * 200.0 - 100.0);
            }
        }
    }
    b.build().unwrap()
}

/// The non-property companion to the shape-randomized invariance law:
/// arrays large enough that the worker pool genuinely splits them
/// (above the 2^16-element parallel threshold), checked bit-for-bit
/// across pool sizes for the whole operator set the CLI exposes.
#[test]
fn large_batch_reduction_is_bit_identical_across_thread_counts() {
    let runs: Vec<Experiment> = (0..5).map(big_experiment).collect();
    let refs: Vec<&Experiment> = runs.iter().collect();

    let _lock = threads_lock();
    let prev = rayon::current_num_threads();
    let mut reference: Option<Vec<Vec<u64>>> = None;
    for t in [1usize, 2, 4, 8] {
        rayon::set_threads(t);
        let results = vec![
            severity_bits(&ops::mean(&refs).unwrap()),
            severity_bits(&ops::sum(&refs).unwrap()),
            severity_bits(&stats::stddev(&refs).unwrap()),
            severity_bits(&ops::diff(&runs[0], &runs[1])),
            severity_bits(&ops::merge(&runs[0], &runs[1])),
        ];
        match &reference {
            None => reference = Some(results),
            Some(r) => assert_eq!(r, &results, "thread count {t} diverged"),
        }
    }
    rayon::set_threads(prev);
}
