//! End-to-end proof that `cube serve` is a faithful remote face of the
//! CLI: a server is booted on an ephemeral port, a measured corpus is
//! ingested in both wire formats, and every `/eval` response is
//! required to be *byte-identical* to the file the CLI writes for the
//! same computation — across thread counts, and on cache hits as well
//! as misses. Byte equality is the whole contract: a client must not
//! be able to tell whether its answer came from the cache, a different
//! pool size, or a CLI run.

#[path = "serve_util/mod.rs"]
mod serve_util;

use serve_util::{json_field, json_number, request};
use std::path::PathBuf;

use cube_suite::simmpi::apps::{pescan, PescanConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, MachineModel};
use cube_xml::write_experiment_file;

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cube_serve_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn produce(ranks: usize, iterations: usize, barriers: bool) -> cube_model::Experiment {
    let program = pescan(&PescanConfig {
        ranks,
        iterations,
        barriers,
        ..PescanConfig::default()
    });
    let mut tracer = EpilogTracer::new("cluster", 2);
    simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
    cube_suite::expert::analyze(
        &tracer.into_trace(),
        &cube_suite::expert::AnalyzeOptions::default(),
    )
    .unwrap()
}

fn cube(parts: &[&str]) -> cube_cli::Outcome {
    let args: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    cube_cli::run(&args).expect("cube invocation succeeds")
}

#[test]
fn eval_matches_cli_bytes_across_threads_and_cache_states() {
    let dir = workdir("main");
    let server = cube_serve::start(
        cube_serve::ServeConfig {
            workers: 2,
            ..cube_serve::ServeConfig::default()
        },
        &dir.join("repo"),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Ingest four runs: two uploaded as .cube XML, two as .cubec, so
    // both wire formats land in the same content-addressed namespace.
    let runs = [
        produce(4, 6, true),
        produce(4, 6, false),
        produce(4, 9, true),
        produce(4, 9, false),
    ];
    let mut ids = Vec::new();
    for (i, exp) in runs.iter().enumerate() {
        let bytes = if i % 2 == 0 {
            let path = dir.join(format!("up{i}.cube"));
            write_experiment_file(exp, &path).unwrap();
            std::fs::read(&path).unwrap()
        } else {
            cube_store::write_store(exp)
        };
        let reply = request(addr, "PUT", "/experiments", &bytes);
        assert_eq!(reply.status, 201, "{}", reply.text());
        let body = reply.text();
        assert!(body.contains("\"created\":true"), "{body}");
        ids.push(json_field(&body, "id").expect("ingest returns an id"));
    }
    // Re-uploading is idempotent: same id, 200 instead of 201.
    let again = request(
        addr,
        "PUT",
        "/experiments",
        &cube_store::write_store(&runs[1]),
    );
    assert_eq!(again.status, 200, "{}", again.text());
    assert_eq!(json_field(&again.text(), "id").as_deref(), Some(&*ids[1]));

    // The stats endpoint sees the ingested shape.
    let stats = request(addr, "GET", &format!("/experiments/{}/stats", ids[0]), b"");
    assert_eq!(stats.status, 200, "{}", stats.text());
    let body = stats.text();
    assert_eq!(json_field(&body, "kind").as_deref(), Some("original"));
    assert!(json_number(&body, "values").unwrap() > 0);
    assert!(json_number(&body, "nonzero").unwrap() > 0);
    // ... and the lint endpoint calls the stored object clean.
    let lint = request(addr, "GET", &format!("/experiments/{}/lint", ids[0]), b"");
    assert_eq!(lint.status, 200, "{}", lint.text());
    assert!(lint.text().contains("\"ok\":true"), "{}", lint.text());

    // CLI references: the exact object files the server serves from,
    // so operands are bit-for-bit the same on both sides.
    let objects: Vec<String> = ids
        .iter()
        .map(|id| {
            dir.join("repo")
                .join(cube_serve::Repository::relative_object_path(id))
                .to_string_lossy()
                .into_owned()
        })
        .collect();

    let mean_expr = format!("mean({},{},{},{})", ids[0], ids[1], ids[2], ids[3]);
    let composite_expr = format!(
        "diff(mean({},{}),mean({},{}))",
        ids[0], ids[1], ids[2], ids[3]
    );

    for (round, threads) in ["1", "2", "8"].iter().enumerate() {
        let mean_out = dir
            .join(format!("mean.t{threads}.cube"))
            .to_string_lossy()
            .into_owned();
        let comp_out = dir
            .join(format!("comp.t{threads}.cube"))
            .to_string_lossy()
            .into_owned();
        cube(&[
            "stats",
            &mean_out,
            &objects[0],
            &objects[1],
            &objects[2],
            &objects[3],
            "--threads",
            threads,
        ]);
        cube(&[
            "stats",
            &comp_out,
            &objects[0],
            &objects[1],
            &objects[2],
            &objects[3],
            "--minus",
            "2",
            "--threads",
            threads,
        ]);
        // The CLI set the global pool; the in-process server workers
        // evaluate on that same pool now.
        for (expr, cli_file) in [(&mean_expr, &mean_out), (&composite_expr, &comp_out)] {
            let reply = request(addr, "POST", "/eval", expr.as_bytes());
            assert_eq!(reply.status, 200, "{}", reply.text());
            let cache = reply.header("x-cache").expect("x-cache header").to_string();
            if round == 0 {
                assert_eq!(cache, "miss", "first evaluation populates the cache");
            } else {
                assert_eq!(cache, "hit", "repeat evaluation is served from cache");
            }
            let cli_bytes = std::fs::read(cli_file).unwrap();
            assert_eq!(
                reply.body, cli_bytes,
                "/eval ({cache}) differs from CLI bytes at --threads {threads} for {expr}"
            );
        }
    }

    // JSON-framed eval bodies are accepted too, and hit the same cache.
    let json_body = format!("{{\"expr\": \"{mean_expr}\"}}");
    let reply = request(addr, "POST", "/eval", json_body.as_bytes());
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("x-cache"), Some("hit"));

    // Error surface: an unknown operand is now caught by the static
    // pre-flight, which answers with the checker's stable A001 code
    // and a structured diagnostics array instead of a bare message.
    let reply = request(addr, "POST", "/eval", b"mean(0123456789abcdef)");
    assert_eq!(reply.status, 404, "{}", reply.text());
    let body = reply.text();
    assert_eq!(json_field(&body, "code").as_deref(), Some("A001"));
    assert!(body.contains("\"diagnostics\":["), "{body}");
    let reply = request(addr, "POST", "/eval", b"mean(");
    assert_eq!(reply.status, 400, "{}", reply.text());
    assert_eq!(json_field(&reply.text(), "code").as_deref(), Some("P001"));
    let reply = request(addr, "GET", "/no/such/route", b"");
    assert_eq!(reply.status, 404);

    // The /check endpoint runs the same analysis without evaluating:
    // a clean expression reports ok with a cost estimate...
    let reply = request(addr, "POST", "/check", mean_expr.as_bytes());
    assert_eq!(reply.status, 200, "{}", reply.text());
    let body = reply.text();
    assert!(body.contains("\"ok\":true"), "{body}");
    assert!(body.contains("\"cost\":{"), "{body}");
    // ... and a statically-zero diff earns its A008 warning plus the
    // zero() rewrite, still with status 200 (the report is the answer).
    let zero_expr = format!("diff({},{})", ids[0], ids[0]);
    let reply = request(addr, "POST", "/check", zero_expr.as_bytes());
    assert_eq!(reply.status, 200, "{}", reply.text());
    let body = reply.text();
    assert!(body.contains("\"A008\""), "{body}");
    assert_eq!(json_field(&body, "rewritten").as_deref(), Some("zero()"));

    // Server counters saw all of it.
    let stats = request(addr, "GET", "/stats", b"");
    let body = stats.text();
    assert_eq!(json_number(&body, "experiments"), Some(4));
    assert!(json_number(&body, "evals").unwrap() >= 9);

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: `/eval` with a missing experiment id must fail early
/// with a structured 404-class JSON error — before any evaluation
/// work, without inserting into the result cache, and without reading
/// severity pages of the operands that *do* resolve.
#[test]
fn eval_rejects_missing_experiment_before_any_work() {
    let dir = workdir("preflight");
    let server = cube_serve::start(
        cube_serve::ServeConfig {
            workers: 1,
            ..cube_serve::ServeConfig::default()
        },
        &dir.join("repo"),
    )
    .expect("server starts");
    let addr = server.local_addr();

    let bytes = cube_store::write_store(&produce(2, 3, true));
    let reply = request(addr, "PUT", "/experiments", &bytes);
    assert_eq!(reply.status, 201, "{}", reply.text());
    let good = json_field(&reply.text(), "id").expect("ingest returns an id");

    // One resolvable operand, one missing: the pre-flight reports the
    // missing one with its A001 diagnostic and a 404 status.
    let expr = format!("mean({good},ffffffffffffffff)");
    let reply = request(addr, "POST", "/eval", expr.as_bytes());
    assert_eq!(reply.status, 404, "{}", reply.text());
    let body = reply.text();
    assert_eq!(json_field(&body, "code").as_deref(), Some("A001"));
    assert!(
        body.contains("ffffffffffffffff"),
        "diagnostics name the missing operand: {body}"
    );

    // Nothing was evaluated: the result cache holds no entry, so the
    // rejected expression can never be served from cache later.
    let stats = request(addr, "GET", "/stats", b"");
    let stats_body = stats.text();
    assert!(
        stats_body.contains("\"result_cache\":{\"hits\":0,\"misses\":1,\"entries\":0}"),
        "{stats_body}"
    );

    // The resolvable operand was opened metadata-only: its cached
    // handle never pulled severity pages into memory.
    let handle = server.shared().repo.open(&good).expect("handle cached");
    assert!(
        !handle.is_loaded(),
        "pre-flight must not touch severity pages"
    );

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}
