//! Golden corpus for the static expression checker (`cube check`).
//!
//! Every `tests/fixtures/check/*.expr` file is analyzed against
//! metadata-only opens of the corpus operands and the full report —
//! diagnostics with their stable `A0xx` codes and byte offsets, the
//! canonical and rewritten forms, the cost estimate — is compared
//! byte-exactly against its `.expect` snapshot. Set
//! `CUBE_REGEN_CHECK=1` to rewrite the snapshots after an intentional
//! analyzer change.
//!
//! A second test drives the *same* fixtures through all three
//! surfaces — the library, `cube check --format json`, and the
//! server's `POST /check` — and requires identical diagnostic
//! signatures (code, level, offset, len) plus identical canonical and
//! rewritten renderings everywhere. Messages may differ (each surface
//! says *why* a name did not resolve in its own terms); identity of
//! code and offset is the cross-surface contract.
//!
//! Operand names bind by file stem: `full` and `minimal` are the
//! shared valid fixtures, `twin` and `disjoint` live under
//! `tests/fixtures/check/operands/`. Fixtures whose name starts with
//! `a005` additionally provide the (unreferenced) `disjoint` operand
//! to witness the dead-operand warning.
//!
//! `A002` (empty reduction) and `A003` (operand index out of range)
//! are unreachable from parsed text — the parser rejects empty lists
//! and interns every name it sees — so they are pinned by unit tests
//! in `cube_algebra::check` instead of corpus fixtures.

// Not every shared helper is used from this suite.
#[allow(dead_code)]
#[path = "serve_util/mod.rs"]
mod serve_util;

use serve_util::{json_field, request};
use std::path::{Path, PathBuf};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn fixture_dir() -> PathBuf {
    repo_root().join("tests/fixtures/check")
}

/// The corpus operand environment: name → operand file.
fn operand_file(name: &str) -> Option<PathBuf> {
    let path = match name {
        "full" => "tests/fixtures/valid/full.cube",
        "minimal" => "tests/fixtures/valid/minimal.cube",
        "twin" => "tests/fixtures/check/operands/twin.cube",
        "disjoint" => "tests/fixtures/check/operands/disjoint.cube",
        _ => return None,
    };
    Some(repo_root().join(path))
}

/// Whether this fixture provides the unreferenced `disjoint` operand
/// on top of what the expression names (the dead-operand convention).
fn provides_spare(fixture: &Path) -> bool {
    fixture
        .file_name()
        .and_then(|f| f.to_str())
        .is_some_and(|f| f.starts_with("a005"))
}

fn fixtures() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(fixture_dir())
        .expect("check fixture directory exists")
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "expr"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .expr fixtures found");
    files
}

/// Runs the library checker over one fixture, resolving operands the
/// same way the CLI does (metadata from the operand files; unknown
/// names carry a note) and returns the full JSON report.
fn library_report(fixture: &Path, expr: &str) -> String {
    let parsed = cube_algebra::parse_expr(expr)
        .unwrap_or_else(|e| panic!("{} does not parse: {e}", fixture.display()));
    let mut experiments: Vec<(String, cube_model::Experiment)> = Vec::new();
    let mut spare = provides_spare(fixture).then(|| "disjoint".to_string());
    if spare
        .as_deref()
        .is_some_and(|s| parsed.operands.iter().any(|n| n == s))
    {
        spare = None;
    }
    for name in parsed.operands.iter().chain(spare.iter()) {
        if let Some(file) = operand_file(name) {
            let exp = cube_xml::read_experiment_file(&file)
                .unwrap_or_else(|e| panic!("operand {} unreadable: {e}", file.display()));
            experiments.push((name.clone(), exp));
        }
    }
    let mut facts: Vec<cube_algebra::OperandFacts<'_>> = Vec::new();
    for name in parsed.operands.iter().chain(spare.iter()) {
        match experiments.iter().find(|(n, _)| n == name) {
            Some((_, exp)) => {
                facts.push(cube_algebra::OperandFacts::known(name, exp.metadata()));
            }
            None => facts.push(cube_algebra::OperandFacts::unknown(
                name,
                "not among the provided operand files",
            )),
        }
    }
    let report = cube_algebra::check(&parsed, &facts);
    report.to_json(expr)
}

/// Extracts the diagnostic signatures — (code, level, offset, len) —
/// from a report's JSON, relying on the fixed key order of
/// `CheckReport::to_json`.
fn signatures(json: &str) -> Vec<(String, String, u64, u64)> {
    let mut out = Vec::new();
    let Some(list_at) = json.find("\"diagnostics\":[") else {
        return out;
    };
    for piece in json[list_at..].split("{\"code\":\"").skip(1) {
        let field = |key: &str| -> String {
            let tag = format!("\"{key}\":");
            let at = piece.find(&tag).map(|i| i + tag.len()).unwrap_or(0);
            piece[at..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect()
        };
        let code: String = piece.chars().take_while(|c| *c != '"').collect();
        let level: String = piece
            .split("\"level\":\"")
            .nth(1)
            .map(|s| s.chars().take_while(|c| *c != '"').collect())
            .unwrap_or_default();
        let offset: u64 = field("offset").parse().unwrap_or(u64::MAX);
        let len: u64 = field("len").parse().unwrap_or(u64::MAX);
        out.push((code, level, offset, len));
    }
    out
}

#[test]
fn check_corpus_matches_snapshots() {
    let regen = std::env::var_os("CUBE_REGEN_CHECK").is_some();
    for fixture in fixtures() {
        let expr = std::fs::read_to_string(&fixture).unwrap();
        let expr = expr.trim();
        let got = format!("{}\n", library_report(&fixture, expr));
        let expect = fixture.with_extension("expect");
        if regen {
            std::fs::write(&expect, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&expect)
            .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", expect.display()));
        assert_eq!(got, want, "{} drifted from its snapshot", fixture.display());
    }
}

#[test]
fn every_parser_reachable_code_is_covered() {
    // A001 and A004..A012 are the analyzer codes reachable from parsed
    // text; each must be witnessed by at least one fixture so a code
    // can never silently vanish or change meaning. The `ok-*` fixtures
    // pin the other side: clean expressions stay clean.
    let mut seen: Vec<String> = Vec::new();
    let mut clean = 0usize;
    for fixture in fixtures() {
        let expr = std::fs::read_to_string(&fixture).unwrap();
        let json = library_report(&fixture, expr.trim());
        let sigs = signatures(&json);
        if fixture
            .file_name()
            .and_then(|f| f.to_str())
            .is_some_and(|f| f.starts_with("ok-"))
        {
            assert!(
                sigs.is_empty(),
                "{} should be clean, got {sigs:?}",
                fixture.display()
            );
            clean += 1;
        }
        seen.extend(sigs.into_iter().map(|(code, ..)| code));
    }
    seen.sort();
    seen.dedup();
    let expected: Vec<String> = std::iter::once(1)
        .chain(4..=12)
        .map(|i| format!("A{i:03}"))
        .collect();
    assert_eq!(seen, expected, "corpus does not cover every A0xx code");
    assert!(clean >= 2, "corpus needs clean expressions, found {clean}");
}

/// The cross-surface contract: for every fixture, `cube check
/// --format json` and `POST /check` report exactly the diagnostics the
/// library reports — same codes, levels, offsets, lengths — and the
/// same canonical/rewritten renderings.
#[test]
fn cli_and_server_agree_with_the_library_on_every_fixture() {
    let dir = std::env::temp_dir().join(format!("cube_check_corpus_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let server = cube_serve::start(
        cube_serve::ServeConfig {
            workers: 1,
            ..cube_serve::ServeConfig::default()
        },
        &dir.join("repo"),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Ingest the four corpus operands; remember name → content id.
    let mut ids: Vec<(String, String)> = Vec::new();
    for name in ["full", "minimal", "twin", "disjoint"] {
        let bytes = std::fs::read(operand_file(name).unwrap()).unwrap();
        let reply = request(addr, "PUT", "/experiments", &bytes);
        assert!(
            reply.status == 201 || reply.status == 200,
            "{}",
            reply.text()
        );
        let id = json_field(&reply.text(), "id").expect("ingest returns an id");
        ids.push((name.to_string(), id));
    }

    for fixture in fixtures() {
        let expr = std::fs::read_to_string(&fixture).unwrap();
        let expr = expr.trim().to_string();
        let library = library_report(&fixture, &expr);

        // CLI surface: operand files for every name the expression
        // (plus the a005 spare) should resolve.
        let parsed = cube_algebra::parse_expr(&expr).unwrap();
        let mut args = vec!["check".to_string(), expr.clone()];
        let mut names: Vec<String> = parsed.operands.clone();
        if provides_spare(&fixture) && !names.iter().any(|n| n == "disjoint") {
            names.push("disjoint".to_string());
        }
        for name in &names {
            if let Some(file) = operand_file(name) {
                args.push(file.to_string_lossy().into_owned());
            }
        }
        args.push("--format".to_string());
        args.push("json".to_string());
        let cli = cube_cli::run(&args).expect("cube check runs");

        // Server surface: bind the same names to their repository ids.
        let bind: Vec<String> = names
            .iter()
            .filter_map(|n| {
                ids.iter()
                    .find(|(name, _)| name == n)
                    .map(|(name, id)| format!("{name}={id}"))
            })
            .collect();
        let body = format!("{{\"expr\":\"{expr}\",\"bind\":\"{}\"}}", bind.join(","));
        let reply = request(addr, "POST", "/check", body.as_bytes());
        assert_eq!(reply.status, 200, "{}", reply.text());
        let served = reply.text();

        let want = signatures(&library);
        assert_eq!(
            signatures(&cli.stdout),
            want,
            "{}: CLI diagnostics diverge from the library",
            fixture.display()
        );
        assert_eq!(
            signatures(&served),
            want,
            "{}: /check diagnostics diverge from the library",
            fixture.display()
        );
        for key in ["canonical", "rewritten"] {
            let reference = json_field(&library, key);
            assert_eq!(
                json_field(&cli.stdout, key),
                reference,
                "{}: CLI {key} diverges",
                fixture.display()
            );
            assert_eq!(
                json_field(&served, key),
                reference,
                "{}: /check {key} diverges",
                fixture.display()
            );
        }
        // Exit code mirrors lint: errors deny, warnings alone do not.
        let errors = want.iter().any(|(_, level, ..)| level == "error");
        assert_eq!(
            cli.code,
            i32::from(errors),
            "{}: CLI exit code",
            fixture.display()
        );
    }

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}
