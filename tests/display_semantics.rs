//! Display-semantics invariants over real tool output: single
//! representation, the two aggregation mechanisms, and mode algebra —
//! checked on an EXPERT result (original experiment) and on a derived
//! difference, which per the closure property must behave identically.

use cube_algebra::ops;
use cube_display::{BrowserState, ProgramView, Row, ValueMode};
use cube_model::Experiment;
use cube_suite::expert::{analyze, AnalyzeOptions};
use cube_suite::simmpi::apps::{pescan, PescanConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, MachineModel};

fn experiments() -> (Experiment, Experiment) {
    let run = |barriers: bool| {
        let program = pescan(&PescanConfig {
            ranks: 8,
            iterations: 6,
            barriers,
            ..PescanConfig::default()
        });
        let mut tracer = EpilogTracer::new("cluster", 2);
        simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
        analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap()
    };
    let original = run(true);
    let optimized = run(false);
    let diff = ops::diff(&original, &optimized);
    (original, diff)
}

fn metric_rows_sum(rows: &[Row]) -> f64 {
    rows.iter().map(|r| r.raw).sum()
}

#[test]
fn single_representation_in_the_metric_tree() {
    // Fully expanded, the visible (exclusive) metric values of one tree
    // sum to the root's inclusive total: each fraction appears once.
    for e in {
        let (a, b) = experiments();
        [a, b]
    }
    .iter()
    {
        let mut state = BrowserState::new(e);
        let collapsed_total: f64 = state
            .metric_rows(e)
            .iter()
            .filter(|r| {
                matches!(r.kind, cube_display::RowKind::Metric(m)
                if e.metadata().metric(m).parent.is_none()
                && e.metadata().metric(m).unit == cube_model::Unit::Seconds)
            })
            .map(|r| r.raw)
            .sum();
        state.expand_all(e);
        let expanded_total: f64 = state
            .metric_rows(e)
            .iter()
            .filter(|r| {
                matches!(r.kind, cube_display::RowKind::Metric(m)
                if e.metadata().metric(m).unit == cube_model::Unit::Seconds)
            })
            .map(|r| r.raw)
            .sum();
        assert!(
            (collapsed_total - expanded_total).abs() <= 1e-9 * collapsed_total.abs().max(1.0),
            "single representation violated: {collapsed_total} vs {expanded_total}"
        );
    }
}

#[test]
fn single_representation_in_the_call_tree() {
    let (e, _) = experiments();
    let mut state = BrowserState::new(&e);
    let collapsed = metric_rows_sum(&state.program_rows(&e));
    state.expand_all(&e);
    // Expanded metric selection changes what flows right; keep the
    // metric selection collapsed to isolate the call-tree property.
    let mut state2 = BrowserState::new(&e);
    for c in e.metadata().call_node_ids() {
        state2.toggle_call(c);
    }
    let expanded = metric_rows_sum(&state2.program_rows(&e));
    assert!(
        (collapsed - expanded).abs() <= 1e-9 * collapsed.abs().max(1.0),
        "{collapsed} vs {expanded}"
    );
}

#[test]
fn system_pane_conserves_the_selection_total() {
    let (e, _) = experiments();
    let mut state = BrowserState::new(&e);
    // Aggregation across dimensions: the collapsed machine row equals
    // the selected (metric, call path) total shown in the call tree.
    let call_total = state.program_rows(&e)[0].raw;
    let machine_row = state.system_rows(&e)[0].raw;
    assert!((call_total - machine_row).abs() < 1e-9);
    // Expanding the whole system keeps the sum (grouping rows show 0).
    state.toggle_machine(cube_model::MachineId::new(0));
    state.toggle_node(cube_model::NodeId::new(0));
    state.toggle_node(cube_model::NodeId::new(1));
    let total: f64 = metric_rows_sum(&state.system_rows(&e));
    assert!((total - call_total).abs() < 1e-9);
}

#[test]
fn percent_mode_is_a_rescaling() {
    let (e, _) = experiments();
    let mut state = BrowserState::new(&e);
    state.expand_all(&e);
    let abs: Vec<f64> = state.metric_rows(&e).iter().map(|r| r.raw).collect();
    state.value_mode = ValueMode::Percent;
    let rows = state.metric_rows(&e);
    for (r, &a) in rows.iter().zip(&abs) {
        assert_eq!(r.raw, a, "raw values unaffected by mode");
        // Same-tree rows: value = raw / root_total * 100.
        if let cube_display::RowKind::Metric(m) = r.kind {
            let root = e.metadata().metric_root_of(m);
            let denom = e.severity().metric_sum(root);
            if denom != 0.0 {
                assert!((r.value - a / denom * 100.0).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn flat_profile_total_equals_call_tree_total() {
    let (e, _) = experiments();
    let mut state = BrowserState::new(&e);
    let call_total = state.program_rows(&e)[0].raw; // collapsed root
    state.program_view = ProgramView::FlatProfile;
    let flat_total = metric_rows_sum(&state.program_rows(&e));
    assert!((call_total - flat_total).abs() < 1e-9);
}

#[test]
fn derived_experiment_reliefs_track_signs() {
    let (_, diff) = experiments();
    let mut state = BrowserState::new(&diff);
    state.expand_all(&diff);
    for row in state.metric_rows(&diff) {
        let expected = if row.raw > 0.0 {
            cube_display::Relief::Raised
        } else if row.raw < 0.0 {
            cube_display::Relief::Sunken
        } else {
            cube_display::Relief::Flat
        };
        assert_eq!(row.shade.relief, expected, "row {}", row.label);
    }
}

#[test]
fn selection_drives_right_panes() {
    let (e, _) = experiments();
    let mut state = BrowserState::new(&e);
    // Select a leaf pattern; the call tree then shows only that
    // pattern's distribution.
    assert!(state.select_metric_by_name(&e, "Wait at Barrier"));
    for c in e.metadata().call_node_ids() {
        state.toggle_call(c);
    }
    let rows = state.program_rows(&e);
    let nonzero: Vec<&Row> = rows.iter().filter(|r| r.raw != 0.0).collect();
    assert!(!nonzero.is_empty());
    // All Wait-at-Barrier severity sits at MPI_Barrier call paths.
    for r in nonzero {
        assert_eq!(r.label, "MPI_Barrier", "unexpected row {}", r.label);
    }
}
