//! Drives the `cube` CLI over files produced by the real measurement
//! pipeline: tool output → .cube files → shell-style algebra →
//! inspection. This is the workflow a CUBE user runs day to day.

use std::path::PathBuf;

use cube_model::aggregate::{metric_total, MetricSelection};
use cube_suite::expert::{analyze, AnalyzeOptions};
use cube_suite::simmpi::apps::{pescan, PescanConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, MachineModel};
use cube_xml::{read_experiment_file, write_experiment_file};

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cube_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn produce(barriers: bool, file: &str) -> String {
    let program = pescan(&PescanConfig {
        ranks: 8,
        iterations: 10,
        barriers,
        ..PescanConfig::default()
    });
    let mut tracer = EpilogTracer::new("cluster", 2);
    simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
    let exp = analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap();
    let path = workdir().join(file);
    write_experiment_file(&exp, &path).unwrap();
    path.to_string_lossy().into_owned()
}

fn cube(parts: &[&str]) -> cube_cli::Outcome {
    let args: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    cube_cli::run(&args).expect("cube invocation succeeds")
}

#[test]
fn full_session_diff_view_stat() {
    let original = produce(true, "original.cube");
    let optimized = produce(false, "optimized.cube");
    let diff_path = workdir().join("diff.cube").to_string_lossy().into_owned();

    // cube diff original.cube optimized.cube -o diff.cube
    let out = cube(&["diff", &original, &optimized, "-o", &diff_path]);
    assert_eq!(out.code, 0);

    // The derived file is a complete experiment...
    let diff = read_experiment_file(&diff_path).unwrap();
    diff.validate().unwrap();
    assert!(diff.provenance().is_derived());
    let wab = diff.metadata().find_metric("Wait at Barrier").unwrap();
    assert!(metric_total(&diff, MetricSelection::inclusive(wab)) > 0.0);

    // ... and every inspection subcommand accepts it like an original.
    let info = cube(&["info", &diff_path]);
    assert!(info.stdout.contains("derived:    yes"));
    let stat = cube(&["stat", &diff_path]);
    assert!(stat.stdout.contains("Wait at Barrier"));
    let view = cube(&[
        "view",
        &diff_path,
        "--expand-all",
        "--metric",
        "Wait at Barrier",
        "--normalize",
        &original,
    ]);
    assert!(view.stdout.contains("normalized"));
    assert!(view.stdout.contains("Wait at Barrier"));
}

#[test]
fn series_min_matches_library_result() {
    // Build a small series, reduce with the CLI, compare to the library.
    let files: Vec<String> = (0..3)
        .map(|i| {
            let program = pescan(&PescanConfig {
                ranks: 4,
                iterations: 3,
                ..PescanConfig::default()
            });
            let model = MachineModel {
                noise: cube_suite::simmpi::NoiseModel {
                    amplitude: 0.2,
                    seed: i,
                },
                ..MachineModel::default()
            };
            let mut tracer = EpilogTracer::new("cluster", 2);
            simulate(&program, &model, &mut tracer).unwrap();
            let exp = analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap();
            let path = workdir().join(format!("run{i}.cube"));
            write_experiment_file(&exp, &path).unwrap();
            path.to_string_lossy().into_owned()
        })
        .collect();

    let min_path = workdir().join("min.cube").to_string_lossy().into_owned();
    cube(&["min", &files[0], &files[1], &files[2], "-o", &min_path]);

    let runs: Vec<_> = files
        .iter()
        .map(|f| read_experiment_file(f).unwrap())
        .collect();
    let expected = cube_algebra::ops::min(&runs.iter().collect::<Vec<_>>()).unwrap();
    let got = read_experiment_file(&min_path).unwrap();
    assert!(got.approx_eq(&expected, 1e-12));
}

#[test]
fn composite_pipeline_through_files() {
    // mean of two runs, then diff against a third — all through files,
    // exercising closure at the file-format level.
    let a = produce(true, "ca.cube");
    let b = produce(true, "cb.cube");
    let c = produce(false, "cc.cube");
    let mean_path = workdir().join("cmean.cube").to_string_lossy().into_owned();
    let final_path = workdir().join("cfinal.cube").to_string_lossy().into_owned();
    cube(&["mean", &a, &b, "-o", &mean_path]);
    cube(&["diff", &mean_path, &c, "-o", &final_path]);
    let e = read_experiment_file(&final_path).unwrap();
    e.validate().unwrap();
    assert!(e.provenance().label().starts_with("difference(mean("));
}

#[test]
fn cmp_detects_equality_and_difference() {
    let a = produce(true, "eq_a.cube");
    let out = cube(&["cmp", &a, &a]);
    assert_eq!(out.code, 0);
    let b = produce(false, "eq_b.cube");
    let out = cube(&["cmp", &a, &b]);
    assert_eq!(out.code, 1);
}
