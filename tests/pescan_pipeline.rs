//! End-to-end reproduction of the paper's §5.1 case study as a test:
//! simulate → trace → EXPERT → difference → display, asserting the
//! shape of Figures 1 and 2 and the speedup measurement protocol.

use cube_algebra::ops;
use cube_display::{BrowserState, NormalizationRef, RenderOptions, ValueMode};
use cube_model::aggregate::{metric_total, MetricSelection};
use cube_model::Experiment;
use cube_suite::expert::{analyze, AnalyzeOptions};
use cube_suite::simmpi::apps::{pescan, PescanConfig};
use cube_suite::simmpi::{simulate, EpilogTracer, MachineModel, NoiseModel, NullMonitor};

fn analyzed(barriers: bool) -> Experiment {
    let program = pescan(&PescanConfig {
        barriers,
        ..PescanConfig::default()
    });
    let mut tracer = EpilogTracer::new("cluster", 4);
    simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
    analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap()
}

fn metric(e: &Experiment, name: &str) -> f64 {
    let m = e.metadata().find_metric(name).unwrap();
    metric_total(e, MetricSelection::inclusive(m))
}

#[test]
fn figure1_wait_at_barrier_share_matches_paper() {
    let original = analyzed(true);
    let share = metric(&original, "Wait at Barrier") / metric(&original, "Time");
    // Paper: 13.2 %. The simulator is calibrated to the same
    // neighbourhood; accept a band around it.
    assert!(
        (0.09..=0.18).contains(&share),
        "Wait-at-Barrier share {share:.3} outside the Figure-1 band"
    );
}

#[test]
fn figure2_difference_shape() {
    let original = analyzed(true);
    let optimized = analyzed(false);
    let diff = ops::diff(&original, &optimized);
    diff.validate().unwrap();

    // Barrier-related severities recovered (positive in the difference):
    for gone in ["Wait at Barrier", "Synchronization", "Barrier Completion"] {
        assert!(
            metric(&diff, gone) > 0.0,
            "{gone} must be recovered by the optimization"
        );
        // ... and the optimized version has none at all.
        assert_eq!(metric(&optimized, gone), 0.0);
    }
    // Waiting migrated: P2P and Wait-at-NxN grew (negative difference).
    for grew in ["P2P", "Late Sender", "Wait at N x N"] {
        assert!(
            metric(&diff, grew) < 0.0,
            "{grew} must increase after barrier removal (migration)"
        );
    }
    // The gross performance balance is clearly positive.
    assert!(metric(&diff, "Time") > 0.0);

    // The migrated amounts are far smaller than the recovered barrier
    // time — otherwise removing barriers would not have paid off.
    let recovered = metric(&diff, "Synchronization");
    let migrated = -(metric(&diff, "P2P") + metric(&diff, "Wait at N x N"));
    assert!(recovered > 3.0 * migrated);
}

#[test]
fn figure2_renders_with_reliefs_and_normalization() {
    let original = analyzed(true);
    let optimized = analyzed(false);
    let diff = ops::diff(&original, &optimized);

    let mut state = BrowserState::new(&diff);
    state.expand_all(&diff);
    state.value_mode = ValueMode::PercentNormalized(NormalizationRef::from_experiment(&original));
    let text = cube_display::render_view(&diff, &state, RenderOptions::default());
    // Both reliefs visible: gains raised (+), losses sunken (-).
    let metric_pane: Vec<&str> = text
        .lines()
        .skip_while(|l| !l.contains("--- metric tree ---"))
        .take_while(|l| !l.contains("--- system tree ---"))
        .collect();
    let has_plus = metric_pane.iter().any(|l| l.contains("%+"));
    let has_minus = metric_pane.iter().any(|l| l.contains("%-"));
    assert!(has_plus, "no raised relief in:\n{text}");
    assert!(has_minus, "no sunken relief in:\n{text}");
    assert!(text.contains("normalized"));
}

#[test]
fn speedup_protocol_two_series_of_ten_minimum() {
    // "We created two series of ten experiments for either configuration
    // and took the minimum of each series as a representative. The
    // speedup obtained for the solver by removing the barriers was
    // about 16 %." — run uninstrumented with OS noise, take the min.
    let elapsed = |barriers: bool, seed: u64| {
        let program = pescan(&PescanConfig {
            barriers,
            ..PescanConfig::default()
        });
        let model = MachineModel {
            noise: NoiseModel {
                amplitude: 0.08,
                seed,
            },
            ..MachineModel::default()
        };
        simulate(&program, &model, &mut NullMonitor)
            .unwrap()
            .elapsed
    };
    let original_min = (0..10)
        .map(|i| elapsed(true, i))
        .fold(f64::INFINITY, f64::min);
    let optimized_min = (0..10)
        .map(|i| elapsed(false, 100 + i))
        .fold(f64::INFINITY, f64::min);
    let speedup = (original_min - optimized_min) / original_min;
    assert!(
        (0.08..=0.25).contains(&speedup),
        "speedup {:.1}% outside the §5.1 band",
        speedup * 100.0
    );
}

#[test]
fn mean_operator_smooths_noisy_series() {
    // The mean of analyzed noisy runs is closer to the noise-free
    // analysis than the worst single run.
    let run = |seed: u64| {
        let program = pescan(&PescanConfig {
            ranks: 4,
            iterations: 5,
            ..PescanConfig::default()
        });
        let model = MachineModel {
            noise: NoiseModel {
                amplitude: 0.3,
                seed,
            },
            ..MachineModel::default()
        };
        let mut tracer = EpilogTracer::new("cluster", 2);
        simulate(&program, &model, &mut tracer).unwrap();
        analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap()
    };
    let quiet = {
        let program = pescan(&PescanConfig {
            ranks: 4,
            iterations: 5,
            ..PescanConfig::default()
        });
        let mut tracer = EpilogTracer::new("cluster", 2);
        simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
        analyze(&tracer.into_trace(), &AnalyzeOptions::default()).unwrap()
    };
    let runs: Vec<Experiment> = (0..8).map(run).collect();
    let refs: Vec<&Experiment> = runs.iter().collect();
    let averaged = ops::mean(&refs).unwrap();

    let quiet_time = metric(&quiet, "Time");
    let avg_err = (metric(&averaged, "Time") - quiet_time).abs();
    let worst_err = runs
        .iter()
        .map(|r| (metric(r, "Time") - quiet_time).abs())
        .fold(0.0, f64::max);
    assert!(
        avg_err < worst_err,
        "mean ({avg_err}) must be closer to quiet than the worst run ({worst_err})"
    );
}

#[test]
fn derived_difference_browses_like_an_original() {
    // The closure property's user-visible payoff: the same viewer state
    // machine drives original and derived experiments identically.
    let original = analyzed(true);
    let diff = ops::diff(&original, &analyzed(false));
    for e in [&original, &diff] {
        let mut state = BrowserState::new(e);
        assert!(state.select_metric_by_name(e, "Wait at Barrier"));
        assert!(state.select_call_by_region(e, "MPI_Barrier"));
        state.expand_all(e);
        let rows = state.metric_rows(e);
        assert!(rows.len() >= 10, "full pattern hierarchy visible");
        let text = cube_display::render_view(e, &state, RenderOptions::default());
        assert!(text.contains("Wait at Barrier"));
    }
}
