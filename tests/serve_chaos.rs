//! Chaos harness for `cube serve`: the server runs under a seeded
//! fault schedule (I/O errors, torn reads, checksum flips, latency)
//! while 12 concurrent clients hammer `/eval`. The contract under
//! fire:
//!
//! - every connection is answered — no hangs, no dropped sockets;
//! - every status is one the fault model specifies: `200` (recovered
//!   via retry), `206` (degraded `keep_going`), `503` (persistent
//!   failure or quarantine), `504` (deadline) — never a bare `500`
//!   and never a `404` caused by an availability failure;
//! - every `200` body is byte-identical to the fault-free run;
//! - every `206` carries an accurate `omitted_operands` report.
//!
//! A deterministic coda corrupts one object on disk and asserts the
//! degraded path precisely: `503` without opt-in, `206` with it, an
//! error for structurally required operands, and a `degraded` health
//! signal once the breaker trips.

#[path = "serve_util/mod.rs"]
mod serve_util;

use serve_util::{json_field, json_number, request};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cube_model::builder::single_threaded_system;
use cube_model::{Experiment, ExperimentBuilder, RegionKind, Unit};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cube_serve_chaos_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small synthetic experiment; `seed` varies the severity values so
/// distinct uploads get distinct content ids.
fn sample(seed: u64) -> Experiment {
    let mut b = ExperimentBuilder::new(format!("chaos run {seed}"));
    let time = b.def_metric("time", Unit::Seconds, "total time", None);
    let m = b.def_module("a.c", "/a.c");
    let main_r = b.def_region("main", m, RegionKind::Function, 1, 9);
    let solve_r = b.def_region("solve", m, RegionKind::Function, 2, 8);
    let cs0 = b.def_call_site("a.c", 1, main_r);
    let cs1 = b.def_call_site("a.c", 3, solve_r);
    let root = b.def_call_node(cs0, None);
    let solve = b.def_call_node(cs1, Some(root));
    let ts = single_threaded_system(&mut b, 4);
    for (i, &t) in ts.iter().enumerate() {
        b.set_severity(time, root, t, (seed * 7 + i as u64) as f64 * 0.5);
        b.set_severity(time, solve, t, (seed * 3 + i as u64) as f64 * 0.25);
    }
    b.build().unwrap()
}

/// All caches off so every request drives real disk reads — the fault
/// injection sites sit on the read path, and a warm cache would stop
/// exercising them after the first round.
fn uncached(faults: Option<String>) -> cube_serve::ServeConfig {
    cube_serve::ServeConfig {
        workers: 4,
        result_cache: 0,
        plan_cache: 0,
        handle_cache: 0,
        read_retries: 3,
        backoff_base_ms: 1,
        breaker_threshold: 4,
        faults,
        ..cube_serve::ServeConfig::default()
    }
}

/// The deterministic LCG the other harnesses use.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Collects the 16-hex-digit `"id"` values from a degraded response's
/// `omitted_operands` array.
fn omitted_ids(body: &str) -> Vec<String> {
    let Some(at) = body.find("\"omitted_operands\":[") else {
        return Vec::new();
    };
    let Some(end) = body[at..].find(']') else {
        return Vec::new();
    };
    let mut ids = Vec::new();
    let mut rest = &body[at..at + end];
    while let Some(i) = rest.find("\"id\":\"") {
        let tail = &rest[i + 6..];
        if let Some(q) = tail.find('"') {
            ids.push(tail[..q].to_string());
            rest = &tail[q..];
        } else {
            break;
        }
    }
    ids
}

#[test]
fn chaos_schedule_never_hangs_or_corrupts_responses() {
    let repo = workdir("run").join("repo");

    // --- Phase 1: fault-free reference -----------------------------
    // Ingest the corpus and record the canonical bytes every
    // expression must still produce whenever a faulted run says 200.
    let server = cube_serve::start(uncached(None), &repo).expect("reference server starts");
    let addr = server.local_addr();
    let ids: Vec<String> = (1..=3)
        .map(|seed| {
            let reply = request(
                addr,
                "PUT",
                "/experiments",
                &cube_store::write_store(&sample(seed)),
            );
            assert_eq!(reply.status, 201, "{}", reply.text());
            json_field(&reply.text(), "id").expect("ingest returns an id")
        })
        .collect();
    // (expression, all operand ids, operand count)
    let exprs: Arc<Vec<(String, Vec<String>, usize)>> = Arc::new(vec![
        (
            format!("mean({},{},{})", ids[0], ids[1], ids[2]),
            ids.clone(),
            3,
        ),
        (
            format!("diff(mean({},{}),{})", ids[0], ids[1], ids[2]),
            ids.clone(),
            3,
        ),
        (
            format!("scale(sum({},{}),0.5)", ids[1], ids[2]),
            vec![ids[1].clone(), ids[2].clone()],
            2,
        ),
    ]);
    let reference: Arc<Vec<Vec<u8>>> = Arc::new(
        exprs
            .iter()
            .map(|(expr, _, _)| {
                let reply = request(addr, "POST", "/eval", expr.as_bytes());
                assert_eq!(reply.status, 200, "{}", reply.text());
                reply.body
            })
            .collect(),
    );
    server.shutdown();
    server.join();

    // --- Phase 2: the same repository under a fault schedule -------
    let spec = "seed=2026,read_error=0.15,torn_read=0.08,checksum_flip=0.08,latency=2@0.3";
    let server =
        cube_serve::start(uncached(Some(spec.into())), &repo).expect("chaos server starts");
    let addr = server.local_addr();

    const CLIENTS: usize = 12;
    const ROUNDS: usize = 8;
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let exprs = Arc::clone(&exprs);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut rng = Lcg(0xC4A05 + client as u64);
                let mut statuses = Vec::new();
                for _ in 0..ROUNDS {
                    let which = (rng.next() % exprs.len() as u64) as usize;
                    let keep_going = rng.next() % 2 == 1;
                    let path = if keep_going {
                        "/eval?keep_going=1"
                    } else {
                        "/eval"
                    };
                    let (expr, operand_ids, operand_count) = &exprs[which];
                    let reply = request(addr, "POST", path, expr.as_bytes());
                    match reply.status {
                        // Fault-free or recovered by retry: the bytes
                        // must match the fault-free run exactly.
                        200 => assert_eq!(
                            reply.body, reference[which],
                            "200 body diverged from the fault-free run for {expr}"
                        ),
                        // Degraded: only with opt-in, and the omission
                        // report must add up.
                        206 => {
                            assert!(keep_going, "206 without keep_going for {expr}");
                            assert_eq!(
                                reply.header("x-cache"),
                                Some("degraded"),
                                "degraded responses are never cache-served"
                            );
                            let text = reply.text();
                            assert_eq!(
                                json_field(&text, "status").as_deref(),
                                Some("degraded"),
                                "{text}"
                            );
                            let omitted = omitted_ids(&text);
                            assert!(!omitted.is_empty(), "206 with nothing omitted: {text}");
                            for id in &omitted {
                                assert!(
                                    operand_ids.contains(id),
                                    "omitted id {id} is not an operand of {expr}"
                                );
                            }
                            let used = json_number(&text, "used").expect("degraded used count");
                            assert_eq!(
                                used as usize + omitted.len(),
                                *operand_count,
                                "used + omitted must cover every operand: {text}"
                            );
                        }
                        // Persistent failure or quarantine: structured,
                        // with a machine-readable code.
                        503 | 504 => {
                            assert!(
                                json_field(&reply.text(), "code").is_some(),
                                "5xx without a code: {}",
                                reply.text()
                            );
                        }
                        other => panic!("status {other} outside the fault model: {}", reply.text()),
                    }
                    statuses.push(reply.status);
                }
                statuses
            })
        })
        .collect();

    let mut tally = [0usize; 4]; // 200, 206, 503, 504
    for handle in handles {
        for status in handle.join().expect("client thread must not panic") {
            let slot = match status {
                200 => 0,
                206 => 1,
                503 => 2,
                _ => 3,
            };
            tally[slot] += 1;
        }
    }
    assert_eq!(tally.iter().sum::<usize>(), CLIENTS * ROUNDS);
    assert!(tally[0] > 0, "no request ever succeeded under faults");
    // "Never hangs": the whole barrage finished promptly even with
    // retries, injected latency, and backoff sleeps in play.
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "chaos run stalled: {:?}",
        started.elapsed()
    );

    // The schedule actually fired, and the server kept count.
    let stats = request(addr, "GET", "/stats", b"").text();
    let injected = json_number(&stats, "io_errors").unwrap_or(0)
        + json_number(&stats, "torn_reads").unwrap_or(0)
        + json_number(&stats, "checksum_flips").unwrap_or(0);
    assert!(injected > 0, "fault schedule never fired: {stats}");
    let health = request(addr, "GET", "/healthz", b"").text();
    assert!(
        matches!(
            json_field(&health, "status").as_deref(),
            Some("ok" | "degraded")
        ),
        "{health}"
    );
    server.shutdown();
    server.join();

    // --- Phase 3: deterministic degraded coda ----------------------
    // Corrupt one object on disk (no fault schedule now) and pin down
    // the exact degraded-mode semantics the chaos phase asserts
    // statistically.
    let victim = repo
        .join("objects")
        .join(&ids[2][..2])
        .join(format!("{}.cubec", ids[2]));
    let mut bytes = std::fs::read(&victim).expect("victim object exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();

    let mut config = uncached(None);
    config.read_retries = 2;
    config.backoff_base_ms = 0;
    config.breaker_threshold = 2;
    let server = cube_serve::start(config, &repo).expect("coda server starts");
    let addr = server.local_addr();
    let mean = &exprs[0].0;

    // Without opt-in: persistent failure surfaces as 503, not 500/404.
    let reply = request(addr, "POST", "/eval", mean.as_bytes());
    assert_eq!(reply.status, 503, "{}", reply.text());
    assert_eq!(
        json_field(&reply.text(), "code").as_deref(),
        Some("object_unreadable"),
        "{}",
        reply.text()
    );

    // With opt-in: 206, the broken operand omitted, the other two used.
    let reply = request(addr, "POST", "/eval?keep_going=1", mean.as_bytes());
    assert_eq!(reply.status, 206, "{}", reply.text());
    let text = reply.text();
    assert_eq!(omitted_ids(&text), vec![ids[2].clone()], "{text}");
    assert_eq!(json_number(&text, "used"), Some(2), "{text}");

    // A structurally required operand cannot be omitted: diff's
    // subtrahend failing is an error even under keep_going.
    let diff = &exprs[1].0;
    let reply = request(addr, "POST", "/eval?keep_going=1", diff.as_bytes());
    assert_eq!(reply.status, 503, "{}", reply.text());
    assert!(
        reply.text().contains("structurally required"),
        "{}",
        reply.text()
    );

    // Two persistent failures tripped the breaker (threshold 2): the
    // health endpoint degrades while the id is quarantined.
    let health = request(addr, "GET", "/healthz", b"").text();
    assert_eq!(
        json_field(&health, "status").as_deref(),
        Some("degraded"),
        "{health}"
    );
    assert!(
        json_number(&health, "quarantined").unwrap_or(0) >= 1,
        "{health}"
    );
    assert!(
        json_number(&health, "read_failures").unwrap_or(0) >= 2,
        "{health}"
    );

    server.shutdown();
    server.join();
}
