//! Golden corpus for the lint rule engine.
//!
//! Every file under `tests/fixtures/malformed/` triggers a specific
//! rule code; the sibling `.expect` file lists the exact set of codes
//! the linter must report (usually one — fixtures are crafted so no
//! incidental rule fires). `tests/fixtures/valid/` must stay fully
//! clean. The same corpus drives the CLI exit-code contract used by
//! `ci/check.sh`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
}

fn cube_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "cube"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures in {}", dir.display());
    files
}

fn reported_codes(path: &Path) -> BTreeSet<String> {
    cube_xml::lint_file(path)
        .codes()
        .iter()
        .map(|c| c.as_str().to_string())
        .collect()
}

fn expected_codes(cube: &Path) -> BTreeSet<String> {
    let expect = cube.with_extension("expect");
    std::fs::read_to_string(&expect)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", expect.display()))
        .split_whitespace()
        .map(str::to_string)
        .collect()
}

#[test]
fn malformed_corpus_reports_exactly_the_documented_codes() {
    for cube in cube_files(&fixture_dir("malformed")) {
        let expected = expected_codes(&cube);
        let reported = reported_codes(&cube);
        assert_eq!(
            reported,
            expected,
            "{}:\n{}",
            cube.display(),
            cube_xml::lint_file(&cube)
        );
    }
}

#[test]
fn malformed_corpus_covers_every_file_reachable_rule() {
    // The union of the snapshots is the documented file-reachable rule
    // set; growing the rule catalogue without a fixture fails here.
    let covered: BTreeSet<String> = cube_files(&fixture_dir("malformed"))
        .iter()
        .flat_map(|c| expected_codes(c))
        .collect();
    for code in [
        "E003", "E004", "E005", "E006", "E007", "E013", "E014", "E016", "E017", "E018", "E101",
        "E102", "E103", "E104", "W001", "W002", "W003", "W004", "W005", "W006", "W007", "W008",
        "W009", "W010",
    ] {
        assert!(covered.contains(code), "no fixture triggers {code}");
        assert!(
            cube_model::RuleCode::from_str_opt(code).is_some(),
            "{code} is not a documented rule"
        );
    }
}

#[test]
fn valid_fixtures_are_clean() {
    for cube in cube_files(&fixture_dir("valid")) {
        let report = cube_xml::lint_file(&cube);
        assert!(report.is_clean(), "{}:\n{report}", cube.display());
    }
}

#[test]
fn cli_deny_warnings_exit_codes_match_corpus() {
    for cube in cube_files(&fixture_dir("malformed")) {
        let path = cube.to_string_lossy().into_owned();
        let out = cube_cli::run(&[
            "lint".into(),
            path.clone(),
            "--deny".into(),
            "warnings".into(),
        ])
        .unwrap();
        assert_eq!(out.code, 1, "{path} should be denied:\n{}", out.stdout);
        // Every expected code appears verbatim in the human output.
        for code in expected_codes(&cube) {
            assert!(out.stdout.contains(&code), "{path}: missing {code}");
        }
    }
    for cube in cube_files(&fixture_dir("valid")) {
        let path = cube.to_string_lossy().into_owned();
        let out = cube_cli::run(&[
            "lint".into(),
            path.clone(),
            "--deny".into(),
            "warnings".into(),
        ])
        .unwrap();
        assert_eq!(out.code, 0, "{path} should be clean:\n{}", out.stdout);
    }
}

#[test]
fn cli_json_output_carries_codes() {
    let dir = fixture_dir("malformed");
    let cube = dir.join("e016_nan_severity.cube");
    let out = cube_cli::run(&[
        "lint".into(),
        cube.to_string_lossy().into_owned(),
        "--format".into(),
        "json".into(),
    ])
    .unwrap();
    assert_eq!(out.code, 1);
    assert!(out.stdout.contains("\"code\":\"E016\""), "{}", out.stdout);
    assert!(out.stdout.contains("\"level\":\"error\""), "{}", out.stdout);
    assert!(out.stdout.contains("\"ok\":false"), "{}", out.stdout);
}
