//! Shared helpers for the serve test harnesses: a minimal blocking
//! HTTP/1.1 client over `TcpStream` (the tests exercise the server's
//! own framing, so they must not reuse its code) and small parsers for
//! the JSON bodies the API returns.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers (lower-cased names), body.
pub struct Reply {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Reply {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the connection to EOF (the server
/// always answers `Connection: close`).
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect to the test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read full response");
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> Reply {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head")
        + 4;
    let head = std::str::from_utf8(&raw[..head_end - 4]).expect("ASCII head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: raw[head_end..].to_vec(),
    }
}

/// Pulls a string field out of a flat JSON object body.
pub fn json_field(body: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Pulls an unsigned-number field out of a flat JSON object body.
pub fn json_number(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}
