# Developer / CI entry points. `make verify` is the tier-1 gate from
# ROADMAP.md plus the fast-failing hygiene checks; run it before every
# commit. Individual targets below for quicker loops.

CARGO ?= cargo

.PHONY: verify build test lint fmt fmt-check clippy doc bench-xml bench-batch bench-json

## The full gate: build, tests, formatting, lints, doc rot.
verify: build test fmt-check clippy doc

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

## Docs must build warning-free so rustdoc rot fails fast.
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

## Streaming-vs-DOM serialization comparison (see EXPERIMENTS.md).
bench-xml:
	$(CARGO) bench -p cube-bench --bench xml_roundtrip

## Batch-vs-pairwise n-ary reduction scaling (see EXPERIMENTS.md).
bench-batch:
	$(CARGO) bench -p cube-bench --bench batch_reduce

## Measurement session for the CI perf gate: runs the tracked benches
## (batch reduction, XML round-trip, parallel kernels incl. the
## thread-scaling sweep) with the raw BENCH_JSON sink, then assembles
## the BENCH_5.json metrics document at the repo root. ci/bench_gate.sh
## compares it against the committed ci/bench_baseline.json.
bench-json:
	rm -f target/bench_raw.tsv
	BENCH_JSON=$(CURDIR)/target/bench_raw.tsv $(CARGO) bench -p cube-bench \
		--bench batch_reduce --bench xml_roundtrip --bench par_elementwise \
		--bench store_io
	$(CARGO) run -q -p cube-bench --bin bench_gate -- \
		assemble BENCH_5.json target/bench_raw.tsv
