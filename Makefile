# Developer / CI entry points. `make verify` is the tier-1 gate from
# ROADMAP.md plus the fast-failing hygiene checks; run it before every
# commit. Individual targets below for quicker loops.

CARGO ?= cargo

.PHONY: verify build test lint fmt fmt-check clippy doc bench-xml bench-batch

## The full gate: build, tests, formatting, lints, doc rot.
verify: build test fmt-check clippy doc

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

## Docs must build warning-free so rustdoc rot fails fast.
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

## Streaming-vs-DOM serialization comparison (see EXPERIMENTS.md).
bench-xml:
	$(CARGO) bench -p cube-bench --bench xml_roundtrip

## Batch-vs-pairwise n-ary reduction scaling (see EXPERIMENTS.md).
bench-batch:
	$(CARGO) bench -p cube-bench --bench batch_reduce
