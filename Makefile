# Developer / CI entry points. `make verify` is the tier-1 gate from
# ROADMAP.md plus the fast-failing hygiene checks; run it before every
# commit. Individual targets below for quicker loops.

CARGO ?= cargo

.PHONY: verify build test lint fmt fmt-check clippy doc miri tsan bench-xml bench-batch bench-fused bench-json

## The full gate: build, tests, formatting, lints, doc rot.
verify: build test fmt-check clippy doc

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

## Docs must build warning-free so rustdoc rot fails fast.
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

## Undefined-behavior check of the concurrency-bearing leaf crates:
## the rayon pool facade, the server's cache/lock layer, and the fused
## SIMD kernels (tile executor + register borrow juggling; sizes shrink
## automatically under cfg(miri)). Needs the Miri component
## (`rustup +nightly component add miri`); ci/check.sh invokes this
## only when `cargo miri --version` works and skips cleanly otherwise,
## so a toolchain without Miri stays green.
miri:
	$(CARGO) miri test -p rayon
	$(CARGO) miri test -p cube-serve --lib cache
	$(CARGO) miri test -p cube-algebra --test kernel_props

## Data-race check under ThreadSanitizer. Not wired into CI (needs a
## nightly toolchain with rust-src and real wall-clock time); run
## manually when touching the pool or the server's locking:
##   rustup toolchain install nightly --component rust-src
##   make tsan
tsan:
	RUSTFLAGS="-Z sanitizer=thread" \
	cargo +nightly test -Z build-std \
		--target x86_64-unknown-linux-gnu \
		-p rayon -p cube-serve --lib

## Streaming-vs-DOM serialization comparison (see EXPERIMENTS.md).
bench-xml:
	$(CARGO) bench -p cube-bench --bench xml_roundtrip

## Batch-vs-pairwise n-ary reduction scaling (see EXPERIMENTS.md).
bench-batch:
	$(CARGO) bench -p cube-bench --bench batch_reduce

## Fused-vs-unfused-vs-per-operator kernel comparison (EXPERIMENTS.md).
bench-fused:
	$(CARGO) bench -p cube-bench --bench fused_kernels

## Measurement session for the CI perf gate: runs the tracked benches
## (batch reduction, XML round-trip, parallel kernels incl. the
## thread-scaling sweep, fused kernels) with the raw BENCH_JSON sink,
## then assembles the BENCH_5.json metrics document at the repo root.
## ci/bench_gate.sh runs this 3 times and compares the per-metric
## median against the committed ci/bench_baseline.json.
bench-json:
	rm -f target/bench_raw.tsv
	BENCH_JSON=$(CURDIR)/target/bench_raw.tsv $(CARGO) bench -p cube-bench \
		--bench batch_reduce --bench xml_roundtrip --bench par_elementwise \
		--bench store_io --bench fused_kernels
	$(CARGO) run -q -p cube-bench --bin bench_gate -- \
		assemble BENCH_5.json target/bench_raw.tsv
