//! Property tests for the data model: severity indexing laws and the
//! aggregation identities that the display semantics rest on.

use proptest::prelude::*;

use cube_model::aggregate::{
    call_value, check_call_aggregation, flat_profile, metric_total, thread_distribution,
    CallSelection, MetricSelection,
};
use cube_model::builder::single_threaded_system;
use cube_model::{CallNodeId, Experiment, ExperimentBuilder, MetricId, RegionKind, ThreadId, Unit};

// ---------------------------------------------------------------------------
// severity indexing
// ---------------------------------------------------------------------------

proptest! {
    /// set/get round-trips at any coordinate; neighbors stay untouched.
    #[test]
    fn severity_set_get_isolated(
        nm in 1usize..5,
        nc in 1usize..7,
        nt in 1usize..6,
        mi in 0usize..1000,
        ci in 0usize..1000,
        ti in 0usize..1000,
        v in -1e9f64..1e9,
    ) {
        let (m, c, t) = (mi % nm, ci % nc, ti % nt);
        let mut s = cube_model::Severity::zeros(nm, nc, nt);
        s.set(MetricId::from_index(m), CallNodeId::from_index(c), ThreadId::from_index(t), v);
        prop_assert_eq!(
            s.get(MetricId::from_index(m), CallNodeId::from_index(c), ThreadId::from_index(t)),
            v
        );
        // Exactly one nonzero cell (or zero cells when v == 0).
        let nonzero = s.values().iter().filter(|&&x| x != 0.0).count();
        prop_assert_eq!(nonzero, usize::from(v != 0.0));
        // Sums agree.
        prop_assert_eq!(s.metric_sum(MetricId::from_index(m)), v);
        prop_assert_eq!(
            s.row_sum(MetricId::from_index(m), CallNodeId::from_index(c)),
            v
        );
    }

    /// iter_nonzero enumerates exactly the nonzero coordinates.
    #[test]
    fn iter_nonzero_is_exact(values in proptest::collection::vec(-10i8..10, 1..60)) {
        let nt = 5usize.min(values.len());
        let nc = values.len().div_ceil(nt);
        let mut s = cube_model::Severity::zeros(1, nc, nt);
        for (i, &v) in values.iter().enumerate() {
            s.set(
                MetricId::new(0),
                CallNodeId::from_index(i / nt),
                ThreadId::from_index(i % nt),
                f64::from(v),
            );
        }
        let listed: Vec<_> = s.iter_nonzero().collect();
        let expected = values.iter().filter(|&&v| v != 0).count();
        prop_assert_eq!(listed.len(), expected);
        for (m, c, t, v) in listed {
            prop_assert_eq!(s.get(m, c, t), v);
            prop_assert!(v != 0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// aggregation identities on generated experiments
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct TreeSpec {
    metric_parents: Vec<Option<u8>>, // parent index into prefix
    call_parents: Vec<Option<u8>>,
    ranks: u8,
    values: Vec<i16>,
}

fn tree_spec() -> impl Strategy<Value = TreeSpec> {
    (
        proptest::collection::vec(proptest::option::of(0u8..4), 1..6),
        proptest::collection::vec(proptest::option::of(0u8..4), 1..8),
        1u8..5,
        proptest::collection::vec(-100i16..100, 1..30),
    )
        .prop_map(|(metric_parents, call_parents, ranks, values)| TreeSpec {
            metric_parents,
            call_parents,
            ranks,
            values,
        })
}

fn build(spec: &TreeSpec) -> Experiment {
    let mut b = ExperimentBuilder::new("props");
    let mut metrics = Vec::new();
    for (i, parent) in spec.metric_parents.iter().enumerate() {
        let p = parent.and_then(|x| metrics.get(x as usize).copied());
        metrics.push(b.def_metric(format!("m{i}"), Unit::Seconds, "", p));
    }
    let module = b.def_module("p.rs", "/p.rs");
    let mut calls = Vec::new();
    for (i, parent) in spec.call_parents.iter().enumerate() {
        let r = b.def_region(format!("r{i}"), module, RegionKind::Function, 1, 2);
        let cs = b.def_call_site("p.rs", i as u32 + 1, r);
        let p = parent.and_then(|x| calls.get(x as usize).copied());
        calls.push(b.def_call_node(cs, p));
    }
    let threads = single_threaded_system(&mut b, spec.ranks as usize);
    let mut vi = 0;
    for &m in &metrics {
        for &c in &calls {
            for &t in &threads {
                let v = spec.values[vi % spec.values.len()];
                vi += 1;
                b.set_severity(m, c, t, f64::from(v) * 0.5);
            }
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sum of inclusive values over call roots == plain metric sum
    /// (aggregation within the call dimension loses nothing).
    #[test]
    fn call_roots_cover_everything(spec in tree_spec()) {
        let e = build(&spec);
        for m in e.metadata().metric_ids() {
            prop_assert!(check_call_aggregation(&e, m, 1e-9));
        }
    }

    /// Single representation along the metric dimension: the exclusive
    /// totals of a metric subtree sum to the root's inclusive total.
    #[test]
    fn metric_exclusive_values_partition_the_root(spec in tree_spec()) {
        let e = build(&spec);
        let md = e.metadata();
        for &root in md.metric_roots() {
            let inclusive = metric_total(&e, MetricSelection::inclusive(root));
            let partition: f64 = md
                .metric_subtree(root)
                .into_iter()
                .map(|m| metric_total(&e, MetricSelection::exclusive(m)))
                .sum();
            prop_assert!(
                (inclusive - partition).abs() <= 1e-9 * inclusive.abs().max(1.0),
                "{inclusive} vs {partition}"
            );
        }
    }

    /// The same partition property along the call dimension.
    #[test]
    fn call_exclusive_values_partition_roots(spec in tree_spec()) {
        let e = build(&spec);
        let md = e.metadata();
        for m in md.metric_ids() {
            let msel = MetricSelection::inclusive(m);
            let roots: f64 = md
                .call_roots()
                .iter()
                .map(|&c| call_value(&e, msel, CallSelection::inclusive(c)))
                .sum();
            let partition: f64 = md
                .call_node_ids()
                .map(|c| call_value(&e, msel, CallSelection::exclusive(c)))
                .sum();
            prop_assert!((roots - partition).abs() <= 1e-9 * roots.abs().max(1.0));
        }
    }

    /// The flat profile is a re-partition of the same total.
    #[test]
    fn flat_profile_conserves_total(spec in tree_spec()) {
        let e = build(&spec);
        for m in e.metadata().metric_ids() {
            let msel = MetricSelection::inclusive(m);
            let flat: f64 = flat_profile(&e, msel).into_iter().map(|(_, v)| v).sum();
            let total = e.severity().metric_sum(m);
            prop_assert!((flat - total).abs() <= 1e-9 * total.abs().max(1.0));
        }
    }

    /// The per-thread distribution sums to the cross-system value.
    #[test]
    fn thread_distribution_sums_to_call_value(spec in tree_spec()) {
        let e = build(&spec);
        let md = e.metadata();
        let m = MetricId::new(0);
        let msel = MetricSelection::inclusive(m);
        for &root in md.call_roots() {
            let csel = CallSelection::inclusive(root);
            let dist: f64 = thread_distribution(&e, msel, csel).iter().sum();
            let total = call_value(&e, msel, csel);
            prop_assert!((dist - total).abs() <= 1e-9 * total.abs().max(1.0));
        }
    }
}
