//! A CUBE experiment: metadata plus severity data.

use crate::error::ModelError;
use crate::metadata::Metadata;
use crate::provenance::Provenance;
use crate::severity::Severity;

/// A valid instance of the CUBE data model.
///
/// An experiment pairs [`Metadata`] (the three dimensions) with a
/// [`Severity`] store defined over exactly that metadata. Both *original*
/// experiments (produced by measurement tools) and *derived* experiments
/// (produced by algebra operators) are values of this one type — that is
/// the closure property that lets a single viewer and a single file
/// format serve both.
#[derive(Clone, Debug, PartialEq)]
pub struct Experiment {
    metadata: Metadata,
    severity: Severity,
    provenance: Provenance,
}

impl Experiment {
    /// Assembles an experiment and validates it.
    pub fn new(
        metadata: Metadata,
        severity: Severity,
        provenance: Provenance,
    ) -> Result<Self, ModelError> {
        let exp = Self {
            metadata,
            severity,
            provenance,
        };
        exp.validate()?;
        Ok(exp)
    }

    /// Assembles an experiment without validating.
    ///
    /// Intended for operators that construct results known to be valid by
    /// construction; tests still call [`Experiment::validate`] on operator
    /// outputs to pin the closure property.
    pub fn new_unchecked(metadata: Metadata, severity: Severity, provenance: Provenance) -> Self {
        Self {
            metadata,
            severity,
            provenance,
        }
    }

    /// The metadata part.
    pub fn metadata(&self) -> &Metadata {
        &self.metadata
    }

    /// The severity store.
    pub fn severity(&self) -> &Severity {
        &self.severity
    }

    /// Mutable access to the severity store (tools accumulate into it).
    pub fn severity_mut(&mut self) -> &mut Severity {
        &mut self.severity
    }

    /// Where this experiment came from.
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// Replaces the provenance label.
    pub fn set_provenance(&mut self, provenance: Provenance) {
        self.provenance = provenance;
    }

    /// Checks all data-model constraints: metadata constraints, shape
    /// agreement between severity and metadata, the mandatory thread
    /// level, and absence of NaN severities.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.metadata.validate()?;
        if self.metadata.threads().is_empty() {
            return Err(ModelError::NoThreads);
        }
        let expected = self.metadata.shape();
        let actual = self.severity.shape();
        if expected != actual {
            return Err(ModelError::SeverityShapeMismatch { expected, actual });
        }
        if let Some((m, c, t)) = self.severity.find_nan() {
            return Err(ModelError::NanSeverity {
                metric: m,
                call_node: c,
                thread: t,
            });
        }
        Ok(())
    }

    /// Runs every lint rule over this experiment and reports all
    /// findings, warnings included. See [`mod@crate::lint`] for the rule
    /// catalogue; [`validate`](Self::validate) is the yes/no subset.
    pub fn lint(&self) -> crate::lint::Report {
        crate::lint::lint(self)
    }

    /// Structural equality up to floating-point tolerance: identical
    /// metadata and severity values within `tol`. Provenance is ignored —
    /// it is informational only.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.metadata == other.metadata && self.severity.approx_eq(&other.severity, tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ExperimentBuilder;
    use crate::metric::Unit;
    use crate::program::RegionKind;

    fn build_one() -> Experiment {
        let mut b = ExperimentBuilder::new("t");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let md = b.def_module("m", "/m");
        let r = b.def_region("main", md, RegionKind::Function, 1, 2);
        let cs = b.def_call_site("m", 1, r);
        let root = b.def_call_node(cs, None);
        let mach = b.def_machine("mach");
        let node = b.def_node("n0", mach);
        let p = b.def_process("p0", 0, node);
        let t = b.def_thread("t0", 0, p);
        b.set_severity(time, root, t, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn valid_experiment_roundtrips_accessors() {
        let e = build_one();
        assert_eq!(e.metadata().num_metrics(), 1);
        assert_eq!(e.severity().shape(), (1, 1, 1));
        assert!(!e.provenance().is_derived());
        e.validate().unwrap();
    }

    #[test]
    fn shape_mismatch_detected() {
        let e = build_one();
        let bad = Experiment::new_unchecked(
            e.metadata().clone(),
            Severity::zeros(2, 1, 1),
            Provenance::default(),
        );
        assert!(matches!(
            bad.validate(),
            Err(ModelError::SeverityShapeMismatch { .. })
        ));
    }

    #[test]
    fn nan_detected() {
        let mut e = build_one();
        e.severity_mut().values_mut()[0] = f64::NAN;
        assert!(matches!(e.validate(), Err(ModelError::NanSeverity { .. })));
    }

    #[test]
    fn no_threads_detected() {
        let md = Metadata::new();
        let e = Experiment::new_unchecked(md, Severity::zeros(0, 0, 0), Provenance::default());
        assert!(matches!(e.validate(), Err(ModelError::NoThreads)));
    }

    #[test]
    fn approx_eq_ignores_provenance() {
        let a = build_one();
        let mut b = build_one();
        b.set_provenance(Provenance::derived("mean", vec!["x".into()]));
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn approx_eq_detects_value_changes() {
        let a = build_one();
        let mut b = build_one();
        b.severity_mut().values_mut()[0] += 0.5;
        assert!(!a.approx_eq(&b, 1e-9));
        assert!(a.approx_eq(&b, 1.0));
    }
}
