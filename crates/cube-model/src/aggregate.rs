//! Aggregation of severity values along and across the three dimensions.
//!
//! The stored severity is call-exclusive and metric-inclusive (see the
//! crate docs). The display and the analysis tools need the other forms,
//! which this module derives:
//!
//! * **metric selection** — a metric viewed either *inclusively* (the
//!   stored value: the metric with everything its children cover) or
//!   *exclusively* (children subtracted — what the display shows next to
//!   an *expanded* metric node, the "single representation" principle);
//! * **call selection** — a call path viewed either *exclusively* (the
//!   stored value for exactly this call path, shown for an expanded
//!   node) or *inclusively* (the whole subtree, shown for a collapsed
//!   node);
//! * aggregation **across** dimensions: the value shown in the call tree
//!   sums the selected metric over the entire system; the value shown at
//!   a system entity restricts the selected metric and call path to that
//!   entity's threads.

use rayon::prelude::*;

use crate::experiment::Experiment;
use crate::ids::{CallNodeId, MachineId, MetricId, NodeId, ProcessId, RegionId, ThreadId};

/// How a metric node is being viewed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricSelection {
    /// The selected metric.
    pub metric: MetricId,
    /// `true` when the metric node is expanded, i.e. the values of its
    /// child metrics must be subtracted (each severity fraction is
    /// displayed only once).
    pub exclusive: bool,
}

impl MetricSelection {
    /// Inclusive view of `metric` (collapsed node).
    pub fn inclusive(metric: MetricId) -> Self {
        Self {
            metric,
            exclusive: false,
        }
    }

    /// Exclusive view of `metric` (expanded node).
    pub fn exclusive(metric: MetricId) -> Self {
        Self {
            metric,
            exclusive: true,
        }
    }
}

/// How a call-tree node is being viewed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallSelection {
    /// The selected call path.
    pub node: CallNodeId,
    /// `true` when the node is collapsed, i.e. the whole subtree is
    /// aggregated into the shown value.
    pub inclusive: bool,
}

impl CallSelection {
    /// Inclusive view (collapsed node — subtree aggregated).
    pub fn inclusive(node: CallNodeId) -> Self {
        Self {
            node,
            inclusive: true,
        }
    }

    /// Exclusive view (expanded node — this call path only).
    pub fn exclusive(node: CallNodeId) -> Self {
        Self {
            node,
            inclusive: false,
        }
    }
}

/// Value of a metric selection at a single `(call node, thread)` tuple.
pub fn metric_value_at(exp: &Experiment, sel: MetricSelection, c: CallNodeId, t: ThreadId) -> f64 {
    let sev = exp.severity();
    let mut v = sev.get(sel.metric, c, t);
    if sel.exclusive {
        for &child in exp.metadata().metric_children(sel.metric) {
            v -= sev.get(child, c, t);
        }
    }
    v
}

/// Value of a metric selection summed over the entire program and system
/// — the number shown next to the node in the metric tree.
pub fn metric_total(exp: &Experiment, sel: MetricSelection) -> f64 {
    let sev = exp.severity();
    let mut v = sev.metric_sum(sel.metric);
    if sel.exclusive {
        for &child in exp.metadata().metric_children(sel.metric) {
            v -= sev.metric_sum(child);
        }
    }
    v
}

/// Inclusive total of the *root* of the metric tree containing `m` — the
/// denominator for percentage displays.
pub fn root_total(exp: &Experiment, m: MetricId) -> f64 {
    let root = exp.metadata().metric_root_of(m);
    exp.severity().metric_sum(root)
}

/// Value of `(metric selection, call selection)` at one thread.
pub fn value_at_thread(
    exp: &Experiment,
    msel: MetricSelection,
    csel: CallSelection,
    t: ThreadId,
) -> f64 {
    if csel.inclusive {
        exp.metadata()
            .call_subtree(csel.node)
            .into_iter()
            .map(|c| metric_value_at(exp, msel, c, t))
            .sum()
    } else {
        metric_value_at(exp, msel, csel.node, t)
    }
}

/// Value of `(metric selection, call selection)` summed over the entire
/// system — the number shown next to the node in the call tree.
pub fn call_value(exp: &Experiment, msel: MetricSelection, csel: CallSelection) -> f64 {
    let nodes = if csel.inclusive {
        exp.metadata().call_subtree(csel.node)
    } else {
        vec![csel.node]
    };
    let sev = exp.severity();
    // Parallel over subtree nodes for deep inclusive selections; the
    // reduction tree is fixed by the node count (never by the thread
    // count), so the floating-point result is deterministic.
    let mut v: f64 = subtree_sum(sev, msel.metric, &nodes);
    if msel.exclusive {
        for &child in exp.metadata().metric_children(msel.metric) {
            v -= subtree_sum(sev, child, &nodes);
        }
    }
    v
}

/// Sum of `row_sum(m, c)` over `nodes`, parallel above 256 nodes.
fn subtree_sum(sev: &crate::severity::Severity, m: MetricId, nodes: &[CallNodeId]) -> f64 {
    nodes
        .par_iter()
        .with_min_len(256)
        .map(|&c| sev.row_sum(m, c))
        .sum()
}

/// Value at one thread — the number shown next to a thread in the system
/// tree for the current metric and call selections.
pub fn thread_value(
    exp: &Experiment,
    msel: MetricSelection,
    csel: CallSelection,
    t: ThreadId,
) -> f64 {
    value_at_thread(exp, msel, csel, t)
}

/// Aggregated value of a process (sum over its threads).
pub fn process_value(
    exp: &Experiment,
    msel: MetricSelection,
    csel: CallSelection,
    p: ProcessId,
) -> f64 {
    exp.metadata()
        .threads_of_process(p)
        .iter()
        .map(|&t| value_at_thread(exp, msel, csel, t))
        .sum()
}

/// Aggregated value of a system node (sum over its processes).
pub fn node_value(exp: &Experiment, msel: MetricSelection, csel: CallSelection, n: NodeId) -> f64 {
    exp.metadata()
        .processes_of_node(n)
        .iter()
        .map(|&p| process_value(exp, msel, csel, p))
        .sum()
}

/// Aggregated value of a machine (sum over its nodes).
pub fn machine_value(
    exp: &Experiment,
    msel: MetricSelection,
    csel: CallSelection,
    m: MachineId,
) -> f64 {
    exp.metadata()
        .nodes_of_machine(m)
        .iter()
        .map(|&n| node_value(exp, msel, csel, n))
        .sum()
}

/// The flat-profile view of the program dimension: for each region, the
/// selected metric summed over every call path whose callee is that
/// region (and over the entire system). Equivalent to representing the
/// profile as one trivial call tree per region.
pub fn flat_profile(exp: &Experiment, msel: MetricSelection) -> Vec<(RegionId, f64)> {
    let md = exp.metadata();
    // Per-node contributions in parallel (each one is a whole-row
    // scan), then a sequential accumulation *in call-node order* — the
    // same fold order as a plain loop, so results are bit-identical to
    // the serial form for any thread count.
    let ids: Vec<CallNodeId> = md.call_node_ids().collect();
    let contributions: Vec<f64> = ids
        .par_iter()
        .with_min_len(64)
        .map(|&c| call_value(exp, msel, CallSelection::exclusive(c)))
        .collect();
    let mut per_region = vec![0.0f64; md.regions().len()];
    for (&c, v) in ids.iter().zip(contributions) {
        per_region[md.call_node_callee(c).index()] += v;
    }
    per_region
        .into_iter()
        .enumerate()
        .map(|(i, v)| (RegionId::from_index(i), v))
        .collect()
}

/// Per-thread distribution of a metric/call selection, in thread order.
///
/// Uses a parallel map — for large system dimensions (thousands of
/// threads) this is the hot path of the display's system pane.
pub fn thread_distribution(
    exp: &Experiment,
    msel: MetricSelection,
    csel: CallSelection,
) -> Vec<f64> {
    let n = exp.metadata().num_threads();
    (0..n)
        .into_par_iter()
        // Each item scans a whole call subtree, so split well below the
        // default leaf size — 64 threads of slack per piece.
        .with_min_len(64)
        .map(|t| value_at_thread(exp, msel, csel, ThreadId::from_index(t)))
        .collect()
}

/// Consistency check used by tests and the viewer: the inclusive value of
/// every call root, summed over roots, equals the plain metric total.
pub fn check_call_aggregation(exp: &Experiment, m: MetricId, tol: f64) -> bool {
    let msel = MetricSelection::inclusive(m);
    let total: f64 = exp
        .metadata()
        .call_roots()
        .iter()
        .map(|&r| call_value(exp, msel, CallSelection::inclusive(r)))
        .sum();
    (total - exp.severity().metric_sum(m)).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{single_threaded_system, ExperimentBuilder};
    use crate::metric::Unit;
    use crate::program::RegionKind;

    /// Builds: metrics time > mpi; call tree main -> {solve -> mpi_call, io};
    /// 2 single-threaded ranks.
    fn sample() -> (Experiment, [MetricId; 2], [CallNodeId; 4], Vec<ThreadId>) {
        let mut b = ExperimentBuilder::new("agg");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let mpi = b.def_metric("mpi", Unit::Seconds, "", Some(time));
        let m = b.def_module("a.c", "/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 99);
        let solve_r = b.def_region("solve", m, RegionKind::Function, 10, 60);
        let mpicall_r = b.def_region("MPI_Send", m, RegionKind::Function, 0, 0);
        let io_r = b.def_region("io", m, RegionKind::Function, 70, 90);
        let cs_main = b.def_call_site("a.c", 1, main_r);
        let cs_solve = b.def_call_site("a.c", 20, solve_r);
        let cs_mpi = b.def_call_site("a.c", 30, mpicall_r);
        let cs_io = b.def_call_site("a.c", 80, io_r);
        let n_main = b.def_call_node(cs_main, None);
        let n_solve = b.def_call_node(cs_solve, Some(n_main));
        let n_mpi = b.def_call_node(cs_mpi, Some(n_solve));
        let n_io = b.def_call_node(cs_io, Some(n_main));
        let ts = single_threaded_system(&mut b, 2);
        // time: main 1.0 each, solve 2.0 each, mpi 0.5 each, io 1.5/0.5
        for &t in &ts {
            b.set_severity(time, n_main, t, 1.0);
            b.set_severity(time, n_solve, t, 2.0);
            b.set_severity(time, n_mpi, t, 0.5);
        }
        b.set_severity(time, n_io, ts[0], 1.5);
        b.set_severity(time, n_io, ts[1], 0.5);
        // mpi metric: only inside the MPI_Send call path.
        for &t in &ts {
            b.set_severity(mpi, n_mpi, t, 0.5);
        }
        let e = b.build().unwrap();
        (e, [time, mpi], [n_main, n_solve, n_mpi, n_io], ts)
    }

    #[test]
    fn metric_totals() {
        let (e, [time, mpi], _, _) = sample();
        // time total: 2*(1+2+0.5) + 1.5 + 0.5 = 9.0
        assert_eq!(metric_total(&e, MetricSelection::inclusive(time)), 9.0);
        assert_eq!(metric_total(&e, MetricSelection::inclusive(mpi)), 1.0);
        // exclusive time = 9 - 1 = 8
        assert_eq!(metric_total(&e, MetricSelection::exclusive(time)), 8.0);
        assert_eq!(root_total(&e, mpi), 9.0);
    }

    #[test]
    fn call_values_inclusive_and_exclusive() {
        let (e, [time, _], [n_main, n_solve, n_mpi, n_io], _) = sample();
        let minc = MetricSelection::inclusive(time);
        assert_eq!(call_value(&e, minc, CallSelection::inclusive(n_main)), 9.0);
        assert_eq!(call_value(&e, minc, CallSelection::exclusive(n_main)), 2.0);
        assert_eq!(call_value(&e, minc, CallSelection::inclusive(n_solve)), 5.0);
        assert_eq!(call_value(&e, minc, CallSelection::exclusive(n_mpi)), 1.0);
        assert_eq!(call_value(&e, minc, CallSelection::inclusive(n_io)), 2.0);
    }

    #[test]
    fn exclusive_metric_at_call_node() {
        let (e, [time, _], [_, _, n_mpi, _], _) = sample();
        // At the MPI call node, exclusive time = time - mpi = 1.0 - 1.0 = 0.
        let mexc = MetricSelection::exclusive(time);
        assert_eq!(call_value(&e, mexc, CallSelection::exclusive(n_mpi)), 0.0);
    }

    #[test]
    fn system_aggregation_chain() {
        let (e, [time, _], [n_main, ..], ts) = sample();
        let minc = MetricSelection::inclusive(time);
        let cinc = CallSelection::inclusive(n_main);
        let t0 = thread_value(&e, minc, cinc, ts[0]);
        let t1 = thread_value(&e, minc, cinc, ts[1]);
        assert_eq!(t0, 5.0);
        assert_eq!(t1, 4.0);
        let p0 = e.metadata().thread(ts[0]).process;
        assert_eq!(process_value(&e, minc, cinc, p0), 5.0);
        assert_eq!(node_value(&e, minc, cinc, NodeId::new(0)), 9.0);
        assert_eq!(machine_value(&e, minc, cinc, MachineId::new(0)), 9.0);
    }

    #[test]
    fn thread_distribution_matches_thread_values() {
        let (e, [time, _], [n_main, ..], ts) = sample();
        let minc = MetricSelection::inclusive(time);
        let cinc = CallSelection::inclusive(n_main);
        let dist = thread_distribution(&e, minc, cinc);
        assert_eq!(dist.len(), ts.len());
        assert_eq!(dist, vec![5.0, 4.0]);
    }

    #[test]
    fn flat_profile_aggregates_by_region() {
        let (e, [time, _], _, _) = sample();
        let prof = flat_profile(&e, MetricSelection::inclusive(time));
        // regions: main, solve, MPI_Send, io
        let by_name: Vec<(String, f64)> = prof
            .iter()
            .map(|(r, v)| (e.metadata().region(*r).name.clone(), *v))
            .collect();
        assert_eq!(by_name[0], ("main".to_string(), 2.0));
        assert_eq!(by_name[1], ("solve".to_string(), 4.0));
        assert_eq!(by_name[2], ("MPI_Send".to_string(), 1.0));
        assert_eq!(by_name[3], ("io".to_string(), 2.0));
        let total: f64 = prof.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 9.0);
    }

    #[test]
    fn aggregation_consistency_check() {
        let (e, [time, mpi], _, _) = sample();
        assert!(check_call_aggregation(&e, time, 1e-12));
        assert!(check_call_aggregation(&e, mpi, 1e-12));
    }
}
