//! Provenance of an experiment: original measurement or derived result.
//!
//! The algebra's closure property means a derived experiment is
//! indistinguishable, structurally, from an original one. Provenance is
//! therefore *informational only*: it never participates in equality
//! used by the operators, but tools (and the display's title bar) can
//! show where a data set came from.

use std::fmt;

/// Where an experiment's data came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Data collected during a real (or simulated) measurement run.
    Original {
        /// Free-form experiment name, e.g. `"pescan run 3"`.
        name: String,
    },
    /// Data produced by applying an algebra operator.
    Derived {
        /// Operator name, e.g. `"difference"`, `"merge"`, `"mean"`.
        operator: String,
        /// Descriptions of the operand experiments, in operand order.
        operands: Vec<String>,
    },
    /// Data reconstructed by the salvage reader from a damaged file.
    ///
    /// The severity function is the longest valid prefix of the stored
    /// one, zero-extended; downstream operators see the lineage through
    /// [`Provenance::label`] like any other operand.
    Recovered {
        /// Label the damaged file recorded for itself (its provenance,
        /// as far as it was readable).
        source: String,
        /// What was lost, e.g. `"truncated at 120:7; 5 rows recovered"`.
        note: String,
    },
}

impl Provenance {
    /// Provenance for an original experiment.
    pub fn original(name: impl Into<String>) -> Self {
        Self::Original { name: name.into() }
    }

    /// Provenance for a derived experiment.
    pub fn derived(operator: impl Into<String>, operands: Vec<String>) -> Self {
        Self::Derived {
            operator: operator.into(),
            operands,
        }
    }

    /// Provenance for an experiment salvaged from a damaged file.
    pub fn recovered(source: impl Into<String>, note: impl Into<String>) -> Self {
        Self::Recovered {
            source: source.into(),
            note: note.into(),
        }
    }

    /// A short label suitable for window titles or CLI output.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Whether this experiment is the result of an operator.
    pub fn is_derived(&self) -> bool {
        matches!(self, Self::Derived { .. })
    }

    /// Whether this experiment was salvaged from a damaged file.
    pub fn is_recovered(&self) -> bool {
        matches!(self, Self::Recovered { .. })
    }

    /// Whether this experiment is an unmodified measurement: neither
    /// derived by an operator nor reconstructed by salvage. Lint rules
    /// that assume measurement-tool invariants (non-negative
    /// severities) apply only to original experiments.
    pub fn is_original(&self) -> bool {
        matches!(self, Self::Original { .. })
    }
}

impl Default for Provenance {
    fn default() -> Self {
        Self::original("unnamed experiment")
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Original { name } => write!(f, "{name}"),
            Self::Derived { operator, operands } => {
                write!(f, "{operator}(")?;
                for (i, op) in operands.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{op}")?;
                }
                write!(f, ")")
            }
            Self::Recovered { source, .. } => write!(f, "recovered({source})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_label() {
        let p = Provenance::original("run 1");
        assert_eq!(p.label(), "run 1");
        assert!(!p.is_derived());
    }

    #[test]
    fn derived_label_is_composite() {
        let p = Provenance::derived("difference", vec!["old".into(), "new".into()]);
        assert_eq!(p.label(), "difference(old, new)");
        assert!(p.is_derived());
    }

    #[test]
    fn recovered_label_and_predicates() {
        let p = Provenance::recovered("run 1", "truncated at 3:1; 2 rows recovered");
        assert_eq!(p.label(), "recovered(run 1)");
        assert!(p.is_recovered());
        assert!(!p.is_derived());
        assert!(!p.is_original());
        assert!(Provenance::original("x").is_original());
        assert!(!Provenance::derived("mean", vec![]).is_original());
    }

    #[test]
    fn nested_composition_reads_naturally() {
        let inner = Provenance::derived("mean", vec!["a".into(), "b".into()]);
        let outer = Provenance::derived("difference", vec![inner.label(), "c".into()]);
        assert_eq!(outer.label(), "difference(mean(a, b), c)");
    }
}
