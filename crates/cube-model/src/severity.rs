//! The severity store: a dense three-dimensional array of metric values.
//!
//! Severity values are indexed by `(metric, call node, thread)`. The
//! layout is row-major with the thread index varying fastest, matching
//! the XML format's "matrix per metric, row per call node" structure and
//! giving the element-wise algebra a single contiguous `&[f64]` to
//! operate on.
//!
//! ## NaN policy
//!
//! A severity value of a *valid* experiment is never NaN:
//! [`Experiment::validate`](crate::Experiment::validate) rejects stores
//! containing one, and [`Severity::find_nan`] is the diagnostic that
//! locates the offender. Code operating on unvalidated stores (anything
//! assembled through `new_unchecked` or raw `values_mut` writes) must
//! assume IEEE semantics instead: addition-based reductions (`sum`,
//! `mean`, `variance`) *poison* the affected element with NaN, while
//! `min`/`max` follow Rust's [`f64::min`]/[`f64::max`] and return the
//! other operand, so a single NaN operand is dropped from the
//! selection. The batch engine in `cube-algebra` pins exactly these
//! semantics in its tests rather than paying for per-element checks on
//! the hot path.

use crate::error::ModelError;
use crate::ids::{CallNodeId, MetricId, ThreadId};

/// Dense three-dimensional severity array.
///
/// A value may be negative — difference experiments are first-class
/// citizens of the algebra — but never NaN.
#[derive(Clone, Debug, PartialEq)]
pub struct Severity {
    num_metrics: usize,
    num_call_nodes: usize,
    num_threads: usize,
    values: Vec<f64>,
}

impl Severity {
    /// Creates an all-zero severity store with the given shape.
    pub fn zeros(num_metrics: usize, num_call_nodes: usize, num_threads: usize) -> Self {
        Self {
            num_metrics,
            num_call_nodes,
            num_threads,
            values: vec![0.0; num_metrics * num_call_nodes * num_threads],
        }
    }

    /// Creates a severity store from a raw value vector, checking that
    /// the vector length matches the product of the dimensions.
    ///
    /// This is the fallible counterpart of [`Severity::from_values`];
    /// use it when the shape or the values come from an external source
    /// (a file, a wire format) rather than from code that controls
    /// both.
    ///
    /// ```
    /// use cube_model::{ModelError, Severity};
    ///
    /// let s = Severity::try_from_values(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
    /// assert_eq!(s.shape(), (1, 2, 2));
    ///
    /// let err = Severity::try_from_values(1, 2, 2, vec![1.0]).unwrap_err();
    /// assert!(matches!(err, ModelError::SeverityLengthMismatch { .. }));
    /// ```
    pub fn try_from_values(
        num_metrics: usize,
        num_call_nodes: usize,
        num_threads: usize,
        values: Vec<f64>,
    ) -> Result<Self, ModelError> {
        let expected_len = num_metrics * num_call_nodes * num_threads;
        if values.len() != expected_len {
            return Err(ModelError::SeverityLengthMismatch {
                shape: (num_metrics, num_call_nodes, num_threads),
                expected_len,
                actual_len: values.len(),
            });
        }
        Ok(Self {
            num_metrics,
            num_call_nodes,
            num_threads,
            values,
        })
    }

    /// Creates a severity store from a raw value vector.
    ///
    /// # Panics
    /// Panics if `values.len() != num_metrics * num_call_nodes * num_threads`.
    /// For a fallible version see [`Severity::try_from_values`].
    pub fn from_values(
        num_metrics: usize,
        num_call_nodes: usize,
        num_threads: usize,
        values: Vec<f64>,
    ) -> Self {
        match Self::try_from_values(num_metrics, num_call_nodes, num_threads, values) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// The shape `(metrics, call nodes, threads)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.num_metrics, self.num_call_nodes, self.num_threads)
    }

    /// Total number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store holds no values at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    #[inline]
    fn offset(&self, m: MetricId, c: CallNodeId, t: ThreadId) -> usize {
        debug_assert!(m.index() < self.num_metrics, "metric out of range");
        debug_assert!(c.index() < self.num_call_nodes, "call node out of range");
        debug_assert!(t.index() < self.num_threads, "thread out of range");
        (m.index() * self.num_call_nodes + c.index()) * self.num_threads + t.index()
    }

    /// Reads the severity of one tuple.
    #[inline]
    pub fn get(&self, m: MetricId, c: CallNodeId, t: ThreadId) -> f64 {
        self.values[self.offset(m, c, t)]
    }

    /// Overwrites the severity of one tuple.
    #[inline]
    pub fn set(&mut self, m: MetricId, c: CallNodeId, t: ThreadId, value: f64) {
        let o = self.offset(m, c, t);
        self.values[o] = value;
    }

    /// Adds to the severity of one tuple (the natural accumulation
    /// operation for measurement tools).
    #[inline]
    pub fn add(&mut self, m: MetricId, c: CallNodeId, t: ThreadId, value: f64) {
        let o = self.offset(m, c, t);
        self.values[o] += value;
    }

    /// The contiguous row of thread values for `(metric, call node)`.
    pub fn row(&self, m: MetricId, c: CallNodeId) -> &[f64] {
        let start = (m.index() * self.num_call_nodes + c.index()) * self.num_threads;
        &self.values[start..start + self.num_threads]
    }

    /// Number of `(metric, call node)` rows in the store.
    ///
    /// Together with [`Severity::row_at`] this lets batch evaluators
    /// iterate rows by flat index without re-deriving the layout.
    pub fn num_rows(&self) -> usize {
        self.num_metrics * self.num_call_nodes
    }

    /// Flat row index of `(metric, call node)`:
    /// `row_at(row_index(m, c)) == row(m, c)`.
    #[inline]
    pub fn row_index(&self, m: MetricId, c: CallNodeId) -> usize {
        debug_assert!(m.index() < self.num_metrics, "metric out of range");
        debug_assert!(c.index() < self.num_call_nodes, "call node out of range");
        m.index() * self.num_call_nodes + c.index()
    }

    /// The thread row at a flat row index (see [`Severity::row_index`]).
    ///
    /// This is the mapping-reuse hook for the `cube-algebra` batch
    /// engine: a cached `(metric, call node)` translation yields a flat
    /// row index, and the row is then read as one contiguous slice.
    #[inline]
    pub fn row_at(&self, row: usize) -> &[f64] {
        let start = row * self.num_threads;
        &self.values[start..start + self.num_threads]
    }

    /// Mutable access to the row of thread values for `(metric, call node)`.
    pub fn row_mut(&mut self, m: MetricId, c: CallNodeId) -> &mut [f64] {
        let start = (m.index() * self.num_call_nodes + c.index()) * self.num_threads;
        &mut self.values[start..start + self.num_threads]
    }

    /// Sum of a row (all threads) for `(metric, call node)`.
    pub fn row_sum(&self, m: MetricId, c: CallNodeId) -> f64 {
        self.row(m, c).iter().sum()
    }

    /// Sum over all call nodes and threads for one metric.
    pub fn metric_sum(&self, m: MetricId) -> f64 {
        let start = m.index() * self.num_call_nodes * self.num_threads;
        let end = start + self.num_call_nodes * self.num_threads;
        self.values[start..end].iter().sum()
    }

    /// The full backing slice (metric-major, thread-fastest).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the full backing slice.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterates over all `(metric, call node, thread, value)` tuples with a
    /// nonzero value.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (MetricId, CallNodeId, ThreadId, f64)> + '_ {
        let nc = self.num_call_nodes;
        let nt = self.num_threads;
        self.values.iter().enumerate().filter_map(move |(i, &v)| {
            if v == 0.0 {
                None
            } else {
                let t = i % nt;
                let c = (i / nt) % nc;
                let m = i / (nt * nc);
                Some((
                    MetricId::from_index(m),
                    CallNodeId::from_index(c),
                    ThreadId::from_index(t),
                    v,
                ))
            }
        })
    }

    /// Returns the first NaN position, if any.
    pub fn find_nan(&self) -> Option<(MetricId, CallNodeId, ThreadId)> {
        let nc = self.num_call_nodes;
        let nt = self.num_threads;
        self.values.iter().position(|v| v.is_nan()).map(|i| {
            (
                MetricId::from_index(i / (nt * nc)),
                CallNodeId::from_index((i / nt) % nc),
                ThreadId::from_index(i % nt),
            )
        })
    }

    /// Largest absolute value in the store (0.0 when empty).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// True if every value compares equal to the corresponding value of
    /// `other` within `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> MetricId {
        MetricId::new(i)
    }
    fn c(i: u32) -> CallNodeId {
        CallNodeId::new(i)
    }
    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn zeros_has_right_shape() {
        let s = Severity::zeros(2, 3, 4);
        assert_eq!(s.shape(), (2, 3, 4));
        assert_eq!(s.len(), 24);
        assert!(!s.is_empty());
        assert!(s.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn set_get_add() {
        let mut s = Severity::zeros(2, 2, 2);
        s.set(m(1), c(0), t(1), 3.5);
        assert_eq!(s.get(m(1), c(0), t(1)), 3.5);
        s.add(m(1), c(0), t(1), 1.5);
        assert_eq!(s.get(m(1), c(0), t(1)), 5.0);
        assert_eq!(s.get(m(0), c(0), t(1)), 0.0);
    }

    #[test]
    fn layout_is_thread_fastest() {
        let mut s = Severity::zeros(2, 2, 3);
        s.set(m(0), c(0), t(0), 1.0);
        s.set(m(0), c(0), t(2), 2.0);
        s.set(m(0), c(1), t(0), 3.0);
        s.set(m(1), c(0), t(0), 4.0);
        assert_eq!(&s.values()[0..3], &[1.0, 0.0, 2.0]);
        assert_eq!(s.values()[3], 3.0);
        assert_eq!(s.values()[6], 4.0);
    }

    #[test]
    fn rows_and_sums() {
        let mut s = Severity::zeros(1, 2, 3);
        s.set(m(0), c(1), t(0), 1.0);
        s.set(m(0), c(1), t(2), 2.0);
        assert_eq!(s.row(m(0), c(1)), &[1.0, 0.0, 2.0]);
        assert_eq!(s.row_sum(m(0), c(1)), 3.0);
        assert_eq!(s.metric_sum(m(0)), 3.0);
        s.row_mut(m(0), c(0))[1] = 5.0;
        assert_eq!(s.metric_sum(m(0)), 8.0);
    }

    #[test]
    fn iter_nonzero_yields_coordinates() {
        let mut s = Severity::zeros(2, 2, 2);
        s.set(m(1), c(1), t(0), -2.0);
        let all: Vec<_> = s.iter_nonzero().collect();
        assert_eq!(all, vec![(m(1), c(1), t(0), -2.0)]);
    }

    #[test]
    fn find_nan_locates_position() {
        let mut s = Severity::zeros(2, 3, 4);
        assert_eq!(s.find_nan(), None);
        s.set(m(1), c(2), t(3), f64::NAN);
        assert_eq!(s.find_nan(), Some((m(1), c(2), t(3))));
    }

    #[test]
    fn max_abs_sees_negative_values() {
        let mut s = Severity::zeros(1, 1, 2);
        s.set(m(0), c(0), t(0), -7.0);
        s.set(m(0), c(0), t(1), 3.0);
        assert_eq!(s.max_abs(), 7.0);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let mut a = Severity::zeros(1, 1, 1);
        let mut b = Severity::zeros(1, 1, 1);
        a.set(m(0), c(0), t(0), 1.0);
        b.set(m(0), c(0), t(0), 1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        let c3 = Severity::zeros(1, 1, 2);
        assert!(!a.approx_eq(&c3, 1.0));
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn from_values_checks_length() {
        let _ = Severity::from_values(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn try_from_values_reports_mismatch() {
        let err = Severity::try_from_values(2, 2, 2, vec![0.0; 7]).unwrap_err();
        assert_eq!(
            err,
            ModelError::SeverityLengthMismatch {
                shape: (2, 2, 2),
                expected_len: 8,
                actual_len: 7,
            }
        );
        assert!(err.to_string().contains("length must equal"));

        let ok = Severity::try_from_values(2, 2, 2, vec![1.0; 8]).unwrap();
        assert_eq!(ok.shape(), (2, 2, 2));
        assert_eq!(ok.len(), 8);
    }

    #[test]
    fn empty_store() {
        let s = Severity::zeros(0, 0, 0);
        assert!(s.is_empty());
        assert_eq!(s.max_abs(), 0.0);
        assert_eq!(s.iter_nonzero().count(), 0);
    }

    #[test]
    fn row_hooks_agree_with_coordinate_access() {
        let mut s = Severity::zeros(2, 3, 4);
        s.set(m(1), c(2), t(3), 9.0);
        assert_eq!(s.num_rows(), 6);
        for mi in 0..2u32 {
            for ci in 0..3u32 {
                let r = s.row_index(m(mi), c(ci));
                assert_eq!(s.row_at(r), s.row(m(mi), c(ci)));
            }
        }
        assert_eq!(s.row_at(s.row_index(m(1), c(2)))[3], 9.0);
    }

    #[test]
    fn row_hooks_on_empty_store() {
        let s = Severity::zeros(0, 0, 0);
        assert_eq!(s.num_rows(), 0);
        // Degenerate shapes with zero threads still enumerate rows.
        let z = Severity::zeros(2, 2, 0);
        assert_eq!(z.num_rows(), 4);
        assert_eq!(z.row_at(3), &[] as &[f64]);
    }

    #[test]
    fn iter_nonzero_on_empty_and_all_zero_stores() {
        assert_eq!(Severity::zeros(0, 0, 0).iter_nonzero().count(), 0);
        assert_eq!(Severity::zeros(3, 1, 2).iter_nonzero().count(), 0);
        // Negative zero compares equal to zero and is skipped too — the
        // scatter path of the algebra's zero-extension relies on this.
        let mut s = Severity::zeros(1, 1, 2);
        s.set(m(0), c(0), t(0), -0.0);
        assert_eq!(s.iter_nonzero().count(), 0);
    }

    #[test]
    fn iter_nonzero_yields_nan_tuples() {
        // NaN != 0.0, so the iterator must surface it — this is what
        // lets scatter-based extension carry a NaN forward instead of
        // silently dropping it.
        let mut s = Severity::zeros(1, 2, 1);
        s.set(m(0), c(1), t(0), f64::NAN);
        let all: Vec<_> = s.iter_nonzero().collect();
        assert_eq!(all.len(), 1);
        assert_eq!((all[0].0, all[0].1, all[0].2), (m(0), c(1), t(0)));
        assert!(all[0].3.is_nan());
    }

    #[test]
    fn find_nan_on_empty_store_and_first_position() {
        assert_eq!(Severity::zeros(0, 0, 0).find_nan(), None);
        let mut s = Severity::zeros(2, 2, 2);
        s.set(m(0), c(0), t(0), f64::NAN);
        s.set(m(1), c(1), t(1), f64::NAN);
        // Reports the first offender in layout order.
        assert_eq!(s.find_nan(), Some((m(0), c(0), t(0))));
    }

    #[test]
    fn row_sum_edge_cases() {
        // Zero-thread row: empty sum is 0.0.
        let z = Severity::zeros(1, 1, 0);
        assert_eq!(z.row_sum(m(0), c(0)), 0.0);
        // NaN poisons the row sum (IEEE addition semantics).
        let mut s = Severity::zeros(1, 1, 3);
        s.set(m(0), c(0), t(0), 1.0);
        s.set(m(0), c(0), t(1), f64::NAN);
        assert!(s.row_sum(m(0), c(0)).is_nan());
        // Opposite values cancel exactly.
        let mut p = Severity::zeros(1, 1, 2);
        p.set(m(0), c(0), t(0), 7.5);
        p.set(m(0), c(0), t(1), -7.5);
        assert_eq!(p.row_sum(m(0), c(0)), 0.0);
    }
}
