//! The severity store: a dense three-dimensional array of metric values.
//!
//! Severity values are indexed by `(metric, call node, thread)`. The
//! layout is row-major with the thread index varying fastest, matching
//! the XML format's "matrix per metric, row per call node" structure and
//! giving the element-wise algebra a single contiguous `&[f64]` to
//! operate on.

use crate::error::ModelError;
use crate::ids::{CallNodeId, MetricId, ThreadId};

/// Dense three-dimensional severity array.
///
/// A value may be negative — difference experiments are first-class
/// citizens of the algebra — but never NaN.
#[derive(Clone, Debug, PartialEq)]
pub struct Severity {
    num_metrics: usize,
    num_call_nodes: usize,
    num_threads: usize,
    values: Vec<f64>,
}

impl Severity {
    /// Creates an all-zero severity store with the given shape.
    pub fn zeros(num_metrics: usize, num_call_nodes: usize, num_threads: usize) -> Self {
        Self {
            num_metrics,
            num_call_nodes,
            num_threads,
            values: vec![0.0; num_metrics * num_call_nodes * num_threads],
        }
    }

    /// Creates a severity store from a raw value vector, checking that
    /// the vector length matches the product of the dimensions.
    ///
    /// This is the fallible counterpart of [`Severity::from_values`];
    /// use it when the shape or the values come from an external source
    /// (a file, a wire format) rather than from code that controls
    /// both.
    ///
    /// ```
    /// use cube_model::{ModelError, Severity};
    ///
    /// let s = Severity::try_from_values(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
    /// assert_eq!(s.shape(), (1, 2, 2));
    ///
    /// let err = Severity::try_from_values(1, 2, 2, vec![1.0]).unwrap_err();
    /// assert!(matches!(err, ModelError::SeverityLengthMismatch { .. }));
    /// ```
    pub fn try_from_values(
        num_metrics: usize,
        num_call_nodes: usize,
        num_threads: usize,
        values: Vec<f64>,
    ) -> Result<Self, ModelError> {
        let expected_len = num_metrics * num_call_nodes * num_threads;
        if values.len() != expected_len {
            return Err(ModelError::SeverityLengthMismatch {
                shape: (num_metrics, num_call_nodes, num_threads),
                expected_len,
                actual_len: values.len(),
            });
        }
        Ok(Self {
            num_metrics,
            num_call_nodes,
            num_threads,
            values,
        })
    }

    /// Creates a severity store from a raw value vector.
    ///
    /// # Panics
    /// Panics if `values.len() != num_metrics * num_call_nodes * num_threads`.
    /// For a fallible version see [`Severity::try_from_values`].
    pub fn from_values(
        num_metrics: usize,
        num_call_nodes: usize,
        num_threads: usize,
        values: Vec<f64>,
    ) -> Self {
        match Self::try_from_values(num_metrics, num_call_nodes, num_threads, values) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// The shape `(metrics, call nodes, threads)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.num_metrics, self.num_call_nodes, self.num_threads)
    }

    /// Total number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store holds no values at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    #[inline]
    fn offset(&self, m: MetricId, c: CallNodeId, t: ThreadId) -> usize {
        debug_assert!(m.index() < self.num_metrics, "metric out of range");
        debug_assert!(c.index() < self.num_call_nodes, "call node out of range");
        debug_assert!(t.index() < self.num_threads, "thread out of range");
        (m.index() * self.num_call_nodes + c.index()) * self.num_threads + t.index()
    }

    /// Reads the severity of one tuple.
    #[inline]
    pub fn get(&self, m: MetricId, c: CallNodeId, t: ThreadId) -> f64 {
        self.values[self.offset(m, c, t)]
    }

    /// Overwrites the severity of one tuple.
    #[inline]
    pub fn set(&mut self, m: MetricId, c: CallNodeId, t: ThreadId, value: f64) {
        let o = self.offset(m, c, t);
        self.values[o] = value;
    }

    /// Adds to the severity of one tuple (the natural accumulation
    /// operation for measurement tools).
    #[inline]
    pub fn add(&mut self, m: MetricId, c: CallNodeId, t: ThreadId, value: f64) {
        let o = self.offset(m, c, t);
        self.values[o] += value;
    }

    /// The contiguous row of thread values for `(metric, call node)`.
    pub fn row(&self, m: MetricId, c: CallNodeId) -> &[f64] {
        let start = (m.index() * self.num_call_nodes + c.index()) * self.num_threads;
        &self.values[start..start + self.num_threads]
    }

    /// Mutable access to the row of thread values for `(metric, call node)`.
    pub fn row_mut(&mut self, m: MetricId, c: CallNodeId) -> &mut [f64] {
        let start = (m.index() * self.num_call_nodes + c.index()) * self.num_threads;
        &mut self.values[start..start + self.num_threads]
    }

    /// Sum of a row (all threads) for `(metric, call node)`.
    pub fn row_sum(&self, m: MetricId, c: CallNodeId) -> f64 {
        self.row(m, c).iter().sum()
    }

    /// Sum over all call nodes and threads for one metric.
    pub fn metric_sum(&self, m: MetricId) -> f64 {
        let start = m.index() * self.num_call_nodes * self.num_threads;
        let end = start + self.num_call_nodes * self.num_threads;
        self.values[start..end].iter().sum()
    }

    /// The full backing slice (metric-major, thread-fastest).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the full backing slice.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterates over all `(metric, call node, thread, value)` tuples with a
    /// nonzero value.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (MetricId, CallNodeId, ThreadId, f64)> + '_ {
        let nc = self.num_call_nodes;
        let nt = self.num_threads;
        self.values.iter().enumerate().filter_map(move |(i, &v)| {
            if v == 0.0 {
                None
            } else {
                let t = i % nt;
                let c = (i / nt) % nc;
                let m = i / (nt * nc);
                Some((
                    MetricId::from_index(m),
                    CallNodeId::from_index(c),
                    ThreadId::from_index(t),
                    v,
                ))
            }
        })
    }

    /// Returns the first NaN position, if any.
    pub fn find_nan(&self) -> Option<(MetricId, CallNodeId, ThreadId)> {
        let nc = self.num_call_nodes;
        let nt = self.num_threads;
        self.values.iter().position(|v| v.is_nan()).map(|i| {
            (
                MetricId::from_index(i / (nt * nc)),
                CallNodeId::from_index((i / nt) % nc),
                ThreadId::from_index(i % nt),
            )
        })
    }

    /// Largest absolute value in the store (0.0 when empty).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// True if every value compares equal to the corresponding value of
    /// `other` within `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> MetricId {
        MetricId::new(i)
    }
    fn c(i: u32) -> CallNodeId {
        CallNodeId::new(i)
    }
    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn zeros_has_right_shape() {
        let s = Severity::zeros(2, 3, 4);
        assert_eq!(s.shape(), (2, 3, 4));
        assert_eq!(s.len(), 24);
        assert!(!s.is_empty());
        assert!(s.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn set_get_add() {
        let mut s = Severity::zeros(2, 2, 2);
        s.set(m(1), c(0), t(1), 3.5);
        assert_eq!(s.get(m(1), c(0), t(1)), 3.5);
        s.add(m(1), c(0), t(1), 1.5);
        assert_eq!(s.get(m(1), c(0), t(1)), 5.0);
        assert_eq!(s.get(m(0), c(0), t(1)), 0.0);
    }

    #[test]
    fn layout_is_thread_fastest() {
        let mut s = Severity::zeros(2, 2, 3);
        s.set(m(0), c(0), t(0), 1.0);
        s.set(m(0), c(0), t(2), 2.0);
        s.set(m(0), c(1), t(0), 3.0);
        s.set(m(1), c(0), t(0), 4.0);
        assert_eq!(&s.values()[0..3], &[1.0, 0.0, 2.0]);
        assert_eq!(s.values()[3], 3.0);
        assert_eq!(s.values()[6], 4.0);
    }

    #[test]
    fn rows_and_sums() {
        let mut s = Severity::zeros(1, 2, 3);
        s.set(m(0), c(1), t(0), 1.0);
        s.set(m(0), c(1), t(2), 2.0);
        assert_eq!(s.row(m(0), c(1)), &[1.0, 0.0, 2.0]);
        assert_eq!(s.row_sum(m(0), c(1)), 3.0);
        assert_eq!(s.metric_sum(m(0)), 3.0);
        s.row_mut(m(0), c(0))[1] = 5.0;
        assert_eq!(s.metric_sum(m(0)), 8.0);
    }

    #[test]
    fn iter_nonzero_yields_coordinates() {
        let mut s = Severity::zeros(2, 2, 2);
        s.set(m(1), c(1), t(0), -2.0);
        let all: Vec<_> = s.iter_nonzero().collect();
        assert_eq!(all, vec![(m(1), c(1), t(0), -2.0)]);
    }

    #[test]
    fn find_nan_locates_position() {
        let mut s = Severity::zeros(2, 3, 4);
        assert_eq!(s.find_nan(), None);
        s.set(m(1), c(2), t(3), f64::NAN);
        assert_eq!(s.find_nan(), Some((m(1), c(2), t(3))));
    }

    #[test]
    fn max_abs_sees_negative_values() {
        let mut s = Severity::zeros(1, 1, 2);
        s.set(m(0), c(0), t(0), -7.0);
        s.set(m(0), c(0), t(1), 3.0);
        assert_eq!(s.max_abs(), 7.0);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let mut a = Severity::zeros(1, 1, 1);
        let mut b = Severity::zeros(1, 1, 1);
        a.set(m(0), c(0), t(0), 1.0);
        b.set(m(0), c(0), t(0), 1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        let c3 = Severity::zeros(1, 1, 2);
        assert!(!a.approx_eq(&c3, 1.0));
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn from_values_checks_length() {
        let _ = Severity::from_values(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn try_from_values_reports_mismatch() {
        let err = Severity::try_from_values(2, 2, 2, vec![0.0; 7]).unwrap_err();
        assert_eq!(
            err,
            ModelError::SeverityLengthMismatch {
                shape: (2, 2, 2),
                expected_len: 8,
                actual_len: 7,
            }
        );
        assert!(err.to_string().contains("length must equal"));

        let ok = Severity::try_from_values(2, 2, 2, vec![1.0; 8]).unwrap();
        assert_eq!(ok.shape(), (2, 2, 2));
        assert_eq!(ok.len(), 8);
    }

    #[test]
    fn empty_store() {
        let s = Severity::zeros(0, 0, 0);
        assert!(s.is_empty());
        assert_eq!(s.max_abs(), 0.0);
        assert_eq!(s.iter_nonzero().count(), 0);
    }
}
