//! The program dimension: static structure (modules, regions, call sites)
//! and dynamic structure (the call-tree forest).
//!
//! * A **region** is a general code section — a function, a loop, or
//!   another type of basic block. Regions must be properly nested.
//! * A **call site** denotes a source location where control may move
//!   from one region into another (a loop entry point is a call site in
//!   this sense). The region reached by executing the call site is its
//!   *callee*.
//! * A **call-tree node** represents a call path. The set of all
//!   call-tree nodes forms a forest; most experiments have a single root
//!   (the invocation of `main`), but a parallel program with several
//!   executables may need more. Several nodes may point to the same call
//!   site. Recursion must be collapsed onto the tree by the producer.
//!
//! Flat profiles are represented by multiple trivial call trees (one
//! single-node tree per region), so the model needs no special case for
//! them.

use crate::ids::{CallSiteId, ModuleId, RegionId};

/// A source module: compilation unit, source file, or library.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Module {
    /// Module name (typically the file name).
    pub name: String,
    /// Path of the module, informational only.
    pub path: String,
}

impl Module {
    /// Creates a module description.
    pub fn new(name: impl Into<String>, path: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            path: path.into(),
        }
    }
}

/// The kind of code section a [`Region`] represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// A function or subroutine.
    Function,
    /// A loop body instrumented as a region.
    Loop,
    /// Any other user-defined or tool-defined basic block.
    UserRegion,
}

impl RegionKind {
    /// Canonical lowercase name used in the XML representation.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Function => "function",
            Self::Loop => "loop",
            Self::UserRegion => "user",
        }
    }

    /// Parses the canonical name produced by [`RegionKind::as_str`].
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "function" => Some(Self::Function),
            "loop" => Some(Self::Loop),
            "user" => Some(Self::UserRegion),
            _ => None,
        }
    }
}

/// A source-code region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Region name (function name, loop label, ...). Together with the
    /// module it forms the equality key during metadata integration.
    pub name: String,
    /// Module the region belongs to.
    pub module: ModuleId,
    /// What kind of code section this is.
    pub kind: RegionKind,
    /// First source line of the region.
    pub begin_line: u32,
    /// Last source line of the region.
    pub end_line: u32,
}

/// A call site: a source location from which a region is entered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Source file containing the call site.
    pub file: String,
    /// Source line of the call site. Line numbers can shift across code
    /// versions; the algebra therefore offers a callee-only equality mode
    /// when matching call trees.
    pub line: u32,
    /// The region reached by executing this call site.
    pub callee: RegionId,
}

/// A node of the call-tree forest, i.e. one call path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallNode {
    /// The call site from which this call path was entered.
    pub call_site: CallSiteId,
    /// The parent call path; `None` for a root.
    pub parent: Option<crate::ids::CallNodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_kind_roundtrip() {
        for k in [
            RegionKind::Function,
            RegionKind::Loop,
            RegionKind::UserRegion,
        ] {
            assert_eq!(RegionKind::from_str_opt(k.as_str()), Some(k));
        }
        assert_eq!(RegionKind::from_str_opt("lambda"), None);
    }

    #[test]
    fn module_constructor() {
        let m = Module::new("solver.f", "/src/solver.f");
        assert_eq!(m.name, "solver.f");
        assert_eq!(m.path, "/src/solver.f");
    }
}
