//! Cartesian process topologies.
//!
//! The paper's future work proposes integrating "topology information,
//! for example obtained from instrumented MPI topology routines, into
//! our data model", opening the way for new visualization. A
//! [`CartTopology`] maps processes onto coordinates of a Cartesian grid
//! (like `MPI_Cart_create`); the display renders severity heat over the
//! grid, and the algebra carries topologies through integration.

use crate::error::ModelError;
use crate::ids::ProcessId;

/// A Cartesian process topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CartTopology {
    /// Topology name (e.g. the communicator name).
    pub name: String,
    /// Grid extent per dimension (non-empty, all ≥ 1).
    pub dims: Vec<u32>,
    /// Periodicity per dimension (same length as `dims`).
    pub periodic: Vec<bool>,
    /// Coordinates of processes on the grid, in any order; each entry
    /// maps a process to its coordinate vector (same length as `dims`).
    pub coords: Vec<(ProcessId, Vec<u32>)>,
}

impl CartTopology {
    /// Creates an empty topology over a grid.
    pub fn new(name: impl Into<String>, dims: Vec<u32>, periodic: Vec<bool>) -> Self {
        Self {
            name: name.into(),
            dims,
            periodic,
            coords: Vec::new(),
        }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// The coordinate of a process, if placed.
    pub fn coord_of(&self, p: ProcessId) -> Option<&[u32]> {
        self.coords
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, c)| c.as_slice())
    }

    /// The process at a coordinate, if any.
    pub fn process_at(&self, coord: &[u32]) -> Option<ProcessId> {
        self.coords
            .iter()
            .find(|(_, c)| c.as_slice() == coord)
            .map(|(p, _)| *p)
    }

    /// Validates the topology against a process-table size.
    pub fn validate(&self, num_processes: usize) -> Result<(), ModelError> {
        if self.dims.is_empty() || self.dims.contains(&0) {
            return Err(ModelError::BadTopology {
                topology: self.name.clone(),
                reason: "dimensions must be non-empty and positive".into(),
            });
        }
        if self.periodic.len() != self.dims.len() {
            return Err(ModelError::BadTopology {
                topology: self.name.clone(),
                reason: "periodicity vector length must match dimensions".into(),
            });
        }
        let mut seen_proc = std::collections::HashSet::new();
        let mut seen_coord = std::collections::HashSet::new();
        for (p, c) in &self.coords {
            if p.index() >= num_processes {
                return Err(ModelError::BadTopology {
                    topology: self.name.clone(),
                    reason: format!("coordinate refers to nonexistent process {p:?}"),
                });
            }
            if c.len() != self.dims.len() {
                return Err(ModelError::BadTopology {
                    topology: self.name.clone(),
                    reason: format!("coordinate of {p:?} has wrong dimensionality"),
                });
            }
            if c.iter().zip(&self.dims).any(|(&x, &d)| x >= d) {
                return Err(ModelError::BadTopology {
                    topology: self.name.clone(),
                    reason: format!("coordinate of {p:?} outside the grid"),
                });
            }
            if !seen_proc.insert(*p) {
                return Err(ModelError::BadTopology {
                    topology: self.name.clone(),
                    reason: format!("process {p:?} placed twice"),
                });
            }
            if !seen_coord.insert(c.clone()) {
                return Err(ModelError::BadTopology {
                    topology: self.name.clone(),
                    reason: format!("coordinate {c:?} occupied twice"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2x2() -> CartTopology {
        let mut t = CartTopology::new("grid", vec![2, 2], vec![false, false]);
        for (i, (x, y)) in [(0, 0), (1, 0), (0, 1), (1, 1)].iter().enumerate() {
            t.coords.push((ProcessId::new(i as u32), vec![*x, *y]));
        }
        t
    }

    #[test]
    fn valid_grid() {
        let t = grid2x2();
        t.validate(4).unwrap();
        assert_eq!(t.ndims(), 2);
        assert_eq!(t.coord_of(ProcessId::new(2)), Some(&[0u32, 1][..]));
        assert_eq!(t.process_at(&[1, 1]), Some(ProcessId::new(3)));
        assert_eq!(t.process_at(&[9, 9]), None);
    }

    #[test]
    fn rejects_bad_shapes() {
        let t = CartTopology::new("e", vec![], vec![]);
        assert!(t.validate(1).is_err());
        let t = CartTopology::new("z", vec![0], vec![false]);
        assert!(t.validate(1).is_err());
        let t = CartTopology::new("p", vec![2], vec![]);
        assert!(t.validate(1).is_err());
    }

    #[test]
    fn rejects_bad_coords() {
        let mut t = grid2x2();
        t.coords.push((ProcessId::new(9), vec![0, 0]));
        assert!(t.validate(4).is_err()); // unknown process

        let mut t = grid2x2();
        t.coords[0].1 = vec![5, 0];
        assert!(t.validate(4).is_err()); // outside grid

        let mut t = grid2x2();
        t.coords[1].1 = vec![0]; // wrong dimensionality
        assert!(t.validate(4).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        let mut t = grid2x2();
        t.coords.push((ProcessId::new(0), vec![1, 1]));
        assert!(t.validate(4).is_err()); // process twice (and coord twice)

        let mut t = grid2x2();
        t.coords[3] = (ProcessId::new(3), vec![0, 0]);
        assert!(t.validate(4).is_err()); // coordinate twice
    }

    #[test]
    fn partial_placement_is_allowed() {
        let mut t = CartTopology::new("partial", vec![4, 4], vec![true, false]);
        t.coords.push((ProcessId::new(0), vec![3, 3]));
        t.validate(1).unwrap();
    }
}
