//! # cube-model — the CUBE performance-data model
//!
//! This crate implements the data model of the CUBE performance algebra
//! described in *"An Algebra for Cross-Experiment Performance Analysis"*
//! (Song, Wolf, Bhatia, Dongarra, Moore — ICPP 2004).
//!
//! A CUBE [`Experiment`] consists of **metadata** and **data**:
//!
//! * The metadata spans three hierarchical dimensions:
//!   * the **metric dimension** — a forest of performance metrics where a
//!     parent metric *includes* each child metric (e.g. execution time
//!     includes communication time, cache accesses include cache misses);
//!   * the **program dimension** — modules, source regions, call sites and
//!     a call-tree forest of call paths;
//!   * the **system dimension** — a forest with the fixed levels machine,
//!     node, process, and thread.
//! * The data is the **severity function** mapping each tuple
//!   `(metric, call path, thread)` onto the accumulated value of the
//!   metric measured while the thread executed in that call path.
//!
//! ## Storage convention
//!
//! Stored severity values are
//!
//! * **call-exclusive**: the value at a call-tree node covers only time
//!   (or events) spent in that exact call path, not in its callees, and
//! * **metric-inclusive**: a parent metric's stored value already contains
//!   the contributions of its child metrics, exactly as the paper defines
//!   the severity function ("the accumulated value of the metric *m*
//!   measured while the thread *t* was executing in call path *c*").
//!
//! All derived views (inclusive call-tree values, exclusive metric values,
//! per-system aggregates) are computed by [`aggregate`].
//!
//! Severities may be negative: a difference between two experiments is
//! itself a valid experiment (the algebra's closure property).
//!
//! ## Quick start
//!
//! ```
//! use cube_model::{ExperimentBuilder, Unit, RegionKind};
//!
//! let mut b = ExperimentBuilder::new("demo");
//! let time = b.def_metric("time", Unit::Seconds, "total wall time", None);
//! let module = b.def_module("main.rs", "/src");
//! let main_r = b.def_region("main", module, RegionKind::Function, 1, 100);
//! let cs = b.def_call_site("main.rs", 1, main_r);
//! let root = b.def_call_node(cs, None);
//! let mach = b.def_machine("laptop");
//! let node = b.def_node("node0", mach);
//! let proc0 = b.def_process("rank 0", 0, node);
//! let t0 = b.def_thread("thread 0", 0, proc0);
//! b.set_severity(time, root, t0, 1.5);
//! let exp = b.build().expect("valid experiment");
//! assert_eq!(exp.severity().get(time, root, t0), 1.5);
//! ```

pub mod aggregate;
pub mod builder;
pub mod error;
pub mod experiment;
pub mod ids;
pub mod lint;
pub mod metadata;
pub mod metric;
pub mod program;
pub mod provenance;
pub mod severity;
pub mod system;
pub mod topology;

pub use builder::ExperimentBuilder;
pub use error::ModelError;
pub use experiment::Experiment;
pub use ids::{
    CallNodeId, CallSiteId, MachineId, MetricId, ModuleId, NodeId, ProcessId, RegionId, ThreadId,
};
pub use lint::{lint, Diagnostic, Level, Location, Report, RuleCode};
pub use metadata::Metadata;
pub use metric::{Metric, Unit};
pub use program::{CallNode, CallSite, Module, Region, RegionKind};
pub use provenance::Provenance;
pub use severity::Severity;
pub use system::{Machine, Process, SystemNode, Thread};
pub use topology::CartTopology;
