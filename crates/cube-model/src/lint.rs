//! Static diagnostics for experiments: the `cube lint` rule engine.
//!
//! [`Experiment::validate`](crate::Experiment::validate) answers the
//! yes/no question "is this a valid instance of the data model?" and
//! stops at the first violation. This module answers the analyst's
//! question instead: *everything* that is wrong or suspicious about an
//! experiment, each finding tagged with a stable [`RuleCode`], a
//! [`Level`], and a precise [`Location`].
//!
//! ## Rule codes
//!
//! * `E0xx` — structural **errors**: violations of the data model.
//!   The E0xx rules are exactly the checks of
//!   [`Experiment::validate`]: an experiment validates if and only if
//!   [`lint`] reports no error (see [`Report::has_errors`]). That
//!   alignment is what lets `cube-algebra` enforce the paper's closure
//!   theorem with a lint in debug builds.
//! * `E1xx` — **parse-level errors**. Never produced by [`lint`]
//!   itself; the `cube-xml` crate maps I/O and parse failures onto
//!   these codes so file diagnostics and model diagnostics share one
//!   report type.
//! * `W0xx` — semantic **warnings**: constructs that are legal but
//!   almost certainly wrong (an unreferenced region, a gap in thread
//!   numbers, a negative severity in an *original* experiment).
//!
//! Orphan subtrees need no rule of their own: with dense identifiers a
//! node is unreachable from the roots exactly when its parent chain
//! dangles (`E001`/`E008`) or cycles (`E002`/`E009`). Duplicate
//! identifiers are likewise unrepresentable in [`Metadata`]'s dense
//! tables; a file that writes them is rejected at parse level (`E103`).
//!
//! Value-scanning rules cap their output at [`MAX_PER_RULE`]
//! diagnostics per rule and append one summary diagnostic with the
//! suppressed count, so linting a gigabyte of NaN stays readable.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

use crate::error::ModelError;
use crate::experiment::Experiment;
use crate::ids::{
    CallNodeId, CallSiteId, MachineId, MetricId, ModuleId, NodeId, ProcessId, RegionId, ThreadId,
};
use crate::metadata::Metadata;
use crate::provenance::Provenance;
use crate::severity::Severity;

/// Maximum diagnostics reported per rule before truncation.
pub const MAX_PER_RULE: usize = 8;

/// Severity level of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The experiment violates the data model.
    Error,
    /// Legal but suspicious; tools should still accept the experiment.
    Warning,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Error => "error",
            Self::Warning => "warning",
        })
    }
}

/// Stable identifier of one lint rule.
///
/// Codes are append-only: a code, once published, keeps its meaning
/// forever (CI configurations reference them textually).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleCode {
    // -- E0xx: data-model violations (mirrors Experiment::validate) --
    /// A metric's parent identifier does not exist.
    DanglingMetricParent,
    /// The metric parent chain contains a cycle.
    MetricCycle,
    /// A metric's unit differs from its tree root's unit.
    MixedUnitsInMetricTree,
    /// A region's module does not exist.
    DanglingRegionModule,
    /// A region's begin line is after its end line.
    InvertedRegionLines,
    /// A call site's callee region does not exist.
    DanglingCallSiteCallee,
    /// A call-tree node's call site does not exist.
    DanglingCallNodeSite,
    /// A call-tree node's parent does not exist.
    DanglingCallNodeParent,
    /// The call-tree parent chain contains a cycle.
    CallNodeCycle,
    /// A system node's machine does not exist.
    DanglingNodeMachine,
    /// A process's system node does not exist.
    DanglingProcessNode,
    /// A thread's process does not exist.
    DanglingThreadProcess,
    /// Two processes share one application-level rank.
    DuplicateRank,
    /// Two threads of one process share one thread number.
    DuplicateThreadNumber,
    /// Severity store shape disagrees with the metadata tables.
    SeverityShapeMismatch,
    /// A severity value is NaN.
    SeverityNan,
    /// The experiment defines no thread.
    NoThreads,
    /// A Cartesian topology violates its structural constraints.
    BadTopology,

    // -- E1xx: parse-level errors (produced by cube-xml) --
    /// The file could not be read (I/O failure).
    Io,
    /// The lexer met a character it cannot interpret.
    XmlSyntax,
    /// XML well-formedness violation (mismatched tags, two roots, ...).
    XmlMalformed,
    /// Valid XML, but not a valid CUBE document (missing sections,
    /// missing attributes, non-dense identifiers).
    FormatViolation,
    /// An attribute or severity value failed to parse or referenced an
    /// out-of-range identifier.
    BadValue,

    // -- E2xx: resource limits and integrity (produced by cube-xml) --
    /// The document exceeds the configured maximum input size.
    InputTooLarge,
    /// Element nesting exceeds the configured maximum depth.
    NestingTooDeep,
    /// A metadata dimension defines more entities than the configured
    /// maximum.
    TooManyEntities,
    /// A severity row's text exceeds the configured maximum length.
    RowTooLong,
    /// The document's checksum footer does not match its bytes.
    ChecksumMismatch,

    // -- W0xx: semantic warnings --
    /// Two sibling metrics share name and unit; metadata integration
    /// matches metrics by `(name, unit)` under their parent, so such
    /// siblings can never both survive a merge as distinct metrics.
    DuplicateSiblingMetric,
    /// A region is not the callee of any call site.
    UnreferencedRegion,
    /// A module contains no region.
    EmptyModule,
    /// A severity value is infinite.
    InfiniteSeverity,
    /// A severity value is negative although the experiment's
    /// provenance is *original*: measurement tools accumulate
    /// non-negative quantities, only derived (difference) experiments
    /// may legitimately go negative.
    NegativeOriginalSeverity,
    /// A process's thread numbers are not contiguous from 0.
    ThreadNumberGap,
    /// Process ranks are not contiguous from 0.
    RankGap,
    /// A machine without nodes, a node without processes, or a process
    /// without threads.
    EmptySystemBranch,
    /// A topology declares a grid but places no process on it.
    EmptyTopology,
    /// A call site is not used by any call-tree node.
    UnreferencedCallSite,
}

impl RuleCode {
    /// The stable textual code, e.g. `"E016"` or `"W004"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::DanglingMetricParent => "E001",
            Self::MetricCycle => "E002",
            Self::MixedUnitsInMetricTree => "E003",
            Self::DanglingRegionModule => "E004",
            Self::InvertedRegionLines => "E005",
            Self::DanglingCallSiteCallee => "E006",
            Self::DanglingCallNodeSite => "E007",
            Self::DanglingCallNodeParent => "E008",
            Self::CallNodeCycle => "E009",
            Self::DanglingNodeMachine => "E010",
            Self::DanglingProcessNode => "E011",
            Self::DanglingThreadProcess => "E012",
            Self::DuplicateRank => "E013",
            Self::DuplicateThreadNumber => "E014",
            Self::SeverityShapeMismatch => "E015",
            Self::SeverityNan => "E016",
            Self::NoThreads => "E017",
            Self::BadTopology => "E018",
            Self::Io => "E100",
            Self::XmlSyntax => "E101",
            Self::XmlMalformed => "E102",
            Self::FormatViolation => "E103",
            Self::BadValue => "E104",
            Self::InputTooLarge => "E200",
            Self::NestingTooDeep => "E201",
            Self::TooManyEntities => "E202",
            Self::RowTooLong => "E203",
            Self::ChecksumMismatch => "E204",
            Self::DuplicateSiblingMetric => "W001",
            Self::UnreferencedRegion => "W002",
            Self::EmptyModule => "W003",
            Self::InfiniteSeverity => "W004",
            Self::NegativeOriginalSeverity => "W005",
            Self::ThreadNumberGap => "W006",
            Self::RankGap => "W007",
            Self::EmptySystemBranch => "W008",
            Self::EmptyTopology => "W009",
            Self::UnreferencedCallSite => "W010",
        }
    }

    /// Parses a textual code produced by [`RuleCode::as_str`].
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// The severity level of this rule.
    pub fn level(self) -> Level {
        if self.as_str().starts_with('E') {
            Level::Error
        } else {
            Level::Warning
        }
    }

    /// One-line description of what the rule checks.
    pub fn description(self) -> &'static str {
        match self {
            Self::DanglingMetricParent => "metric refers to a nonexistent parent",
            Self::MetricCycle => "metric parent chain contains a cycle",
            Self::MixedUnitsInMetricTree => "metric unit differs from its tree root's unit",
            Self::DanglingRegionModule => "region refers to a nonexistent module",
            Self::InvertedRegionLines => "region begin line is after its end line",
            Self::DanglingCallSiteCallee => "call site refers to a nonexistent callee region",
            Self::DanglingCallNodeSite => "call-tree node refers to a nonexistent call site",
            Self::DanglingCallNodeParent => "call-tree node refers to a nonexistent parent",
            Self::CallNodeCycle => "call-tree parent chain contains a cycle",
            Self::DanglingNodeMachine => "system node refers to a nonexistent machine",
            Self::DanglingProcessNode => "process refers to a nonexistent system node",
            Self::DanglingThreadProcess => "thread refers to a nonexistent process",
            Self::DuplicateRank => "two processes share one application-level rank",
            Self::DuplicateThreadNumber => "two threads of one process share one thread number",
            Self::SeverityShapeMismatch => "severity store shape disagrees with the metadata",
            Self::SeverityNan => "severity value is NaN",
            Self::NoThreads => "experiment defines no thread",
            Self::BadTopology => "Cartesian topology violates its structural constraints",
            Self::Io => "file could not be read",
            Self::XmlSyntax => "XML syntax error",
            Self::XmlMalformed => "XML well-formedness violation",
            Self::FormatViolation => "valid XML but not a valid CUBE document",
            Self::BadValue => "attribute or severity value failed to parse or is out of range",
            Self::InputTooLarge => "document exceeds the maximum input size",
            Self::NestingTooDeep => "element nesting exceeds the maximum depth",
            Self::TooManyEntities => "a metadata dimension defines too many entities",
            Self::RowTooLong => "severity row text exceeds the maximum length",
            Self::ChecksumMismatch => "checksum footer does not match the document bytes",
            Self::DuplicateSiblingMetric => "two sibling metrics share name and unit",
            Self::UnreferencedRegion => "region is not the callee of any call site",
            Self::EmptyModule => "module contains no region",
            Self::InfiniteSeverity => "severity value is infinite",
            Self::NegativeOriginalSeverity => "negative severity in an original experiment",
            Self::ThreadNumberGap => "thread numbers of a process are not contiguous from 0",
            Self::RankGap => "process ranks are not contiguous from 0",
            Self::EmptySystemBranch => "machine, node, or process without children",
            Self::EmptyTopology => "topology declares a grid but places no process",
            Self::UnreferencedCallSite => "call site is not used by any call-tree node",
        }
    }

    /// Every rule code, in code order (for documentation and tests).
    pub const ALL: [RuleCode; 38] = [
        Self::DanglingMetricParent,
        Self::MetricCycle,
        Self::MixedUnitsInMetricTree,
        Self::DanglingRegionModule,
        Self::InvertedRegionLines,
        Self::DanglingCallSiteCallee,
        Self::DanglingCallNodeSite,
        Self::DanglingCallNodeParent,
        Self::CallNodeCycle,
        Self::DanglingNodeMachine,
        Self::DanglingProcessNode,
        Self::DanglingThreadProcess,
        Self::DuplicateRank,
        Self::DuplicateThreadNumber,
        Self::SeverityShapeMismatch,
        Self::SeverityNan,
        Self::NoThreads,
        Self::BadTopology,
        Self::Io,
        Self::XmlSyntax,
        Self::XmlMalformed,
        Self::FormatViolation,
        Self::BadValue,
        Self::InputTooLarge,
        Self::NestingTooDeep,
        Self::TooManyEntities,
        Self::RowTooLong,
        Self::ChecksumMismatch,
        Self::DuplicateSiblingMetric,
        Self::UnreferencedRegion,
        Self::EmptyModule,
        Self::InfiniteSeverity,
        Self::NegativeOriginalSeverity,
        Self::ThreadNumberGap,
        Self::RankGap,
        Self::EmptySystemBranch,
        Self::EmptyTopology,
        Self::UnreferencedCallSite,
    ];
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points.
///
/// Model-level rules use the entity variants; `cube-xml` uses
/// [`Location::Source`] with the streaming lexer's line/column so parse
/// errors and lint findings share one location type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Location {
    /// The experiment as a whole.
    Experiment,
    /// A position in the source document (1-based line and column).
    Source { line: u32, column: u32 },
    /// A metric.
    Metric(MetricId),
    /// A module.
    Module(ModuleId),
    /// A region.
    Region(RegionId),
    /// A call site.
    CallSite(CallSiteId),
    /// A call-tree node.
    CallNode(CallNodeId),
    /// A machine.
    Machine(MachineId),
    /// A system node.
    Node(NodeId),
    /// A process.
    Process(ProcessId),
    /// A thread.
    Thread(ThreadId),
    /// One severity tuple.
    Tuple {
        metric: MetricId,
        call_node: CallNodeId,
        thread: ThreadId,
    },
    /// A Cartesian topology, by index in the topology table.
    Topology(usize),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Experiment => f.write_str("experiment"),
            Self::Source { line, column } => write!(f, "{line}:{column}"),
            Self::Metric(id) => write!(f, "metric {id:?}"),
            Self::Module(id) => write!(f, "module {id:?}"),
            Self::Region(id) => write!(f, "region {id:?}"),
            Self::CallSite(id) => write!(f, "call site {id:?}"),
            Self::CallNode(id) => write!(f, "call node {id:?}"),
            Self::Machine(id) => write!(f, "machine {id:?}"),
            Self::Node(id) => write!(f, "node {id:?}"),
            Self::Process(id) => write!(f, "process {id:?}"),
            Self::Thread(id) => write!(f, "thread {id:?}"),
            Self::Tuple {
                metric,
                call_node,
                thread,
            } => write!(f, "severity ({metric:?}, {call_node:?}, {thread:?})"),
            Self::Topology(i) => write!(f, "topology #{i}"),
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: RuleCode,
    /// Where it fired.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(code: RuleCode, location: Location, message: impl Into<String>) -> Self {
        Self {
            code,
            location,
            message: message.into(),
        }
    }

    /// The level of the rule that fired.
    pub fn level(&self) -> Level {
        self.code.level()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}: {}",
            self.level(),
            self.code,
            self.location,
            self.message
        )
    }
}

/// The result of linting one experiment (or one file).
///
/// Errors sort before warnings; within a level, diagnostics keep the
/// deterministic rule-scan order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wraps pre-built diagnostics into a report (errors-first order is
    /// established here).
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by_key(|d| d.level());
        Self { diagnostics }
    }

    /// All diagnostics, errors first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// No findings at all — the experiment is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// At least one error-level finding.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.level() == Level::Error)
    }

    /// Error-level diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.level() == Level::Error)
    }

    /// Warning-level diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.level() == Level::Warning)
    }

    /// Number of error-level diagnostics.
    pub fn num_errors(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-level diagnostics.
    pub fn num_warnings(&self) -> usize {
        self.warnings().count()
    }

    /// The distinct rule codes that fired, in code order.
    pub fn codes(&self) -> Vec<RuleCode> {
        let mut codes: Vec<RuleCode> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort();
        codes.dedup();
        codes
    }

    /// `"2 errors, 1 warning"`-style summary.
    pub fn summary(&self) -> String {
        fn count(n: usize, what: &str) -> String {
            format!("{n} {what}{}", if n == 1 { "" } else { "s" })
        }
        format!(
            "{}, {}",
            count(self.num_errors(), "error"),
            count(self.num_warnings(), "warning")
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(f, "{}", self.summary())
    }
}

/// Collects diagnostics while enforcing the per-rule cap.
struct Collector {
    diagnostics: Vec<Diagnostic>,
    counts: BTreeMap<RuleCode, usize>,
}

impl Collector {
    fn new() -> Self {
        Self {
            diagnostics: Vec::new(),
            counts: BTreeMap::new(),
        }
    }

    fn push(&mut self, code: RuleCode, location: Location, message: impl Into<String>) {
        let n = self.counts.entry(code).or_insert(0);
        *n += 1;
        if *n <= MAX_PER_RULE {
            self.diagnostics
                .push(Diagnostic::new(code, location, message));
        }
    }

    fn finish(mut self) -> Report {
        for (&code, &n) in &self.counts {
            if n > MAX_PER_RULE {
                self.diagnostics.push(Diagnostic::new(
                    code,
                    Location::Experiment,
                    format!("{} further {code} diagnostics suppressed", n - MAX_PER_RULE),
                ));
            }
        }
        Report::from_diagnostics(self.diagnostics)
    }
}

/// Lints an experiment: runs every rule and reports all findings.
pub fn lint(exp: &Experiment) -> Report {
    lint_parts(exp.metadata(), exp.severity(), exp.provenance())
}

/// Lints the parts of a (possibly not yet validated) experiment.
///
/// Unlike [`lint`] this does not require assembling an [`Experiment`]
/// first, so a reader can diagnose structures that
/// [`Experiment::new`](crate::Experiment::new) would reject — and
/// report *all* of their violations, not just the first.
pub fn lint_parts(md: &Metadata, sev: &Severity, prov: &Provenance) -> Report {
    let mut c = Collector::new();
    lint_metric_dimension(md, &mut c);
    lint_program_dimension(md, &mut c);
    lint_system_dimension(md, &mut c);
    lint_topologies(md, &mut c);
    lint_severity(md, sev, prov, &mut c);
    c.finish()
}

/// Walks the parent chain from `start`; returns the root index, or
/// `None` when the chain dangles (reported elsewhere) or cycles.
fn chain_root(
    parent_of: impl Fn(usize) -> Option<usize>,
    len: usize,
    start: usize,
) -> Option<usize> {
    let mut cur = start;
    let mut hops = 0usize;
    loop {
        match parent_of(cur) {
            Some(p) if p < len => {
                cur = p;
                hops += 1;
                if hops > len {
                    return None; // cycle
                }
            }
            Some(_) => return None, // dangling
            None => return Some(cur),
        }
    }
}

fn lint_metric_dimension(md: &Metadata, c: &mut Collector) {
    let metrics = md.metrics();
    let n = metrics.len();
    let parent_of = |i: usize| metrics[i].parent.map(|p| p.index());

    for (i, m) in metrics.iter().enumerate() {
        let id = MetricId::from_index(i);
        if let Some(p) = m.parent {
            if p.index() >= n {
                c.push(
                    RuleCode::DanglingMetricParent,
                    Location::Metric(id),
                    format!("metric '{}' refers to nonexistent parent {p:?}", m.name),
                );
            }
        }
    }
    for (i, m) in metrics.iter().enumerate() {
        let id = MetricId::from_index(i);
        // Dangling chains were reported above; only flag true cycles.
        let dangles = |j: usize| matches!(parent_of(j), Some(p) if p >= n);
        let mut cur = i;
        let mut hops = 0usize;
        let cycles = loop {
            if dangles(cur) {
                break false;
            }
            match parent_of(cur) {
                Some(p) => {
                    cur = p;
                    hops += 1;
                    if hops > n {
                        break true;
                    }
                }
                None => break false,
            }
        };
        if cycles {
            c.push(
                RuleCode::MetricCycle,
                Location::Metric(id),
                format!("metric '{}' participates in a parent cycle", m.name),
            );
        }
    }
    for (i, m) in metrics.iter().enumerate() {
        let id = MetricId::from_index(i);
        if let Some(root) = chain_root(parent_of, n, i) {
            let root_unit = metrics[root].unit;
            if m.unit != root_unit {
                c.push(
                    RuleCode::MixedUnitsInMetricTree,
                    Location::Metric(id),
                    format!(
                        "metric '{}' has unit '{}' but its tree root '{}' has unit '{}'",
                        m.name, m.unit, metrics[root].name, root_unit
                    ),
                );
            }
        }
    }
    // W001: sibling metrics sharing (name, unit) can never both survive
    // metadata integration — the merge would silently fold them.
    let mut seen: HashMap<(Option<u32>, &str, crate::metric::Unit), usize> = HashMap::new();
    for (i, m) in metrics.iter().enumerate() {
        let key = (m.parent.map(|p| p.raw()), m.name.as_str(), m.unit);
        match seen.get(&key) {
            Some(&first) => {
                c.push(
                    RuleCode::DuplicateSiblingMetric,
                    Location::Metric(MetricId::from_index(i)),
                    format!(
                        "metric '{}' duplicates sibling {:?} (same name and unit)",
                        m.name,
                        MetricId::from_index(first)
                    ),
                );
            }
            None => {
                seen.insert(key, i);
            }
        }
    }
}

fn lint_program_dimension(md: &Metadata, c: &mut Collector) {
    let modules = md.modules();
    let regions = md.regions();
    let csites = md.call_sites();
    let cnodes = md.call_nodes();

    let mut module_used = vec![false; modules.len()];
    for (i, r) in regions.iter().enumerate() {
        let id = RegionId::from_index(i);
        if r.module.index() >= modules.len() {
            c.push(
                RuleCode::DanglingRegionModule,
                Location::Region(id),
                format!(
                    "region '{}' refers to nonexistent module {:?}",
                    r.name, r.module
                ),
            );
        } else {
            module_used[r.module.index()] = true;
        }
        if r.begin_line > r.end_line {
            c.push(
                RuleCode::InvertedRegionLines,
                Location::Region(id),
                format!(
                    "region '{}' begins at line {} but ends at line {}",
                    r.name, r.begin_line, r.end_line
                ),
            );
        }
    }
    for (i, used) in module_used.iter().enumerate() {
        if !used {
            c.push(
                RuleCode::EmptyModule,
                Location::Module(ModuleId::from_index(i)),
                format!("module '{}' contains no region", modules[i].name),
            );
        }
    }

    let mut region_used = vec![false; regions.len()];
    for (i, cs) in csites.iter().enumerate() {
        if cs.callee.index() >= regions.len() {
            c.push(
                RuleCode::DanglingCallSiteCallee,
                Location::CallSite(CallSiteId::from_index(i)),
                format!(
                    "call site at {}:{} refers to nonexistent callee {:?}",
                    cs.file, cs.line, cs.callee
                ),
            );
        } else {
            region_used[cs.callee.index()] = true;
        }
    }
    for (i, used) in region_used.iter().enumerate() {
        if !used {
            c.push(
                RuleCode::UnreferencedRegion,
                Location::Region(RegionId::from_index(i)),
                format!(
                    "region '{}' is not the callee of any call site",
                    regions[i].name
                ),
            );
        }
    }

    let n = cnodes.len();
    let parent_of = |i: usize| cnodes[i].parent.map(|p| p.index());
    let mut csite_used = vec![false; csites.len()];
    for (i, cn) in cnodes.iter().enumerate() {
        let id = CallNodeId::from_index(i);
        if cn.call_site.index() >= csites.len() {
            c.push(
                RuleCode::DanglingCallNodeSite,
                Location::CallNode(id),
                format!(
                    "call node refers to nonexistent call site {:?}",
                    cn.call_site
                ),
            );
        } else {
            csite_used[cn.call_site.index()] = true;
        }
        if let Some(p) = cn.parent {
            if p.index() >= n {
                c.push(
                    RuleCode::DanglingCallNodeParent,
                    Location::CallNode(id),
                    format!("call node refers to nonexistent parent {p:?}"),
                );
            }
        }
    }
    for i in 0..n {
        let dangles = |j: usize| matches!(parent_of(j), Some(p) if p >= n);
        let mut cur = i;
        let mut hops = 0usize;
        let cycles = loop {
            if dangles(cur) {
                break false;
            }
            match parent_of(cur) {
                Some(p) => {
                    cur = p;
                    hops += 1;
                    if hops > n {
                        break true;
                    }
                }
                None => break false,
            }
        };
        if cycles {
            c.push(
                RuleCode::CallNodeCycle,
                Location::CallNode(CallNodeId::from_index(i)),
                "call node participates in a parent cycle".to_string(),
            );
        }
    }
    for (i, used) in csite_used.iter().enumerate() {
        if !used {
            c.push(
                RuleCode::UnreferencedCallSite,
                Location::CallSite(CallSiteId::from_index(i)),
                format!(
                    "call site at {}:{} is not used by any call-tree node",
                    csites[i].file, csites[i].line
                ),
            );
        }
    }
}

fn lint_system_dimension(md: &Metadata, c: &mut Collector) {
    let machines = md.machines();
    let nodes = md.nodes();
    let processes = md.processes();
    let threads = md.threads();

    for (i, n) in nodes.iter().enumerate() {
        if n.machine.index() >= machines.len() {
            c.push(
                RuleCode::DanglingNodeMachine,
                Location::Node(NodeId::from_index(i)),
                format!(
                    "node '{}' refers to nonexistent machine {:?}",
                    n.name, n.machine
                ),
            );
        }
    }
    let mut first_rank: HashMap<i32, usize> = HashMap::new();
    for (i, p) in processes.iter().enumerate() {
        let id = ProcessId::from_index(i);
        if p.node.index() >= nodes.len() {
            c.push(
                RuleCode::DanglingProcessNode,
                Location::Process(id),
                format!(
                    "process '{}' refers to nonexistent node {:?}",
                    p.name, p.node
                ),
            );
        }
        match first_rank.get(&p.rank) {
            Some(&first) => {
                c.push(
                    RuleCode::DuplicateRank,
                    Location::Process(id),
                    format!(
                        "process '{}' shares rank {} with {:?}",
                        p.name,
                        p.rank,
                        ProcessId::from_index(first)
                    ),
                );
            }
            None => {
                first_rank.insert(p.rank, i);
            }
        }
    }
    let mut first_number: HashMap<(u32, u32), usize> = HashMap::new();
    for (i, t) in threads.iter().enumerate() {
        let id = ThreadId::from_index(i);
        if t.process.index() >= processes.len() {
            c.push(
                RuleCode::DanglingThreadProcess,
                Location::Thread(id),
                format!(
                    "thread '{}' refers to nonexistent process {:?}",
                    t.name, t.process
                ),
            );
            continue;
        }
        match first_number.get(&(t.process.raw(), t.number)) {
            Some(&first) => {
                c.push(
                    RuleCode::DuplicateThreadNumber,
                    Location::Thread(id),
                    format!(
                        "thread '{}' shares number {} of {:?} with {:?}",
                        t.name,
                        t.number,
                        t.process,
                        ThreadId::from_index(first)
                    ),
                );
            }
            None => {
                first_number.insert((t.process.raw(), t.number), i);
            }
        }
    }
    if threads.is_empty() {
        c.push(
            RuleCode::NoThreads,
            Location::Experiment,
            "experiment defines no thread; the thread level is mandatory".to_string(),
        );
    }

    // W006: per-process thread numbers must be 0..k.
    for (i, _) in processes.iter().enumerate() {
        let id = ProcessId::from_index(i);
        let mut numbers: Vec<u32> = md
            .threads_of_process(id)
            .iter()
            .map(|&t| threads[t.index()].number)
            .collect();
        numbers.sort_unstable();
        numbers.dedup();
        if !numbers.is_empty() && numbers != (0..numbers.len() as u32).collect::<Vec<_>>() {
            c.push(
                RuleCode::ThreadNumberGap,
                Location::Process(id),
                format!(
                    "thread numbers of process '{}' are {:?}, expected 0..{}",
                    processes[i].name,
                    numbers,
                    numbers.len()
                ),
            );
        }
    }
    // W007: ranks must be 0..n.
    let mut ranks: Vec<i32> = processes.iter().map(|p| p.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    if !ranks.is_empty() && ranks != (0..ranks.len() as i32).collect::<Vec<_>>() {
        c.push(
            RuleCode::RankGap,
            Location::Experiment,
            format!("process ranks are {ranks:?}, expected 0..{}", ranks.len()),
        );
    }
    // W008: empty branches.
    for (i, m) in machines.iter().enumerate() {
        let id = MachineId::from_index(i);
        if md.nodes_of_machine(id).is_empty() {
            c.push(
                RuleCode::EmptySystemBranch,
                Location::Machine(id),
                format!("machine '{}' has no nodes", m.name),
            );
        }
    }
    for (i, n) in nodes.iter().enumerate() {
        let id = NodeId::from_index(i);
        if md.processes_of_node(id).is_empty() {
            c.push(
                RuleCode::EmptySystemBranch,
                Location::Node(id),
                format!("node '{}' has no processes", n.name),
            );
        }
    }
    for (i, p) in processes.iter().enumerate() {
        let id = ProcessId::from_index(i);
        if md.threads_of_process(id).is_empty() {
            c.push(
                RuleCode::EmptySystemBranch,
                Location::Process(id),
                format!("process '{}' has no threads", p.name),
            );
        }
    }
}

fn lint_topologies(md: &Metadata, c: &mut Collector) {
    for (i, t) in md.topologies().iter().enumerate() {
        if let Err(e) = t.validate(md.processes().len()) {
            c.push(RuleCode::BadTopology, Location::Topology(i), e.to_string());
        }
        if t.coords.is_empty() && !md.processes().is_empty() {
            c.push(
                RuleCode::EmptyTopology,
                Location::Topology(i),
                format!(
                    "topology '{}' declares a grid but places no process",
                    t.name
                ),
            );
        }
    }
}

fn lint_severity(md: &Metadata, sev: &Severity, prov: &Provenance, c: &mut Collector) {
    let expected = md.shape();
    let actual = sev.shape();
    if expected != actual {
        c.push(
            RuleCode::SeverityShapeMismatch,
            Location::Experiment,
            format!(
                "severity store shaped {actual:?} but metadata requires {expected:?} \
                 (metrics x call nodes x threads); value rules skipped"
            ),
        );
        // Flat indices cannot be mapped onto tuples; skip value rules.
        return;
    }
    let (_, nc, nt) = actual;
    // Only unmodified measurements promise non-negative severities;
    // derived experiments (differences) and recovered ones (whose
    // source may have been derived) are exempt.
    let original = prov.is_original();
    for (i, &v) in sev.values().iter().enumerate() {
        if v.is_finite() && !(original && v < 0.0) {
            continue;
        }
        let tuple = Location::Tuple {
            metric: MetricId::from_index(i / (nt * nc)),
            call_node: CallNodeId::from_index((i / nt) % nc),
            thread: ThreadId::from_index(i % nt),
        };
        if v.is_nan() {
            c.push(
                RuleCode::SeverityNan,
                tuple,
                "severity value is NaN".to_string(),
            );
        } else if v.is_infinite() {
            c.push(
                RuleCode::InfiniteSeverity,
                tuple,
                format!("severity value is {v}"),
            );
        } else {
            c.push(
                RuleCode::NegativeOriginalSeverity,
                tuple,
                format!(
                    "severity value {v} is negative although the experiment is original \
                     (provenance '{prov}')"
                ),
            );
        }
    }
}

/// The rule code corresponding to a [`ModelError`].
///
/// This is the bridge between the first-violation [`Experiment::validate`]
/// API and the exhaustive lint: both report the same constraint set.
pub fn code_of_model_error(e: &ModelError) -> RuleCode {
    match e {
        ModelError::DanglingMetricParent { .. } => RuleCode::DanglingMetricParent,
        ModelError::MixedUnitsInMetricTree { .. } => RuleCode::MixedUnitsInMetricTree,
        ModelError::MetricCycle { .. } => RuleCode::MetricCycle,
        ModelError::DanglingRegionModule { .. } => RuleCode::DanglingRegionModule,
        ModelError::InvertedRegionLines { .. } => RuleCode::InvertedRegionLines,
        ModelError::DanglingCallSiteCallee { .. } => RuleCode::DanglingCallSiteCallee,
        ModelError::DanglingCallNodeSite { .. } => RuleCode::DanglingCallNodeSite,
        ModelError::DanglingCallNodeParent { .. } => RuleCode::DanglingCallNodeParent,
        ModelError::CallNodeCycle { .. } => RuleCode::CallNodeCycle,
        ModelError::DanglingNodeMachine { .. } => RuleCode::DanglingNodeMachine,
        ModelError::DanglingProcessNode { .. } => RuleCode::DanglingProcessNode,
        ModelError::DanglingThreadProcess { .. } => RuleCode::DanglingThreadProcess,
        ModelError::DuplicateRank { .. } => RuleCode::DuplicateRank,
        ModelError::DuplicateThreadNumber { .. } => RuleCode::DuplicateThreadNumber,
        ModelError::SeverityShapeMismatch { .. } | ModelError::SeverityLengthMismatch { .. } => {
            RuleCode::SeverityShapeMismatch
        }
        ModelError::NanSeverity { .. } => RuleCode::SeverityNan,
        ModelError::NoThreads => RuleCode::NoThreads,
        ModelError::BadTopology { .. } => RuleCode::BadTopology,
    }
}

/// Converts a [`ModelError`] into a single [`Diagnostic`] with the best
/// available location.
pub fn diagnostic_of_model_error(e: &ModelError) -> Diagnostic {
    let location = match e {
        ModelError::DanglingMetricParent { metric }
        | ModelError::MixedUnitsInMetricTree { metric, .. }
        | ModelError::MetricCycle { metric } => Location::Metric(*metric),
        ModelError::DanglingRegionModule { region }
        | ModelError::InvertedRegionLines { region } => Location::Region(*region),
        ModelError::DanglingCallSiteCallee { call_site } => Location::CallSite(*call_site),
        ModelError::DanglingCallNodeSite { call_node }
        | ModelError::DanglingCallNodeParent { call_node }
        | ModelError::CallNodeCycle { call_node } => Location::CallNode(*call_node),
        ModelError::DanglingNodeMachine { node } => Location::Node(*node),
        ModelError::DanglingProcessNode { process }
        | ModelError::DuplicateThreadNumber { process, .. } => Location::Process(*process),
        ModelError::DanglingThreadProcess { thread } => Location::Thread(*thread),
        ModelError::NanSeverity {
            metric,
            call_node,
            thread,
        } => Location::Tuple {
            metric: *metric,
            call_node: *call_node,
            thread: *thread,
        },
        ModelError::DuplicateRank { .. }
        | ModelError::SeverityShapeMismatch { .. }
        | ModelError::SeverityLengthMismatch { .. }
        | ModelError::NoThreads
        | ModelError::BadTopology { .. } => Location::Experiment,
    };
    Diagnostic::new(code_of_model_error(e), location, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ExperimentBuilder;
    use crate::metric::{Metric, Unit};
    use crate::program::{CallNode, CallSite, Module, Region, RegionKind};
    use crate::system::{Machine, Process, SystemNode, Thread};
    use crate::topology::CartTopology;

    fn build_clean() -> Experiment {
        let mut b = ExperimentBuilder::new("clean");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a.c", "/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 9);
        let cs = b.def_call_site("a.c", 1, main_r);
        let root = b.def_call_node(cs, None);
        let mach = b.def_machine("mach");
        let node = b.def_node("n0", mach);
        let p = b.def_process("p0", 0, node);
        let t = b.def_thread("t0", 0, p);
        b.set_severity(time, root, t, 2.5);
        b.build().unwrap()
    }

    /// Metadata like `build_clean`'s but assembled raw, for mutation.
    fn clean_metadata() -> Metadata {
        build_clean().metadata().clone()
    }

    #[test]
    fn clean_experiment_is_clean() {
        let r = lint(&build_clean());
        assert!(r.is_clean(), "unexpected diagnostics: {r}");
        assert_eq!(r.summary(), "0 errors, 0 warnings");
    }

    #[test]
    fn lint_errors_iff_validate_rejects() {
        // The E0xx rule set and Experiment::validate must agree.
        let cases: Vec<Experiment> = vec![
            build_clean(),
            {
                let mut e = build_clean();
                e.severity_mut().values_mut()[0] = f64::NAN;
                e
            },
            Experiment::new_unchecked(
                clean_metadata(),
                Severity::zeros(2, 1, 1),
                Provenance::default(),
            ),
            Experiment::new_unchecked(
                Metadata::new(),
                Severity::zeros(0, 0, 0),
                Provenance::default(),
            ),
        ];
        for e in &cases {
            assert_eq!(
                e.validate().is_ok(),
                !lint(e).has_errors(),
                "validate/lint disagree: {:?} vs {}",
                e.validate(),
                lint(e)
            );
        }
    }

    #[test]
    fn validate_error_code_appears_in_lint() {
        let mut e = build_clean();
        e.severity_mut().values_mut()[0] = f64::NAN;
        let err = e.validate().unwrap_err();
        let report = lint(&e);
        assert!(report.codes().contains(&code_of_model_error(&err)));
        let d = diagnostic_of_model_error(&err);
        assert_eq!(d.code, RuleCode::SeverityNan);
        assert!(matches!(d.location, Location::Tuple { .. }));
    }

    // ---- codes unreachable from files still fire on raw metadata ----

    #[test]
    fn dangling_metric_parent_and_unit_mix() {
        let mut md = clean_metadata();
        md.add_metric(Metric::child("x", Unit::Seconds, "", MetricId::new(99)));
        md.add_metric(Metric::child("b", Unit::Bytes, "", MetricId::new(0)));
        let sev = Severity::zeros(md.shape().0, md.shape().1, md.shape().2);
        let r = lint_parts(&md, &sev, &Provenance::default());
        let codes = r.codes();
        assert!(codes.contains(&RuleCode::DanglingMetricParent), "{r}");
        assert!(codes.contains(&RuleCode::MixedUnitsInMetricTree), "{r}");
        // The dangling chain must not also be reported as a cycle.
        assert!(!codes.contains(&RuleCode::MetricCycle), "{r}");
    }

    #[test]
    fn lint_reports_all_violations_not_just_first() {
        let mut md = clean_metadata();
        md.add_metric(Metric::child("x", Unit::Seconds, "", MetricId::new(99)));
        md.add_region(Region {
            name: "inv".into(),
            module: ModuleId::new(0),
            kind: RegionKind::Function,
            begin_line: 9,
            end_line: 1,
        });
        let sev = Severity::zeros(md.shape().0, md.shape().1, md.shape().2);
        let r = lint_parts(&md, &sev, &Provenance::default());
        assert!(r.num_errors() >= 2, "{r}");
    }

    #[test]
    fn call_tree_rules_fire() {
        let mut md = clean_metadata();
        md.add_call_node(CallNode {
            call_site: CallSiteId::new(42),
            parent: Some(CallNodeId::new(42)),
        });
        let sev = Severity::zeros(md.shape().0, md.shape().1, md.shape().2);
        let r = lint_parts(&md, &sev, &Provenance::default());
        let codes = r.codes();
        assert!(codes.contains(&RuleCode::DanglingCallNodeSite), "{r}");
        assert!(codes.contains(&RuleCode::DanglingCallNodeParent), "{r}");
        assert!(!codes.contains(&RuleCode::CallNodeCycle), "{r}");
    }

    #[test]
    fn system_dangling_rules_fire() {
        let mut md = Metadata::new();
        md.add_metric(Metric::root("time", Unit::Seconds, ""));
        let m = md.add_module(Module::new("a", "a"));
        let r0 = md.add_region(Region {
            name: "main".into(),
            module: m,
            kind: RegionKind::Function,
            begin_line: 1,
            end_line: 2,
        });
        let cs = md.add_call_site(CallSite {
            file: "a".into(),
            line: 1,
            callee: r0,
        });
        md.add_call_node(CallNode {
            call_site: cs,
            parent: None,
        });
        md.add_node(SystemNode::new("n", MachineId::new(7)));
        md.add_process(Process::new("p", 0, NodeId::new(9)));
        md.add_thread(Thread::new("t", 0, ProcessId::new(5)));
        let sev = Severity::zeros(md.shape().0, md.shape().1, md.shape().2);
        let r = lint_parts(&md, &sev, &Provenance::default());
        let codes = r.codes();
        assert!(codes.contains(&RuleCode::DanglingNodeMachine), "{r}");
        assert!(codes.contains(&RuleCode::DanglingProcessNode), "{r}");
        assert!(codes.contains(&RuleCode::DanglingThreadProcess), "{r}");
    }

    #[test]
    fn duplicate_rank_and_thread_number() {
        let mut md = clean_metadata();
        let p = md.add_process(Process::new("dup", 0, NodeId::new(0)));
        md.add_thread(Thread::new("t", 0, p));
        md.add_thread(Thread::new("t'", 0, p));
        let sev = Severity::zeros(md.shape().0, md.shape().1, md.shape().2);
        let r = lint_parts(&md, &sev, &Provenance::default());
        let codes = r.codes();
        assert!(codes.contains(&RuleCode::DuplicateRank), "{r}");
        assert!(codes.contains(&RuleCode::DuplicateThreadNumber), "{r}");
    }

    #[test]
    fn warning_rules_fire() {
        let mut md = clean_metadata();
        // Unreferenced region + empty module.
        md.add_module(Module::new("empty.c", "/empty.c"));
        md.add_region(Region {
            name: "orphan".into(),
            module: ModuleId::new(0),
            kind: RegionKind::Function,
            begin_line: 1,
            end_line: 2,
        });
        // Unreferenced call site.
        md.add_call_site(CallSite {
            file: "a.c".into(),
            line: 5,
            callee: RegionId::new(0),
        });
        // Thread-number gap and rank gap.
        let p = md.add_process(Process::new("p9", 9, NodeId::new(0)));
        md.add_thread(Thread::new("t3", 3, p));
        // Empty topology.
        md.add_topology(CartTopology::new("empty", vec![2], vec![false]));
        let sev = Severity::zeros(md.shape().0, md.shape().1, md.shape().2);
        let r = lint_parts(&md, &sev, &Provenance::default());
        let codes = r.codes();
        assert!(!r.has_errors(), "{r}");
        for want in [
            RuleCode::UnreferencedRegion,
            RuleCode::EmptyModule,
            RuleCode::UnreferencedCallSite,
            RuleCode::ThreadNumberGap,
            RuleCode::RankGap,
            RuleCode::EmptyTopology,
        ] {
            assert!(codes.contains(&want), "missing {want}: {r}");
        }
    }

    #[test]
    fn empty_system_branch_fires_per_level() {
        let mut md = clean_metadata();
        md.add_machine(Machine::new("bare"));
        let mach0 = MachineId::new(0);
        md.add_node(SystemNode::new("empty-node", mach0));
        md.add_process(Process::new("no-threads", 1, NodeId::new(0)));
        let sev = Severity::zeros(md.shape().0, md.shape().1, md.shape().2);
        let r = lint_parts(&md, &sev, &Provenance::default());
        let branch: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == RuleCode::EmptySystemBranch)
            .collect();
        assert_eq!(branch.len(), 3, "{r}");
    }

    #[test]
    fn duplicate_sibling_metric_warns_but_distinct_trees_ok() {
        let mut md = clean_metadata();
        md.add_metric(Metric::root("time", Unit::Seconds, "dup"));
        let sev = Severity::zeros(md.shape().0, md.shape().1, md.shape().2);
        let r = lint_parts(&md, &sev, &Provenance::default());
        assert!(r.codes().contains(&RuleCode::DuplicateSiblingMetric), "{r}");

        // Same name but different unit (what a merge legitimately
        // produces) must stay clean.
        let mut md = clean_metadata();
        md.add_metric(Metric::root("time", Unit::Bytes, ""));
        // Reference nothing new; shape grows by one metric.
        let sev = Severity::zeros(md.shape().0, md.shape().1, md.shape().2);
        let r = lint_parts(&md, &sev, &Provenance::default());
        assert!(
            !r.codes().contains(&RuleCode::DuplicateSiblingMetric),
            "{r}"
        );
    }

    #[test]
    fn severity_value_rules() {
        let mut e = build_clean();
        e.severity_mut().values_mut()[0] = f64::INFINITY;
        let r = lint(&e);
        assert_eq!(r.codes(), vec![RuleCode::InfiniteSeverity]);

        let mut e = build_clean();
        e.severity_mut().values_mut()[0] = -1.0;
        let r = lint(&e);
        assert_eq!(r.codes(), vec![RuleCode::NegativeOriginalSeverity]);

        // Negative severities are fine for derived experiments.
        let mut e = build_clean();
        e.severity_mut().values_mut()[0] = -1.0;
        e.set_provenance(Provenance::derived(
            "difference",
            vec!["a".into(), "b".into()],
        ));
        assert!(lint(&e).is_clean());
    }

    #[test]
    fn shape_mismatch_skips_value_rules() {
        let e = Experiment::new_unchecked(
            clean_metadata(),
            Severity::from_values(1, 1, 2, vec![f64::NAN, -1.0]),
            Provenance::default(),
        );
        let r = lint(&e);
        assert_eq!(r.codes(), vec![RuleCode::SeverityShapeMismatch]);
    }

    #[test]
    fn per_rule_cap_truncates_with_summary() {
        let mut e = build_clean();
        let mut md = e.metadata().clone();
        md.add_metric(Metric::root("t2", Unit::Seconds, ""));
        for i in 0..20 {
            md.add_metric(Metric::child(
                format!("m{i}"),
                Unit::Seconds,
                "",
                MetricId::new(1),
            ));
        }
        let (nm, nc, nt) = md.shape();
        let mut values = vec![f64::NAN; nm * nc * nt];
        values[0] = 1.0;
        e = Experiment::new_unchecked(
            md,
            Severity::from_values(nm, nc, nt, values),
            Provenance::default(),
        );
        let r = lint(&e);
        let nans = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == RuleCode::SeverityNan)
            .count();
        // MAX_PER_RULE tuple diagnostics plus one summary.
        assert_eq!(nans, MAX_PER_RULE + 1, "{r}");
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.message.contains("suppressed")));
    }

    #[test]
    fn bad_topology_reported_with_index() {
        let mut md = clean_metadata();
        md.add_topology(CartTopology::new("bad", vec![0], vec![false]));
        let sev = Severity::zeros(md.shape().0, md.shape().1, md.shape().2);
        let r = lint_parts(&md, &sev, &Provenance::default());
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == RuleCode::BadTopology)
            .unwrap();
        assert_eq!(d.location, Location::Topology(0));
    }

    #[test]
    fn code_table_is_consistent() {
        let mut seen = std::collections::HashSet::new();
        for code in RuleCode::ALL {
            assert!(seen.insert(code.as_str()), "duplicate code {code}");
            assert_eq!(RuleCode::from_str_opt(code.as_str()), Some(code));
            let is_error = code.as_str().starts_with('E');
            assert_eq!(code.level() == Level::Error, is_error);
            assert!(!code.description().is_empty());
        }
        assert_eq!(RuleCode::from_str_opt("E999"), None);
    }

    #[test]
    fn report_display_and_ordering() {
        let report = Report::from_diagnostics(vec![
            Diagnostic::new(
                RuleCode::UnreferencedRegion,
                Location::Region(RegionId::new(0)),
                "w",
            ),
            Diagnostic::new(RuleCode::NoThreads, Location::Experiment, "e"),
        ]);
        // Errors sort before warnings.
        assert_eq!(report.diagnostics()[0].code, RuleCode::NoThreads);
        let text = report.to_string();
        assert!(text.contains("error[E017]: experiment: e"), "{text}");
        assert!(text.contains("warning[W002]: region reg0: w"), "{text}");
        assert!(text.ends_with("1 error, 1 warning"), "{text}");
    }

    #[test]
    fn every_model_error_maps_to_a_code() {
        use ModelError as M;
        let samples: Vec<ModelError> = vec![
            M::DanglingMetricParent {
                metric: MetricId::new(0),
            },
            M::MixedUnitsInMetricTree {
                metric: MetricId::new(0),
                unit: Unit::Bytes,
                root_unit: Unit::Seconds,
            },
            M::MetricCycle {
                metric: MetricId::new(0),
            },
            M::DanglingRegionModule {
                region: RegionId::new(0),
            },
            M::InvertedRegionLines {
                region: RegionId::new(0),
            },
            M::DanglingCallSiteCallee {
                call_site: CallSiteId::new(0),
            },
            M::DanglingCallNodeSite {
                call_node: CallNodeId::new(0),
            },
            M::DanglingCallNodeParent {
                call_node: CallNodeId::new(0),
            },
            M::CallNodeCycle {
                call_node: CallNodeId::new(0),
            },
            M::DanglingNodeMachine {
                node: NodeId::new(0),
            },
            M::DanglingProcessNode {
                process: ProcessId::new(0),
            },
            M::DanglingThreadProcess {
                thread: ThreadId::new(0),
            },
            M::DuplicateRank { rank: 0 },
            M::DuplicateThreadNumber {
                process: ProcessId::new(0),
                number: 0,
            },
            M::SeverityShapeMismatch {
                expected: (1, 1, 1),
                actual: (1, 1, 2),
            },
            M::SeverityLengthMismatch {
                shape: (1, 1, 1),
                expected_len: 1,
                actual_len: 2,
            },
            M::NanSeverity {
                metric: MetricId::new(0),
                call_node: CallNodeId::new(0),
                thread: ThreadId::new(0),
            },
            M::NoThreads,
            M::BadTopology {
                topology: "t".into(),
                reason: "r".into(),
            },
        ];
        for e in &samples {
            let d = diagnostic_of_model_error(e);
            assert_eq!(d.code.level(), Level::Error);
            assert_eq!(d.message, e.to_string());
        }
    }
}
