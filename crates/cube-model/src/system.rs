//! The system dimension: machines, nodes, processes, and threads.
//!
//! The system dimension is a forest with the fixed levels machine → node
//! → process → thread. Machines and nodes are treated mainly as a
//! *logical grouping* of processes for aggregation purposes; their
//! physical characteristics are disregarded to simplify merging system
//! hierarchies across experiments. The thread level is mandatory — a pure
//! message-passing application is a collection of single-threaded
//! processes. Nested thread-level parallelism is not supported.

use crate::ids::{MachineId, NodeId, ProcessId};

/// A machine: a cluster or massively parallel processor hosting nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Machine {
    /// Machine name, informational only (not an equality key).
    pub name: String,
}

impl Machine {
    /// Creates a machine description.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

/// An SMP node within a machine, hosting processes.
///
/// Named `SystemNode` to avoid a clash with call-tree nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemNode {
    /// Node name, informational only.
    pub name: String,
    /// The machine this node belongs to.
    pub machine: MachineId,
}

impl SystemNode {
    /// Creates a node description.
    pub fn new(name: impl Into<String>, machine: MachineId) -> Self {
        Self {
            name: name.into(),
            machine,
        }
    }
}

/// A process, identified across experiments by its application-level
/// rank (e.g. the global MPI rank).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Process {
    /// Process name, informational only.
    pub name: String,
    /// Application-level identifier used as the equality key when
    /// integrating system dimensions (global MPI rank).
    pub rank: i32,
    /// The node hosting this process.
    pub node: NodeId,
}

impl Process {
    /// Creates a process description.
    pub fn new(name: impl Into<String>, rank: i32, node: NodeId) -> Self {
        Self {
            name: name.into(),
            rank,
            node,
        }
    }
}

/// A thread within a process, identified across experiments by its
/// application-level thread number (e.g. the OpenMP thread number).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Thread {
    /// Thread name, informational only.
    pub name: String,
    /// Application-level thread number within the process; equality key
    /// during system-dimension integration.
    pub number: u32,
    /// The process this thread belongs to.
    pub process: ProcessId,
}

impl Thread {
    /// Creates a thread description.
    pub fn new(name: impl Into<String>, number: u32, process: ProcessId) -> Self {
        Self {
            name: name.into(),
            number,
            process,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_wire_parents() {
        let m = Machine::new("cluster");
        assert_eq!(m.name, "cluster");
        let n = SystemNode::new("node0", MachineId::new(0));
        assert_eq!(n.machine, MachineId::new(0));
        let p = Process::new("rank 3", 3, NodeId::new(1));
        assert_eq!(p.rank, 3);
        let t = Thread::new("t0", 0, ProcessId::new(2));
        assert_eq!(t.number, 0);
        assert_eq!(t.process, ProcessId::new(2));
    }
}
