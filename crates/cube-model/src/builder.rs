//! The experiment construction API.
//!
//! The original CUBE library shipped "a simple class interface with fewer
//! than fifteen methods" for creating experiments and writing them to
//! file. [`ExperimentBuilder`] is that interface: a `def_*` method per
//! entity kind, `set_severity`/`add_severity` for the data part, and
//! `build` to validate and seal the experiment.

use crate::error::ModelError;
use crate::experiment::Experiment;
use crate::ids::{
    CallNodeId, CallSiteId, MachineId, MetricId, ModuleId, NodeId, ProcessId, RegionId, ThreadId,
};
use crate::metadata::Metadata;
use crate::metric::{Metric, Unit};
use crate::program::{CallNode, CallSite, Module, Region, RegionKind};
use crate::provenance::Provenance;
use crate::severity::Severity;
use crate::system::{Machine, Process, SystemNode, Thread};

#[derive(Clone, Debug)]
struct PendingWrite {
    m: MetricId,
    c: CallNodeId,
    t: ThreadId,
    value: f64,
    accumulate: bool,
}

/// Incremental builder for [`Experiment`]s.
///
/// Severity tuples may be recorded at any time, even before all entities
/// are defined: they are buffered and applied when [`build`] sizes the
/// dense store.
///
/// [`build`]: ExperimentBuilder::build
#[derive(Clone, Debug)]
pub struct ExperimentBuilder {
    metadata: Metadata,
    pending: Vec<PendingWrite>,
    name: String,
}

impl ExperimentBuilder {
    /// Starts a new experiment with the given name (used as provenance).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            metadata: Metadata::new(),
            pending: Vec::new(),
            name: name.into(),
        }
    }

    /// Defines a metric. Pass `parent = None` for a tree root.
    pub fn def_metric(
        &mut self,
        name: impl Into<String>,
        unit: Unit,
        description: impl Into<String>,
        parent: Option<MetricId>,
    ) -> MetricId {
        self.metadata.add_metric(Metric {
            name: name.into(),
            unit,
            description: description.into(),
            parent,
        })
    }

    /// Defines a source module.
    pub fn def_module(&mut self, name: impl Into<String>, path: impl Into<String>) -> ModuleId {
        self.metadata.add_module(Module::new(name, path))
    }

    /// Defines a source region.
    pub fn def_region(
        &mut self,
        name: impl Into<String>,
        module: ModuleId,
        kind: RegionKind,
        begin_line: u32,
        end_line: u32,
    ) -> RegionId {
        self.metadata.add_region(Region {
            name: name.into(),
            module,
            kind,
            begin_line,
            end_line,
        })
    }

    /// Defines a call site whose execution enters `callee`.
    pub fn def_call_site(
        &mut self,
        file: impl Into<String>,
        line: u32,
        callee: RegionId,
    ) -> CallSiteId {
        self.metadata.add_call_site(CallSite {
            file: file.into(),
            line,
            callee,
        })
    }

    /// Defines a call-tree node. Pass `parent = None` for a root.
    pub fn def_call_node(
        &mut self,
        call_site: CallSiteId,
        parent: Option<CallNodeId>,
    ) -> CallNodeId {
        self.metadata.add_call_node(CallNode { call_site, parent })
    }

    /// Defines a machine.
    pub fn def_machine(&mut self, name: impl Into<String>) -> MachineId {
        self.metadata.add_machine(Machine::new(name))
    }

    /// Defines an SMP node of `machine`.
    pub fn def_node(&mut self, name: impl Into<String>, machine: MachineId) -> NodeId {
        self.metadata.add_node(SystemNode::new(name, machine))
    }

    /// Defines a process with application-level `rank` on `node`.
    pub fn def_process(&mut self, name: impl Into<String>, rank: i32, node: NodeId) -> ProcessId {
        self.metadata.add_process(Process::new(name, rank, node))
    }

    /// Defines a thread with application-level `number` in `process`.
    pub fn def_thread(
        &mut self,
        name: impl Into<String>,
        number: u32,
        process: ProcessId,
    ) -> ThreadId {
        self.metadata.add_thread(Thread::new(name, number, process))
    }

    /// Adds a Cartesian process topology and returns its index.
    pub fn def_topology(&mut self, topology: crate::topology::CartTopology) -> usize {
        self.metadata.add_topology(topology)
    }

    /// Records the severity of one tuple, replacing any earlier value
    /// recorded for the same tuple.
    pub fn set_severity(&mut self, m: MetricId, c: CallNodeId, t: ThreadId, value: f64) {
        // Applied in order at build time; last write wins, matching `set`.
        self.pending.push(PendingWrite {
            m,
            c,
            t,
            value,
            accumulate: false,
        });
    }

    /// Accumulates severity into one tuple — the natural operation for
    /// measurement tools that observe many events per call path.
    pub fn add_severity(&mut self, m: MetricId, c: CallNodeId, t: ThreadId, value: f64) {
        self.pending.push(PendingWrite {
            m,
            c,
            t,
            value,
            accumulate: true,
        });
    }

    /// Convenience accessor for the metadata built so far.
    pub fn metadata(&self) -> &Metadata {
        &self.metadata
    }

    /// Validates and seals the experiment.
    pub fn build(self) -> Result<Experiment, ModelError> {
        let (nm, nc, nt) = self.metadata.shape();
        let mut severity = Severity::zeros(nm, nc, nt);
        for w in &self.pending {
            // Out-of-range tuples cannot happen through the typed API when
            // ids came from this builder; guard anyway so that a stale id
            // from another experiment fails loudly instead of corrupting
            // memory-adjacent values.
            assert!(
                w.m.index() < nm && w.c.index() < nc && w.t.index() < nt,
                "severity tuple ({:?}, {:?}, {:?}) out of range for shape {:?}",
                w.m,
                w.c,
                w.t,
                (nm, nc, nt)
            );
            if w.accumulate {
                severity.add(w.m, w.c, w.t, w.value);
            } else {
                severity.set(w.m, w.c, w.t, w.value);
            }
        }
        Experiment::new(self.metadata, severity, Provenance::original(self.name))
    }
}

/// Convenience: builds the standard single-machine, single-node system
/// dimension with `ranks` single-threaded processes — the layout of a
/// pure message-passing run — and returns the thread ids in rank order.
pub fn single_threaded_system(b: &mut ExperimentBuilder, ranks: usize) -> Vec<ThreadId> {
    let mach = b.def_machine("virtual machine");
    let node = b.def_node("virtual node", mach);
    (0..ranks)
        .map(|r| {
            let p = b.def_process(format!("rank {r}"), r as i32, node);
            b.def_thread(format!("rank {r} thread 0"), 0, p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_valid_experiment() {
        let mut b = ExperimentBuilder::new("demo");
        let time = b.def_metric("time", Unit::Seconds, "wall time", None);
        let mpi = b.def_metric("mpi", Unit::Seconds, "MPI time", Some(time));
        let m = b.def_module("a.c", "/src/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 50);
        let cs = b.def_call_site("a.c", 1, main_r);
        let root = b.def_call_node(cs, None);
        let threads = single_threaded_system(&mut b, 4);
        for (i, &t) in threads.iter().enumerate() {
            b.set_severity(time, root, t, 1.0 + i as f64);
            b.set_severity(mpi, root, t, 0.25);
        }
        let e = b.build().unwrap();
        assert_eq!(e.metadata().shape(), (2, 1, 4));
        assert_eq!(e.severity().get(time, root, threads[2]), 3.0);
        assert_eq!(e.severity().metric_sum(mpi), 1.0);
        assert_eq!(e.provenance().label(), "demo");
    }

    #[test]
    fn add_severity_accumulates() {
        let mut b = ExperimentBuilder::new("acc");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.add_severity(time, root, ts[0], 1.0);
        b.add_severity(time, root, ts[0], 2.5);
        let e = b.build().unwrap();
        assert_eq!(e.severity().get(time, root, ts[0]), 3.5);
    }

    #[test]
    fn set_after_add_resets() {
        let mut b = ExperimentBuilder::new("mix");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.add_severity(time, root, ts[0], 5.0);
        b.set_severity(time, root, ts[0], 1.0);
        b.add_severity(time, root, ts[0], 0.25);
        let e = b.build().unwrap();
        assert_eq!(e.severity().get(time, root, ts[0]), 1.25);
    }

    #[test]
    fn later_set_severity_wins() {
        let mut b = ExperimentBuilder::new("x");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(time, root, ts[0], 1.0);
        b.set_severity(time, root, ts[0], 9.0);
        let e = b.build().unwrap();
        assert_eq!(e.severity().get(time, root, ts[0]), 9.0);
    }

    #[test]
    fn invalid_metadata_propagates_error() {
        let mut b = ExperimentBuilder::new("bad");
        b.def_metric("a", Unit::Seconds, "", None);
        b.def_metric("b", Unit::Bytes, "", Some(MetricId::new(0)));
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        b.def_call_node(cs, None);
        single_threaded_system(&mut b, 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn single_threaded_system_ranks() {
        let mut b = ExperimentBuilder::new("s");
        let ts = single_threaded_system(&mut b, 3);
        assert_eq!(ts.len(), 3);
        let md = b.metadata();
        assert_eq!(md.machines().len(), 1);
        assert_eq!(md.nodes().len(), 1);
        assert_eq!(md.processes().len(), 3);
        for (i, t) in ts.iter().enumerate() {
            let th = md.thread(*t);
            assert_eq!(th.number, 0);
            assert_eq!(md.process(th.process).rank, i as i32);
        }
    }
}
