//! Strongly typed identifiers for every entity kind in the data model.
//!
//! Each identifier is a dense index into the corresponding table of the
//! [`Metadata`](crate::Metadata): identifiers are handed out consecutively
//! starting at zero, so they double as array indices into the severity
//! store. The newtypes prevent, at compile time, accidentally indexing the
//! call-tree table with a metric identifier and similar mix-ups.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $short:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Creates an identifier from a `usize` index.
            ///
            /// # Panics
            /// Panics if `raw` does not fit in `u32`.
            #[inline]
            pub fn from_index(raw: usize) -> Self {
                Self(u32::try_from(raw).expect("entity index exceeds u32::MAX"))
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize` array index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a metric in the metric dimension.
    MetricId,
    "met"
);
define_id!(
    /// Identifier of a source module (compilation unit, file, library).
    ModuleId,
    "mod"
);
define_id!(
    /// Identifier of a source-code region (function, loop, basic block).
    RegionId,
    "reg"
);
define_id!(
    /// Identifier of a call site — a source location where control may
    /// move from one region into another (including loop entries).
    CallSiteId,
    "cs"
);
define_id!(
    /// Identifier of a call-tree node, i.e. a call path.
    CallNodeId,
    "cn"
);
define_id!(
    /// Identifier of a machine (cluster or MPP) in the system dimension.
    MachineId,
    "mach"
);
define_id!(
    /// Identifier of an SMP node within a machine.
    NodeId,
    "node"
);
define_id!(
    /// Identifier of a process (e.g. an MPI rank).
    ProcessId,
    "proc"
);
define_id!(
    /// Identifier of a thread. The thread level is mandatory: pure
    /// message-passing codes are modeled as single-threaded processes.
    ThreadId,
    "thrd"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let id = MetricId::new(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(id.index(), 7);
        assert_eq!(usize::from(id), 7);
    }

    #[test]
    fn from_index_roundtrip() {
        let id = CallNodeId::from_index(42);
        assert_eq!(id, CallNodeId::new(42));
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn from_index_overflow_panics() {
        let _ = ThreadId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn debug_uses_short_prefix() {
        assert_eq!(format!("{:?}", MetricId::new(3)), "met3");
        assert_eq!(format!("{:?}", CallNodeId::new(0)), "cn0");
        assert_eq!(format!("{:?}", ThreadId::new(12)), "thrd12");
    }

    #[test]
    fn display_is_bare_number() {
        assert_eq!(format!("{}", ProcessId::new(5)), "5");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(RegionId::new(1) < RegionId::new(2));
        assert_eq!(MachineId::new(4), MachineId::new(4));
    }
}
