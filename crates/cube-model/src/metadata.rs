//! Experiment metadata: the three dimensions and their ordering relations.
//!
//! [`Metadata`] owns the entity tables of all three dimensions. Entities
//! are stored in insertion order; identifiers are dense indices into the
//! tables. Child lists are maintained incrementally so that tree
//! traversals are cheap, and are part of the *ordering relations* the
//! data model prescribes: children keep their insertion order.

use crate::error::ModelError;
use crate::ids::{
    CallNodeId, CallSiteId, MachineId, MetricId, ModuleId, NodeId, ProcessId, RegionId, ThreadId,
};
use crate::metric::Metric;
use crate::program::{CallNode, CallSite, Module, Region};
use crate::system::{Machine, Process, SystemNode, Thread};
use crate::topology::CartTopology;

/// The metadata part of a CUBE experiment.
///
/// Use [`ExperimentBuilder`](crate::ExperimentBuilder) to construct
/// metadata together with a severity store, or the `def_*` methods here
/// when assembling metadata programmatically (the algebra's metadata
/// integration does the latter).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metadata {
    metrics: Vec<Metric>,
    metric_children: Vec<Vec<MetricId>>,
    metric_roots: Vec<MetricId>,

    modules: Vec<Module>,
    regions: Vec<Region>,
    call_sites: Vec<CallSite>,
    call_nodes: Vec<CallNode>,
    call_node_children: Vec<Vec<CallNodeId>>,
    call_roots: Vec<CallNodeId>,

    machines: Vec<Machine>,
    nodes: Vec<SystemNode>,
    node_children_of_machine: Vec<Vec<NodeId>>,
    processes: Vec<Process>,
    process_children_of_node: Vec<Vec<ProcessId>>,
    threads: Vec<Thread>,
    thread_children_of_process: Vec<Vec<ThreadId>>,

    topologies: Vec<CartTopology>,
}

impl Metadata {
    /// Creates empty metadata.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- metric dimension -------------------------------------------------

    /// Appends a metric and returns its identifier.
    pub fn add_metric(&mut self, metric: Metric) -> MetricId {
        let id = MetricId::from_index(self.metrics.len());
        match metric.parent {
            Some(p) if p.index() < self.metrics.len() => self.metric_children[p.index()].push(id),
            Some(_) => {} // dangling parent; caught by validate()
            None => self.metric_roots.push(id),
        }
        self.metrics.push(metric);
        self.metric_children.push(Vec::new());
        id
    }

    /// All metrics in identifier order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// The metric with the given identifier.
    pub fn metric(&self, id: MetricId) -> &Metric {
        &self.metrics[id.index()]
    }

    /// Number of metrics.
    pub fn num_metrics(&self) -> usize {
        self.metrics.len()
    }

    /// Root metrics in insertion order.
    pub fn metric_roots(&self) -> &[MetricId] {
        &self.metric_roots
    }

    /// Children of a metric in insertion order.
    pub fn metric_children(&self, id: MetricId) -> &[MetricId] {
        &self.metric_children[id.index()]
    }

    /// Identifiers of all metrics in identifier order.
    pub fn metric_ids(&self) -> impl Iterator<Item = MetricId> + '_ {
        (0..self.metrics.len() as u32).map(MetricId::new)
    }

    /// Looks up a metric by name.
    pub fn find_metric(&self, name: &str) -> Option<MetricId> {
        self.metrics
            .iter()
            .position(|m| m.name == name)
            .map(MetricId::from_index)
    }

    /// The root of the metric tree containing `id`.
    pub fn metric_root_of(&self, id: MetricId) -> MetricId {
        let mut cur = id;
        let mut hops = 0;
        while let Some(p) = self.metrics[cur.index()].parent {
            cur = p;
            hops += 1;
            if hops > self.metrics.len() {
                // Cycle; validate() reports it. Return the current node to
                // keep this accessor total.
                return cur;
            }
        }
        cur
    }

    /// Pre-order traversal of the metric subtree rooted at `id`.
    pub fn metric_subtree(&self, id: MetricId) -> Vec<MetricId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(m) = stack.pop() {
            out.push(m);
            // Reverse so that the first child is visited first.
            stack.extend(self.metric_children(m).iter().rev().copied());
        }
        out
    }

    // ----- program dimension ------------------------------------------------

    /// Appends a module and returns its identifier.
    pub fn add_module(&mut self, module: Module) -> ModuleId {
        let id = ModuleId::from_index(self.modules.len());
        self.modules.push(module);
        id
    }

    /// All modules in identifier order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// The module with the given identifier.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Looks up a module by name.
    pub fn find_module(&self, name: &str) -> Option<ModuleId> {
        self.modules
            .iter()
            .position(|m| m.name == name)
            .map(ModuleId::from_index)
    }

    /// Appends a region and returns its identifier.
    pub fn add_region(&mut self, region: Region) -> RegionId {
        let id = RegionId::from_index(self.regions.len());
        self.regions.push(region);
        id
    }

    /// All regions in identifier order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region with the given identifier.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Looks up a region by name (first match).
    pub fn find_region(&self, name: &str) -> Option<RegionId> {
        self.regions
            .iter()
            .position(|r| r.name == name)
            .map(RegionId::from_index)
    }

    /// Appends a call site and returns its identifier.
    pub fn add_call_site(&mut self, call_site: CallSite) -> CallSiteId {
        let id = CallSiteId::from_index(self.call_sites.len());
        self.call_sites.push(call_site);
        id
    }

    /// All call sites in identifier order.
    pub fn call_sites(&self) -> &[CallSite] {
        &self.call_sites
    }

    /// The call site with the given identifier.
    pub fn call_site(&self, id: CallSiteId) -> &CallSite {
        &self.call_sites[id.index()]
    }

    /// Appends a call-tree node and returns its identifier.
    pub fn add_call_node(&mut self, node: CallNode) -> CallNodeId {
        let id = CallNodeId::from_index(self.call_nodes.len());
        match node.parent {
            Some(p) if p.index() < self.call_nodes.len() => {
                self.call_node_children[p.index()].push(id)
            }
            Some(_) => {}
            None => self.call_roots.push(id),
        }
        self.call_nodes.push(node);
        self.call_node_children.push(Vec::new());
        id
    }

    /// All call-tree nodes in identifier order.
    pub fn call_nodes(&self) -> &[CallNode] {
        &self.call_nodes
    }

    /// The call-tree node with the given identifier.
    pub fn call_node(&self, id: CallNodeId) -> &CallNode {
        &self.call_nodes[id.index()]
    }

    /// Number of call-tree nodes.
    pub fn num_call_nodes(&self) -> usize {
        self.call_nodes.len()
    }

    /// Root call-tree nodes in insertion order.
    pub fn call_roots(&self) -> &[CallNodeId] {
        &self.call_roots
    }

    /// Children of a call-tree node in insertion order.
    pub fn call_node_children(&self, id: CallNodeId) -> &[CallNodeId] {
        &self.call_node_children[id.index()]
    }

    /// Identifiers of all call-tree nodes in identifier order.
    pub fn call_node_ids(&self) -> impl Iterator<Item = CallNodeId> + '_ {
        (0..self.call_nodes.len() as u32).map(CallNodeId::new)
    }

    /// The callee region of a call-tree node.
    pub fn call_node_callee(&self, id: CallNodeId) -> RegionId {
        self.call_sites[self.call_nodes[id.index()].call_site.index()].callee
    }

    /// Pre-order traversal of the call subtree rooted at `id`.
    pub fn call_subtree(&self, id: CallNodeId) -> Vec<CallNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            out.push(c);
            stack.extend(self.call_node_children(c).iter().rev().copied());
        }
        out
    }

    /// The call path of a node: region names from the root down to `id`.
    pub fn call_path(&self, id: CallNodeId) -> Vec<&str> {
        let mut rev = Vec::new();
        let mut cur = Some(id);
        let mut hops = 0;
        while let Some(c) = cur {
            rev.push(self.region(self.call_node_callee(c)).name.as_str());
            cur = self.call_nodes[c.index()].parent;
            hops += 1;
            if hops > self.call_nodes.len() {
                break; // cycle; reported by validate()
            }
        }
        rev.reverse();
        rev
    }

    // ----- system dimension -------------------------------------------------

    /// Appends a machine and returns its identifier.
    pub fn add_machine(&mut self, machine: Machine) -> MachineId {
        let id = MachineId::from_index(self.machines.len());
        self.machines.push(machine);
        self.node_children_of_machine.push(Vec::new());
        id
    }

    /// All machines in identifier order.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// The machine with the given identifier.
    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.machines[id.index()]
    }

    /// Appends a system node and returns its identifier.
    pub fn add_node(&mut self, node: SystemNode) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        if node.machine.index() < self.machines.len() {
            self.node_children_of_machine[node.machine.index()].push(id);
        }
        self.nodes.push(node);
        self.process_children_of_node.push(Vec::new());
        id
    }

    /// All system nodes in identifier order.
    pub fn nodes(&self) -> &[SystemNode] {
        &self.nodes
    }

    /// The system node with the given identifier.
    pub fn node(&self, id: NodeId) -> &SystemNode {
        &self.nodes[id.index()]
    }

    /// Nodes of a machine in insertion order.
    pub fn nodes_of_machine(&self, id: MachineId) -> &[NodeId] {
        &self.node_children_of_machine[id.index()]
    }

    /// Appends a process and returns its identifier.
    pub fn add_process(&mut self, process: Process) -> ProcessId {
        let id = ProcessId::from_index(self.processes.len());
        if process.node.index() < self.nodes.len() {
            self.process_children_of_node[process.node.index()].push(id);
        }
        self.processes.push(process);
        self.thread_children_of_process.push(Vec::new());
        id
    }

    /// All processes in identifier order.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// The process with the given identifier.
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.index()]
    }

    /// Processes of a node in insertion order.
    pub fn processes_of_node(&self, id: NodeId) -> &[ProcessId] {
        &self.process_children_of_node[id.index()]
    }

    /// Looks up a process by application-level rank.
    pub fn find_process_by_rank(&self, rank: i32) -> Option<ProcessId> {
        self.processes
            .iter()
            .position(|p| p.rank == rank)
            .map(ProcessId::from_index)
    }

    /// Appends a thread and returns its identifier.
    pub fn add_thread(&mut self, thread: Thread) -> ThreadId {
        let id = ThreadId::from_index(self.threads.len());
        if thread.process.index() < self.processes.len() {
            self.thread_children_of_process[thread.process.index()].push(id);
        }
        self.threads.push(thread);
        id
    }

    /// All threads in identifier order. The thread identifier order is
    /// the *location* order used by the severity store.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// The thread with the given identifier.
    pub fn thread(&self, id: ThreadId) -> &Thread {
        &self.threads[id.index()]
    }

    /// Number of threads (the severity store's third dimension).
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Threads of a process in insertion order.
    pub fn threads_of_process(&self, id: ProcessId) -> &[ThreadId] {
        &self.thread_children_of_process[id.index()]
    }

    /// Identifiers of all threads in identifier order.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (0..self.threads.len() as u32).map(ThreadId::new)
    }

    /// Looks up a thread by `(process rank, thread number)`.
    pub fn find_thread(&self, rank: i32, number: u32) -> Option<ThreadId> {
        self.threads
            .iter()
            .position(|t| t.number == number && self.processes[t.process.index()].rank == rank)
            .map(ThreadId::from_index)
    }

    /// Adds a Cartesian process topology.
    pub fn add_topology(&mut self, topology: CartTopology) -> usize {
        self.topologies.push(topology);
        self.topologies.len() - 1
    }

    /// All Cartesian topologies.
    pub fn topologies(&self) -> &[CartTopology] {
        &self.topologies
    }

    /// The expected severity-store shape `(metrics, call nodes, threads)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (
            self.metrics.len(),
            self.call_nodes.len(),
            self.threads.len(),
        )
    }

    // ----- validation -------------------------------------------------------

    /// Checks every constraint the data model places on metadata.
    ///
    /// Returns the first violation found. Severity-related constraints
    /// are checked by [`Experiment::validate`](crate::Experiment::validate).
    pub fn validate(&self) -> Result<(), ModelError> {
        self.validate_metric_dimension()?;
        self.validate_program_dimension()?;
        self.validate_system_dimension()?;
        for t in &self.topologies {
            t.validate(self.processes.len())?;
        }
        Ok(())
    }

    fn validate_metric_dimension(&self) -> Result<(), ModelError> {
        for (i, m) in self.metrics.iter().enumerate() {
            let id = MetricId::from_index(i);
            if let Some(p) = m.parent {
                if p.index() >= self.metrics.len() {
                    return Err(ModelError::DanglingMetricParent { metric: id });
                }
            }
        }
        // Cycle check: walk parents with a hop bound.
        for (i, _) in self.metrics.iter().enumerate() {
            let id = MetricId::from_index(i);
            let mut cur = id;
            let mut hops = 0;
            while let Some(p) = self.metrics[cur.index()].parent {
                cur = p;
                hops += 1;
                if hops > self.metrics.len() {
                    return Err(ModelError::MetricCycle { metric: id });
                }
            }
        }
        // Unit homogeneity per tree.
        for (i, m) in self.metrics.iter().enumerate() {
            let id = MetricId::from_index(i);
            let root = self.metric_root_of(id);
            let root_unit = self.metrics[root.index()].unit;
            if m.unit != root_unit {
                return Err(ModelError::MixedUnitsInMetricTree {
                    metric: id,
                    unit: m.unit,
                    root_unit,
                });
            }
        }
        Ok(())
    }

    fn validate_program_dimension(&self) -> Result<(), ModelError> {
        for (i, r) in self.regions.iter().enumerate() {
            let id = RegionId::from_index(i);
            if r.module.index() >= self.modules.len() {
                return Err(ModelError::DanglingRegionModule { region: id });
            }
            if r.begin_line > r.end_line {
                return Err(ModelError::InvertedRegionLines { region: id });
            }
        }
        for (i, cs) in self.call_sites.iter().enumerate() {
            if cs.callee.index() >= self.regions.len() {
                return Err(ModelError::DanglingCallSiteCallee {
                    call_site: CallSiteId::from_index(i),
                });
            }
        }
        for (i, cn) in self.call_nodes.iter().enumerate() {
            let id = CallNodeId::from_index(i);
            if cn.call_site.index() >= self.call_sites.len() {
                return Err(ModelError::DanglingCallNodeSite { call_node: id });
            }
            if let Some(p) = cn.parent {
                if p.index() >= self.call_nodes.len() {
                    return Err(ModelError::DanglingCallNodeParent { call_node: id });
                }
            }
        }
        for (i, _) in self.call_nodes.iter().enumerate() {
            let id = CallNodeId::from_index(i);
            let mut cur = id;
            let mut hops = 0;
            while let Some(p) = self.call_nodes[cur.index()].parent {
                cur = p;
                hops += 1;
                if hops > self.call_nodes.len() {
                    return Err(ModelError::CallNodeCycle { call_node: id });
                }
            }
        }
        Ok(())
    }

    fn validate_system_dimension(&self) -> Result<(), ModelError> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.machine.index() >= self.machines.len() {
                return Err(ModelError::DanglingNodeMachine {
                    node: NodeId::from_index(i),
                });
            }
        }
        let mut ranks = std::collections::HashSet::new();
        for (i, p) in self.processes.iter().enumerate() {
            if p.node.index() >= self.nodes.len() {
                return Err(ModelError::DanglingProcessNode {
                    process: ProcessId::from_index(i),
                });
            }
            if !ranks.insert(p.rank) {
                return Err(ModelError::DuplicateRank { rank: p.rank });
            }
        }
        let mut numbers = std::collections::HashSet::new();
        for (i, t) in self.threads.iter().enumerate() {
            if t.process.index() >= self.processes.len() {
                return Err(ModelError::DanglingThreadProcess {
                    thread: ThreadId::from_index(i),
                });
            }
            if !numbers.insert((t.process, t.number)) {
                return Err(ModelError::DuplicateThreadNumber {
                    process: t.process,
                    number: t.number,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Unit;
    use crate::program::RegionKind;

    fn tiny() -> Metadata {
        let mut md = Metadata::new();
        let time = md.add_metric(Metric::root("time", Unit::Seconds, ""));
        md.add_metric(Metric::child("mpi", Unit::Seconds, "", time));
        let m = md.add_module(Module::new("a.rs", "/a.rs"));
        let main_r = md.add_region(Region {
            name: "main".into(),
            module: m,
            kind: RegionKind::Function,
            begin_line: 1,
            end_line: 10,
        });
        let cs = md.add_call_site(CallSite {
            file: "a.rs".into(),
            line: 1,
            callee: main_r,
        });
        let root = md.add_call_node(CallNode {
            call_site: cs,
            parent: None,
        });
        md.add_call_node(CallNode {
            call_site: cs,
            parent: Some(root),
        });
        let mach = md.add_machine(Machine::new("m"));
        let node = md.add_node(SystemNode::new("n", mach));
        let p = md.add_process(Process::new("p0", 0, node));
        md.add_thread(Thread::new("t0", 0, p));
        md
    }

    #[test]
    fn tiny_metadata_validates() {
        let md = tiny();
        md.validate().unwrap();
        assert_eq!(md.shape(), (2, 2, 1));
        assert_eq!(md.metric_roots().len(), 1);
        assert_eq!(md.call_roots().len(), 1);
    }

    #[test]
    fn children_follow_insertion_order() {
        let mut md = Metadata::new();
        let root = md.add_metric(Metric::root("time", Unit::Seconds, ""));
        let a = md.add_metric(Metric::child("a", Unit::Seconds, "", root));
        let b = md.add_metric(Metric::child("b", Unit::Seconds, "", root));
        assert_eq!(md.metric_children(root), &[a, b]);
        assert_eq!(md.metric_subtree(root), vec![root, a, b]);
    }

    #[test]
    fn subtree_is_preorder() {
        let mut md = Metadata::new();
        let r = md.add_metric(Metric::root("r", Unit::Seconds, ""));
        let a = md.add_metric(Metric::child("a", Unit::Seconds, "", r));
        let b = md.add_metric(Metric::child("b", Unit::Seconds, "", r));
        let a1 = md.add_metric(Metric::child("a1", Unit::Seconds, "", a));
        assert_eq!(md.metric_subtree(r), vec![r, a, a1, b]);
    }

    #[test]
    fn mixed_units_rejected() {
        let mut md = Metadata::new();
        let root = md.add_metric(Metric::root("time", Unit::Seconds, ""));
        md.add_metric(Metric::child("bytes?!", Unit::Bytes, "", root));
        assert!(matches!(
            md.validate(),
            Err(ModelError::MixedUnitsInMetricTree { .. })
        ));
    }

    #[test]
    fn dangling_metric_parent_rejected() {
        let mut md = Metadata::new();
        md.add_metric(Metric::child("x", Unit::Seconds, "", MetricId::new(9)));
        assert!(matches!(
            md.validate(),
            Err(ModelError::DanglingMetricParent { .. })
        ));
    }

    #[test]
    fn duplicate_rank_rejected() {
        let mut md = tiny();
        let node = NodeId::new(0);
        md.add_process(Process::new("dup", 0, node));
        assert!(matches!(
            md.validate(),
            Err(ModelError::DuplicateRank { rank: 0 })
        ));
    }

    #[test]
    fn duplicate_thread_number_rejected() {
        let mut md = tiny();
        md.add_thread(Thread::new("t0'", 0, ProcessId::new(0)));
        assert!(matches!(
            md.validate(),
            Err(ModelError::DuplicateThreadNumber { .. })
        ));
    }

    #[test]
    fn inverted_region_lines_rejected() {
        let mut md = Metadata::new();
        let m = md.add_module(Module::new("a", "a"));
        md.add_region(Region {
            name: "r".into(),
            module: m,
            kind: RegionKind::Function,
            begin_line: 10,
            end_line: 2,
        });
        assert!(matches!(
            md.validate(),
            Err(ModelError::InvertedRegionLines { .. })
        ));
    }

    #[test]
    fn call_path_names() {
        let md = tiny();
        assert_eq!(md.call_path(CallNodeId::new(1)), vec!["main", "main"]);
    }

    #[test]
    fn find_helpers() {
        let md = tiny();
        assert_eq!(md.find_metric("mpi"), Some(MetricId::new(1)));
        assert_eq!(md.find_metric("nope"), None);
        assert_eq!(md.find_process_by_rank(0), Some(ProcessId::new(0)));
        assert_eq!(md.find_thread(0, 0), Some(ThreadId::new(0)));
        assert_eq!(md.find_thread(1, 0), None);
    }

    #[test]
    fn metric_root_of_walks_up() {
        let md = tiny();
        assert_eq!(md.metric_root_of(MetricId::new(1)), MetricId::new(0));
        assert_eq!(md.metric_root_of(MetricId::new(0)), MetricId::new(0));
    }

    #[test]
    fn system_adjacency() {
        let md = tiny();
        assert_eq!(md.nodes_of_machine(MachineId::new(0)).len(), 1);
        assert_eq!(md.processes_of_node(NodeId::new(0)).len(), 1);
        assert_eq!(md.threads_of_process(ProcessId::new(0)).len(), 1);
    }
}
