//! Error type for model construction and validation.

use std::error::Error;
use std::fmt;

use crate::ids::{CallNodeId, CallSiteId, MetricId, ProcessId, RegionId, ThreadId};
use crate::metric::Unit;

/// Violation of a data-model constraint.
///
/// [`Experiment::validate`](crate::Experiment::validate) and
/// [`ExperimentBuilder::build`](crate::ExperimentBuilder::build) report the
/// first constraint violation they find. Every variant corresponds to one
/// of the constraints prescribed by the CUBE data model (Section 2 of the
/// paper).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A metric refers to a parent identifier that does not exist.
    DanglingMetricParent { metric: MetricId },
    /// A metric's unit differs from the unit of its tree root. Within
    /// each metric tree all metrics must share one unit of measurement.
    MixedUnitsInMetricTree {
        metric: MetricId,
        unit: Unit,
        root_unit: Unit,
    },
    /// The metric parent chain contains a cycle.
    MetricCycle { metric: MetricId },
    /// A region refers to a module that does not exist.
    DanglingRegionModule { region: RegionId },
    /// A region's begin line is after its end line.
    InvertedRegionLines { region: RegionId },
    /// A call site's callee region does not exist.
    DanglingCallSiteCallee { call_site: CallSiteId },
    /// A call-tree node refers to a call site that does not exist.
    DanglingCallNodeSite { call_node: CallNodeId },
    /// A call-tree node refers to a parent that does not exist.
    DanglingCallNodeParent { call_node: CallNodeId },
    /// The call-tree parent chain contains a cycle.
    CallNodeCycle { call_node: CallNodeId },
    /// A node refers to a machine that does not exist.
    DanglingNodeMachine { node: crate::ids::NodeId },
    /// A process refers to a node that does not exist.
    DanglingProcessNode { process: ProcessId },
    /// A thread refers to a process that does not exist.
    DanglingThreadProcess { thread: ThreadId },
    /// Two processes share the same application-level rank.
    DuplicateRank { rank: i32 },
    /// Two threads of the same process share the same thread number.
    DuplicateThreadNumber { process: ProcessId, number: u32 },
    /// The severity store's shape disagrees with the metadata tables.
    SeverityShapeMismatch {
        expected: (usize, usize, usize),
        actual: (usize, usize, usize),
    },
    /// A raw value vector's length disagrees with the product of the
    /// requested dimensions.
    SeverityLengthMismatch {
        /// Requested shape `(metrics, call nodes, threads)`.
        shape: (usize, usize, usize),
        /// `shape.0 * shape.1 * shape.2`.
        expected_len: usize,
        /// Length of the supplied vector.
        actual_len: usize,
    },
    /// A severity value is NaN, which no operator can produce and no
    /// measurement tool may record.
    NanSeverity {
        metric: MetricId,
        call_node: CallNodeId,
        thread: ThreadId,
    },
    /// The experiment contains no thread; the thread level is mandatory.
    NoThreads,
    /// A Cartesian topology violates its structural constraints.
    BadTopology {
        /// Topology name.
        topology: String,
        /// What is wrong.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DanglingMetricParent { metric } => {
                write!(f, "metric {metric:?} refers to a nonexistent parent")
            }
            Self::MixedUnitsInMetricTree {
                metric,
                unit,
                root_unit,
            } => write!(
                f,
                "metric {metric:?} has unit {unit} but its tree root has unit {root_unit}; \
                 all metrics of one tree must share a unit"
            ),
            Self::MetricCycle { metric } => {
                write!(f, "metric {metric:?} participates in a parent cycle")
            }
            Self::DanglingRegionModule { region } => {
                write!(f, "region {region:?} refers to a nonexistent module")
            }
            Self::InvertedRegionLines { region } => {
                write!(f, "region {region:?} has begin line after end line")
            }
            Self::DanglingCallSiteCallee { call_site } => {
                write!(f, "call site {call_site:?} refers to a nonexistent callee")
            }
            Self::DanglingCallNodeSite { call_node } => {
                write!(
                    f,
                    "call node {call_node:?} refers to a nonexistent call site"
                )
            }
            Self::DanglingCallNodeParent { call_node } => {
                write!(f, "call node {call_node:?} refers to a nonexistent parent")
            }
            Self::CallNodeCycle { call_node } => {
                write!(f, "call node {call_node:?} participates in a parent cycle")
            }
            Self::DanglingNodeMachine { node } => {
                write!(f, "node {node:?} refers to a nonexistent machine")
            }
            Self::DanglingProcessNode { process } => {
                write!(f, "process {process:?} refers to a nonexistent node")
            }
            Self::DanglingThreadProcess { thread } => {
                write!(f, "thread {thread:?} refers to a nonexistent process")
            }
            Self::DuplicateRank { rank } => {
                write!(f, "two processes share application-level rank {rank}")
            }
            Self::DuplicateThreadNumber { process, number } => {
                write!(f, "process {process:?} has two threads numbered {number}")
            }
            Self::SeverityShapeMismatch { expected, actual } => write!(
                f,
                "severity store shaped {actual:?} but metadata requires {expected:?} \
                 (metrics x call nodes x threads)"
            ),
            Self::SeverityLengthMismatch {
                shape,
                expected_len,
                actual_len,
            } => write!(
                f,
                "severity vector length must equal the product of the dimensions: \
                 shape {shape:?} needs {expected_len} values, got {actual_len}"
            ),
            Self::NanSeverity {
                metric,
                call_node,
                thread,
            } => write!(
                f,
                "severity at ({metric:?}, {call_node:?}, {thread:?}) is NaN"
            ),
            Self::NoThreads => write!(
                f,
                "experiment defines no thread; the thread level is mandatory"
            ),
            Self::BadTopology { topology, reason } => {
                write!(f, "topology '{topology}' is invalid: {reason}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_entities() {
        let e = ModelError::DanglingMetricParent {
            metric: MetricId::new(3),
        };
        assert!(e.to_string().contains("met3"));

        let e = ModelError::MixedUnitsInMetricTree {
            metric: MetricId::new(1),
            unit: Unit::Bytes,
            root_unit: Unit::Seconds,
        };
        let s = e.to_string();
        assert!(s.contains("bytes") && s.contains("sec"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(ModelError::NoThreads);
        assert!(e.to_string().contains("mandatory"));
    }
}
