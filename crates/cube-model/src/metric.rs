//! The metric dimension: a forest of performance metrics.
//!
//! Each metric carries a name, a unit of measurement and an optional
//! parent. The parent relation expresses *inclusion*: to qualify for
//! parentship the parent metric must include the child metric (execution
//! time includes communication time, cache accesses include cache
//! misses). Within one tree all metrics must share the same unit.

use std::fmt;

use crate::ids::MetricId;

/// Unit of measurement of a metric.
///
/// The CUBE data model admits exactly three units.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Unit {
    /// Wall-clock or CPU time in seconds.
    Seconds,
    /// Data volume in bytes.
    Bytes,
    /// Number of event occurrences (e.g. hardware-counter events).
    Occurrences,
}

impl Unit {
    /// The canonical short name used in the CUBE XML format (`uom`
    /// attribute).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Seconds => "sec",
            Self::Bytes => "bytes",
            Self::Occurrences => "occ",
        }
    }

    /// Parses the canonical short name produced by [`Unit::as_str`].
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "sec" => Some(Self::Seconds),
            "bytes" => Some(Self::Bytes),
            "occ" => Some(Self::Occurrences),
            _ => None,
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A performance metric: one node of the metric forest.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Unique (within the experiment) metric name, used as the equality
    /// key when integrating metadata of different experiments.
    pub name: String,
    /// Unit of measurement; constant within a metric tree.
    pub unit: Unit,
    /// Human-readable description of what the metric measures.
    pub description: String,
    /// Parent metric; `None` for a tree root.
    pub parent: Option<MetricId>,
}

impl Metric {
    /// Convenience constructor for a root metric.
    pub fn root(name: impl Into<String>, unit: Unit, description: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            unit,
            description: description.into(),
            parent: None,
        }
    }

    /// Convenience constructor for a child metric.
    pub fn child(
        name: impl Into<String>,
        unit: Unit,
        description: impl Into<String>,
        parent: MetricId,
    ) -> Self {
        Self {
            name: name.into(),
            unit,
            description: description.into(),
            parent: Some(parent),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundtrip() {
        for u in [Unit::Seconds, Unit::Bytes, Unit::Occurrences] {
            assert_eq!(Unit::from_str_opt(u.as_str()), Some(u));
        }
        assert_eq!(Unit::from_str_opt("parsecs"), None);
    }

    #[test]
    fn unit_display_matches_as_str() {
        assert_eq!(Unit::Seconds.to_string(), "sec");
        assert_eq!(Unit::Bytes.to_string(), "bytes");
        assert_eq!(Unit::Occurrences.to_string(), "occ");
    }

    #[test]
    fn constructors_set_parent() {
        let root = Metric::root("time", Unit::Seconds, "total time");
        assert_eq!(root.parent, None);
        let child = Metric::child("mpi", Unit::Seconds, "MPI time", MetricId::new(0));
        assert_eq!(child.parent, Some(MetricId::new(0)));
        assert_eq!(child.name, "mpi");
    }
}
