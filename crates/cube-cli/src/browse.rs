//! The interactive browser: `cube browse FILE`.
//!
//! Drives the display's two user actions — selecting a node and
//! expanding/collapsing a node — over a read–eval–print loop, so any
//! experiment (original or derived) can be explored exactly like in the
//! paper's GUI. Rows are addressed by the numbers printed in front of
//! them.
//!
//! ```text
//! command        effect
//! m <row>        select the metric-tree row
//! c <row>        select the call-tree row
//! x m <row>      expand/collapse a metric row
//! x c <row>      expand/collapse a call row
//! x s <row>      expand/collapse a system row
//! all | none     expand / collapse everything
//! mode abs|pct   absolute values / percent of root
//! flat | tree    flat-profile / call-tree program view
//! topo <n>       show topology heat view n
//! src            show the source location of the call selection
//! help           this list
//! q              quit
//! ```

use std::fmt::Write as _;
use std::io::BufRead;

use cube_display::{BrowserState, ProgramView, RenderOptions, Row, RowKind, ValueMode};
use cube_model::Experiment;

fn render_numbered(exp: &Experiment, state: &BrowserState, opts: RenderOptions, out: &mut String) {
    let panes: [(&str, Vec<Row>); 3] = [
        ("metric tree", state.metric_rows(exp)),
        ("call tree", state.program_rows(exp)),
        ("system tree", state.system_rows(exp)),
    ];
    for (title, rows) in panes {
        let _ = writeln!(out, "--- {title} ---");
        for (i, row) in rows.iter().enumerate() {
            let sel = if row.selected { '>' } else { ' ' };
            let expander = if row.has_children {
                if row.expanded {
                    '-'
                } else {
                    '+'
                }
            } else {
                ' '
            };
            let value = match state.value_mode {
                ValueMode::Absolute => format!("{:>12.6}", row.value),
                _ => format!("{:>11.1}%", row.value),
            };
            let _ = writeln!(
                out,
                "{i:>3}{sel}{value}{} {}{expander} {}",
                row.shade.relief.marker(),
                "  ".repeat(row.depth),
                row.label
            );
        }
    }
    let _ = opts;
}

/// One step of the REPL: applies `command` to `state`. Returns `false`
/// when the session should end, `Err` for messages shown to the user
/// without ending the session.
fn apply(exp: &Experiment, state: &mut BrowserState, command: &str) -> Result<bool, String> {
    let words: Vec<&str> = command.split_whitespace().collect();
    let row_of = |pane: &str, idx_str: &str| -> Result<Row, String> {
        let idx: usize = idx_str
            .parse()
            .map_err(|_| format!("'{idx_str}' is not a row number"))?;
        let rows = match pane {
            "m" => state.metric_rows(exp),
            "c" => state.program_rows(exp),
            "s" => state.system_rows(exp),
            other => return Err(format!("unknown pane '{other}' (m, c, or s)")),
        };
        rows.get(idx)
            .cloned()
            .ok_or_else(|| format!("row {idx} is not visible"))
    };
    match words.as_slice() {
        [] => Ok(true),
        ["q"] | ["quit"] | ["exit"] => Ok(false),
        ["help"] | ["?"] => Err(
            "commands: m N | c N | x m N | x c N | x s N | all | none | \
                                 mode abs|pct | flat | tree | topo N | src | q"
                .to_string(),
        ),
        ["m", idx] => match row_of("m", idx)?.kind {
            RowKind::Metric(id) => {
                state.select_metric(id);
                Ok(true)
            }
            _ => Err("that row is not a metric".into()),
        },
        ["c", idx] => match row_of("c", idx)?.kind {
            RowKind::Call(id) => {
                state.select_call(id);
                Ok(true)
            }
            _ => Err("selection works on call-tree rows only (switch to 'tree')".into()),
        },
        ["x", pane, idx] => {
            match row_of(pane, idx)?.kind {
                RowKind::Metric(id) => {
                    state.toggle_metric(id);
                }
                RowKind::Call(id) => {
                    state.toggle_call(id);
                }
                RowKind::Machine(id) => {
                    state.toggle_machine(id);
                }
                RowKind::SystemNode(id) => {
                    state.toggle_node(id);
                }
                RowKind::Process(id) => {
                    state.toggle_process(id);
                }
                RowKind::Region(_) | RowKind::Thread(_) => {
                    return Err("that row has nothing to expand".into())
                }
            }
            Ok(true)
        }
        ["all"] => {
            state.expand_all(exp);
            Ok(true)
        }
        ["none"] => {
            state.collapse_all();
            Ok(true)
        }
        ["mode", "abs"] => {
            state.value_mode = ValueMode::Absolute;
            Ok(true)
        }
        ["mode", "pct"] => {
            state.value_mode = ValueMode::Percent;
            Ok(true)
        }
        ["src"] => Err(cube_display::render_source_pane(exp, state)),
        ["flat"] => {
            state.program_view = ProgramView::FlatProfile;
            Ok(true)
        }
        ["tree"] => {
            state.program_view = ProgramView::CallTree;
            Ok(true)
        }
        ["topo", idx] => {
            let idx: usize = idx
                .parse()
                .map_err(|_| format!("'{idx}' is not a topology index"))?;
            match cube_display::render_topology(exp, state, idx, RenderOptions::default()) {
                Some(view) => Err(view), // "message" channel doubles as output
                None => Err(format!("no renderable topology {idx}")),
            }
        }
        other => Err(format!(
            "unknown command {:?} — try 'help'",
            other.join(" ")
        )),
    }
}

/// Runs the browser loop over `input`, collecting everything that would
/// be printed. Separated from stdin/stdout for tests.
pub fn browse(exp: &Experiment, input: impl BufRead, ansi: bool) -> String {
    let opts = RenderOptions {
        ansi,
        ..RenderOptions::default()
    };
    let mut state = BrowserState::new(exp);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "browsing {} — 'help' lists commands, 'q' quits",
        exp.provenance().label()
    );
    render_numbered(exp, &state, opts, &mut out);
    for line in input.lines() {
        let Ok(line) = line else { break };
        match apply(exp, &mut state, &line) {
            Ok(true) => render_numbered(exp, &state, opts, &mut out),
            Ok(false) => break,
            Err(message) => {
                let _ = writeln!(out, "{message}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn sample() -> Experiment {
        let mut b = ExperimentBuilder::new("browse sample");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let mpi = b.def_metric("mpi", Unit::Seconds, "", Some(time));
        let m = b.def_module("a.c", "/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 9);
        let solve_r = b.def_region("solve", m, RegionKind::Function, 2, 8);
        let cs0 = b.def_call_site("a.c", 1, main_r);
        let cs1 = b.def_call_site("a.c", 3, solve_r);
        let root = b.def_call_node(cs0, None);
        let solve = b.def_call_node(cs1, Some(root));
        let ts = single_threaded_system(&mut b, 2);
        for &t in &ts {
            b.set_severity(time, root, t, 1.0);
            b.set_severity(time, solve, t, 3.0);
            b.set_severity(mpi, solve, t, 2.0);
        }
        b.build().unwrap()
    }

    fn run_session(script: &str) -> String {
        browse(&sample(), script.as_bytes(), false)
    }

    #[test]
    fn initial_render_shows_numbered_rows() {
        let out = run_session("q\n");
        assert!(out.contains("browsing browse sample"));
        assert!(out.contains("  0>"), "row 0 selected: {out}");
        assert!(out.contains("+ time"));
    }

    #[test]
    fn expanding_reveals_children() {
        let out = run_session("x m 0\nq\n");
        assert!(out.contains("mpi"), "{out}");
        // After expansion the root shows its exclusive value 8−4=... the
        // sample: time total 8, mpi 4 → exclusive 4.
        let after = out.rsplit("--- metric tree ---").next().unwrap();
        assert!(after.contains("mpi"));
    }

    #[test]
    fn selection_changes_the_call_pane() {
        // Select mpi (row 1 after expanding), expand call tree: only the
        // solve path carries mpi severity.
        let out = run_session("x m 0\nm 1\nx c 0\nq\n");
        let last = out.rsplit("--- call tree ---").next().unwrap();
        let call_pane: String = last
            .lines()
            .take_while(|l| !l.starts_with("---"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(call_pane.contains("solve"));
        assert!(call_pane.contains("4.0"), "{call_pane}");
    }

    #[test]
    fn mode_and_view_switches() {
        let out = run_session("mode pct\nq\n");
        assert!(out.contains("100.0%"), "{out}");
        let out = run_session("flat\nq\n");
        assert!(out.contains("solve"));
    }

    #[test]
    fn errors_do_not_end_the_session() {
        let out = run_session("frobnicate\nx m 99\nmode pct\nq\n");
        assert!(out.contains("unknown command"));
        assert!(out.contains("row 99 is not visible"));
        assert!(out.contains("100.0%"), "session continued: {out}");
    }

    #[test]
    fn src_shows_source_location() {
        let out = run_session("src\nq\n");
        assert!(out.contains("--- source location ---"), "{out}");
        assert!(out.contains("a.c:1 -> main"), "{out}");
    }

    #[test]
    fn help_lists_commands() {
        let out = run_session("help\nq\n");
        assert!(out.contains("mode abs|pct"));
    }

    #[test]
    fn eof_ends_session() {
        let out = browse(&sample(), "".as_bytes(), false);
        assert!(out.contains("metric tree"));
    }
}
