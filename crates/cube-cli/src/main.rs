//! Binary entry point of the `cube` tool.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cube_cli::run(&args) {
        Ok(outcome) => {
            print!("{}", outcome.stdout);
            ExitCode::from(outcome.code.clamp(0, 255) as u8)
        }
        Err(message) => {
            eprintln!("cube: {message}");
            ExitCode::from(2)
        }
    }
}
