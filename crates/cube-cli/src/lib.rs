//! # cube-cli — the `cube` command-line tool
//!
//! Applies the CUBE algebra to `.cube` files from the shell, mirroring
//! the utilities that grew around the original library:
//!
//! ```text
//! cube diff  OLD.cube NEW.cube -o DIFF.cube    # difference operator
//! cube merge A.cube B.cube     -o OUT.cube     # merge operator
//! cube mean  R1.cube R2.cube … -o OUT.cube     # mean operator
//! cube min|max|sum …           -o OUT.cube     # series reductions
//! cube scale A.cube 0.5        -o OUT.cube     # scalar multiple
//! cube cut   A.cube --prune REGION -o OUT.cube # call-tree surgery
//! cube cut   A.cube --reroot REGION -o OUT.cube
//! cube stddev R1.cube R2.cube … -o OUT.cube    # series variability
//! cube stats OUT.cube R1.cube R2.cube …        # batch reduction
//!            [--op mean|sum|min|max|variance|stddev] [--minus K]
//! cube info  A.cube                            # summary
//! cube stat  A.cube                            # per-metric totals
//! cube calltree A.cube [--metric M]            # call tree with values
//! cube hotspots A.cube [--metric M] [--top K]  # top-k severity tuples
//! cube cmp   A.cube B.cube [--tol 1e-9]        # compare (exit code)
//! cube lint  A.cube [B.cube …] [--format json] # static diagnostics
//!            [--deny warnings]                  #   (exit 1 on findings)
//! cube check EXPR A.cubec [B.cubec …]          # static expression analysis
//!            [--format json] [--deny warnings]  #   (metadata only; docs/CHECK.md)
//! cube repair IN.cube OUT.cube                 # salvage a damaged file
//!            # exit 0 = full recovery, 1 = partial, 2 = unrecoverable
//! cube pack   IN.cube OUT.cubec                # re-encode as columnar store
//! cube unpack IN.cubec OUT.cube                # re-encode as CUBE XML
//! cube browse A.cube [--ansi]                  # interactive browser
//! cube view  A.cube [--metric M] [--call R] [--percent]
//!            [--normalize REF.cube] [--expand-all] [--flat] [--ansi]
//!            [--topology N]                     # append a heat view
//! ```
//!
//! Because the algebra is closed, outputs of any subcommand are valid
//! inputs of any other — composite operations are shell pipelines over
//! files.
//!
//! Every subcommand accepts the `.cubec` columnar store (see
//! `docs/STORE.md`) wherever it takes a `.cube` path, for inputs and
//! outputs alike; the format is chosen by file extension. `stats` over
//! `.cubec` operands gathers straight from the store's severity pages
//! ([`cube_store::ColumnarExperiment`]) without materializing
//! intermediate experiments.
//!
//! The n-ary subcommands (`mean`, `sum`, `min`, `max`, `stddev`,
//! `stats`, `merge`) accept `--keep-going`: unreadable operands are
//! skipped with a per-operand summary instead of failing the whole
//! run, and `mean` renormalizes over the survivors
//! ([`cube_algebra::FailurePolicy::KeepGoing`]).
//!
//! The global `--threads N` flag (valid anywhere on the command line,
//! also settable via the `CUBE_THREADS` environment variable) sizes the
//! worker pool used for operand loading and kernel evaluation. Outputs
//! are byte-identical for every thread count.

pub mod browse;

use std::fmt::Write as _;

use cube_algebra::{
    ops, BatchOperand, BatchPlan, CallSiteEq, Expr, FailurePolicy, MergeOptions, PartialOperand,
    Reduction, SystemMergeMode,
};
use cube_display::{BrowserState, NormalizationRef, ProgramView, RenderOptions, ValueMode};
use cube_model::aggregate::{metric_total, MetricSelection};
use cube_model::Experiment;
use cube_store::{ColumnarExperiment, StoreError};
use cube_xml::{read_experiment_file, write_experiment_file, ReadLimits, XmlError};
use rayon::prelude::*;

/// Outcome of a CLI invocation: process exit code plus captured stdout.
#[derive(Debug)]
pub struct Outcome {
    /// Process exit code (0 = success; `cmp` uses 1 for "different").
    pub code: i32,
    /// What would be printed to stdout.
    pub stdout: String,
}

fn ok(stdout: String) -> Result<Outcome, String> {
    Ok(Outcome { code: 0, stdout })
}

/// Runs the tool on the given arguments (without the program name).
///
/// Returns `Err` with a message for usage errors and I/O failures; the
/// binary prints it to stderr and exits nonzero.
pub fn run(args: &[String]) -> Result<Outcome, String> {
    let args = apply_global_flags(args)?;
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "diff" => binary_op(rest, "diff"),
        "merge" => binary_op(rest, "merge"),
        "mean" | "sum" | "min" | "max" | "stddev" => nary_op(rest, cmd),
        "stats" => stats_cmd(rest),
        "scale" => scale(rest),
        "cut" => cut(rest),
        "info" => info(rest),
        "stat" => stat(rest),
        "calltree" => calltree(rest),
        "hotspots" => hotspots_cmd(rest),
        "cmp" => cmp(rest),
        "lint" => lint_cmd(rest),
        "check" => check_cmd(rest),
        "repair" => repair_cmd(rest),
        "fsck" => fsck_cmd(rest),
        "serve" => serve_cmd(rest),
        "pack" => pack_cmd(rest),
        "unpack" => unpack_cmd(rest),
        "view" => view(rest),
        "browse" => browse_cmd(rest),
        "help" | "--help" | "-h" => ok(usage()),
        other => Err(format!("unknown subcommand '{other}'\n\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: cube <diff|merge|mean|sum|min|max|stddev|stats|scale|cut|info|stat|calltree|hotspots|cmp|lint|check|repair|fsck|serve|pack|unpack|view|browse|help> ...\n\
     global flags: --threads N (pool size; default CUBE_THREADS or all cores)\n\
     \x20             --fusion on|off (fused evaluation kernels; default CUBE_FUSION or on)\n\
     paths ending in .cubec use the columnar store format (docs/STORE.md)\n\
     see the crate documentation for per-subcommand flags"
        .to_string()
}

/// Drains the global flags — valid anywhere on the command line, before
/// or after the subcommand — and applies them before dispatch. Returns
/// the remaining arguments.
///
/// `--threads N` retargets the worker pool and wins over the
/// `CUBE_THREADS` / `RAYON_NUM_THREADS` environment variables
/// ([`rayon::set_threads`]). `--fusion on|off` switches the fused
/// evaluation kernels ([`cube_algebra::set_fusion`]), winning over
/// `CUBE_FUSION`. Results never depend on either flag — the pool size
/// changes only wall-clock time, and fused results are byte-identical
/// to unfused ones (docs/KERNELS.md) — which is exactly what the CI
/// differential gate asserts.
fn apply_global_flags(args: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let v = it.next().ok_or("missing value after --threads")?;
            let n: usize = v
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--threads needs a positive integer, got '{v}'"))?;
            rayon::set_threads(n);
        } else if a == "--fusion" {
            let v = it.next().ok_or("missing value after --fusion")?;
            let on = match v.as_str() {
                "on" => true,
                "off" => false,
                other => return Err(format!("--fusion needs 'on' or 'off', got '{other}'")),
            };
            cube_algebra::set_fusion(on);
        } else {
            out.push(a.clone());
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// argument helpers
// ---------------------------------------------------------------------------

struct Parsed {
    positional: Vec<String>,
    output: Option<String>,
    flags: Vec<String>,
    valued: Vec<(String, String)>,
}

const VALUED_FLAGS: &[&str] = &[
    "--normalize",
    "--metric",
    "--call",
    "--tol",
    "--prune",
    "--reroot",
    "--top",
    "--topology",
    "--op",
    "--minus",
    "--format",
    "--deny",
    "--repo",
    "--addr",
    "--port",
    "--workers",
    "--queue",
    "--cache-results",
    "--cache-plans",
    "--cache-handles",
    "--max-body",
    "--delay-ms",
    "--deadline-ms",
    "--header-deadline-ms",
    "--socket-timeout-ms",
    "--retries",
    "--backoff-ms",
    "--breaker",
    "--faults",
];

fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut p = Parsed {
        positional: Vec::new(),
        output: None,
        flags: Vec::new(),
        valued: Vec::new(),
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a == "-o" || a == "--output" {
            let v = it.next().ok_or("missing value after -o")?;
            p.output = Some(v.clone());
        } else if VALUED_FLAGS.contains(&a.as_str()) {
            let v = it
                .next()
                .ok_or_else(|| format!("missing value after {a}"))?;
            p.valued.push((a.clone(), v.clone()));
        } else if a.starts_with("--") {
            p.flags.push(a.clone());
        } else {
            p.positional.push(a.clone());
        }
    }
    Ok(p)
}

impl Parsed {
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.valued
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn merge_options(&self) -> MergeOptions {
        let mut o = MergeOptions::default();
        if self.flag("--strict-csite") {
            o.call_site_eq = CallSiteEq::Strict;
        }
        if self.flag("--collapse") {
            o.system_mode = SystemMergeMode::Collapse;
        }
        if self.flag("--copy-first") {
            o.system_mode = SystemMergeMode::CopyFirst;
        }
        o
    }
}

/// True when the path names a `.cubec` columnar store (case-insensitive
/// extension check); everything else is treated as CUBE XML.
fn is_cubec(path: &str) -> bool {
    std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("cubec"))
}

/// A reader error from either backend, kept structured so the caller
/// can decide how much path context to attach.
enum AnyError {
    Xml(XmlError),
    Store(StoreError),
}

impl AnyError {
    /// The backend's own rendering, for reports that already print the
    /// operand's path next to the reason.
    fn bare(&self) -> String {
        match self {
            AnyError::Xml(e) => e.to_string(),
            AnyError::Store(e) => e.to_string(),
        }
    }

    /// Prefixes the path unless the error already carries it (the I/O
    /// variants do since the readers started reporting offending paths).
    fn with_path(&self, path: &str) -> String {
        match self {
            AnyError::Xml(e @ XmlError::Io { path: Some(_), .. }) => e.to_string(),
            AnyError::Store(e @ StoreError::Io { path: Some(_), .. }) => e.to_string(),
            _ => format!("{path}: {}", self.bare()),
        }
    }
}

fn path_error(path: &str, e: XmlError) -> String {
    AnyError::Xml(e).with_path(path)
}

fn store_path_error(path: &str, e: StoreError) -> String {
    AnyError::Store(e).with_path(path)
}

fn load(path: &str) -> Result<Experiment, String> {
    if is_cubec(path) {
        cube_store::read_store_file(path).map_err(|e| store_path_error(path, e))
    } else {
        read_experiment_file(path).map_err(|e| path_error(path, e))
    }
}

fn store(exp: &Experiment, path: &str) -> Result<(), String> {
    if is_cubec(path) {
        cube_store::write_store_file(exp, path).map_err(|e| store_path_error(path, e))
    } else {
        write_experiment_file(exp, path).map_err(|e| path_error(path, e))
    }
}

/// Loads every input for a degraded k-ary run: broken operands become
/// their error message instead of failing the whole command. Reasons
/// use the bare error rendering — the caller prints them next to the
/// operand's path.
///
/// Operands load on the worker pool; results stay in argument order
/// (positional collect), so the per-operand `--keep-going` reports are
/// index-accurate regardless of thread count.
fn load_partial(paths: &[String]) -> Vec<Result<Experiment, String>> {
    paths
        .par_iter()
        .with_min_len(1)
        .map(|f| {
            if is_cubec(f) {
                cube_store::read_store_file(f).map_err(|e| e.to_string())
            } else {
                read_experiment_file(f).map_err(|e| e.to_string())
            }
        })
        .collect()
}

/// A loaded `stats` operand: XML inputs materialize an [`Experiment`];
/// `.cubec` inputs stay as lazy [`ColumnarExperiment`] handles whose
/// severity pages the batch engine gathers from directly.
enum Operand {
    Xml(Experiment),
    Store(ColumnarExperiment),
}

impl Operand {
    fn as_batch(&self) -> &dyn BatchOperand {
        match self {
            Operand::Xml(e) => e,
            Operand::Store(c) => c,
        }
    }
}

/// Loads one `stats` operand from either backend. `.cubec` severity
/// pages are touched (and CRC-checked) here so page damage surfaces as
/// a per-operand load error, not a panic inside the gather.
fn load_operand(path: &str) -> Result<Operand, AnyError> {
    if is_cubec(path) {
        let c = ColumnarExperiment::open(path).map_err(AnyError::Store)?;
        c.severity().map_err(AnyError::Store)?;
        Ok(Operand::Store(c))
    } else {
        read_experiment_file(path)
            .map(Operand::Xml)
            .map_err(AnyError::Xml)
    }
}

/// Renders the skipped-operand summary lines of a `--keep-going` run.
fn skipped_summary(
    skipped: &[cube_algebra::OperandError],
    paths: &[String],
    used: usize,
) -> String {
    let mut s = String::new();
    for e in skipped {
        let _ = writeln!(s, "skipped {}: {}", paths[e.index], e.reason);
    }
    let _ = writeln!(s, "used {used} of {} inputs", paths.len());
    s
}

// ---------------------------------------------------------------------------
// operator subcommands
// ---------------------------------------------------------------------------

fn binary_op(args: &[String], which: &str) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 2 {
        return Err(format!("cube {which} takes exactly two input files"));
    }
    let opts = p.merge_options();
    let out = p.output.clone().ok_or("missing -o OUTPUT")?;
    if which == "merge" && p.flag("--keep-going") {
        // Degraded merge: a broken operand degrades to a pass-through
        // of the survivor instead of failing the run.
        let loaded = load_partial(&p.positional);
        let (result, summary) = match (&loaded[0], &loaded[1]) {
            (Ok(a), Ok(b)) => (ops::merge_with(a, b, opts), String::new()),
            (Ok(a), Err(reason)) => (
                a.clone(),
                format!(
                    "skipped {}: {reason}\nused 1 of 2 inputs\n",
                    p.positional[1]
                ),
            ),
            (Err(reason), Ok(b)) => (
                b.clone(),
                format!(
                    "skipped {}: {reason}\nused 1 of 2 inputs\n",
                    p.positional[0]
                ),
            ),
            (Err(ra), Err(rb)) => {
                return Err(format!(
                    "both operands are unusable: {}: {ra}; {}: {rb}",
                    p.positional[0], p.positional[1]
                ))
            }
        };
        store(&result, &out)?;
        return ok(format!(
            "{summary}wrote {out}: {}\n",
            result.provenance().label()
        ));
    }
    // The two operands are independent files — fork the loads.
    let (a, b) = rayon::join(|| load(&p.positional[0]), || load(&p.positional[1]));
    let (a, b) = (a?, b?);
    let result = match which {
        "diff" => ops::diff_with(&a, &b, opts),
        "merge" => ops::merge_with(&a, &b, opts),
        _ => unreachable!("binary_op called with {which}"),
    };
    store(&result, &out)?;
    ok(format!("wrote {out}: {}\n", result.provenance().label()))
}

fn reduction_of(name: &str) -> Option<Reduction> {
    Some(match name {
        "mean" => Reduction::Mean,
        "sum" => Reduction::Sum,
        "min" => Reduction::Min,
        "max" => Reduction::Max,
        "variance" => Reduction::Variance,
        "stddev" => Reduction::Stddev,
        _ => return None,
    })
}

fn nary_op(args: &[String], which: &str) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.is_empty() {
        return Err(format!("cube {which} needs at least one input file"));
    }
    let opts = p.merge_options();
    let out = p.output.clone().ok_or("missing -o OUTPUT")?;
    if p.flag("--keep-going") {
        let loaded = load_partial(&p.positional);
        let operands: Vec<PartialOperand<'_>> = loaded
            .iter()
            .map(|r| match r {
                Ok(e) => PartialOperand::Ok(e),
                Err(reason) => PartialOperand::Broken(reason),
            })
            .collect();
        let reduction = reduction_of(which).expect("nary_op reductions all have names");
        let pe = BatchPlan::evaluate_partial(&operands, reduction, opts, FailurePolicy::KeepGoing)
            .map_err(|e| e.to_string())?;
        store(&pe.result, &out)?;
        return ok(format!(
            "{}wrote {out}: {}\n",
            skipped_summary(&pe.skipped, &p.positional, pe.used),
            pe.result.provenance().label()
        ));
    }
    // Parallel load; the leftmost failure wins, matching the order a
    // sequential loop would have reported.
    let exps: Vec<Experiment> = p
        .positional
        .par_iter()
        .with_min_len(1)
        .map(|f| load(f))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&Experiment> = exps.iter().collect();
    let result = match which {
        "mean" => ops::mean_with(&refs, opts),
        "sum" => ops::sum_with(&refs, opts),
        "min" => ops::min_with(&refs, opts),
        "max" => ops::max_with(&refs, opts),
        "stddev" => cube_algebra::stats::stddev_with(&refs, opts),
        _ => unreachable!("nary_op called with {which}"),
    }
    .map_err(|e| e.to_string())?;
    store(&result, &out)?;
    ok(format!("wrote {out}: {}\n", result.provenance().label()))
}

/// `cube stats OUT IN...` — evaluate a batch reduction over a whole
/// series of experiments with one metadata integration
/// ([`cube_algebra::batch::BatchPlan`]).
///
/// `--op` selects the reduction (default `mean`); `--minus K` turns the
/// run into the paper's composite "difference of reduced series": the
/// *last* K inputs form a baseline group, and the output is
/// `diff(op(first n−K), op(last K))` — still a single integration.
fn stats_cmd(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() < 2 {
        return Err("cube stats takes OUTPUT followed by at least one input file".into());
    }
    let (out, inputs) = p.positional.split_first().expect("len checked above");
    let keep_going = p.flag("--keep-going");
    // Parallel load, then a sequential classification pass so the
    // skipped-operand report keeps argument order and the non-degraded
    // mode reports the leftmost failure, exactly like a serial loop.
    let loaded: Vec<Result<Operand, AnyError>> = inputs
        .par_iter()
        .with_min_len(1)
        .map(|f| load_operand(f))
        .collect();
    let mut exps: Vec<Option<Operand>> = Vec::with_capacity(inputs.len());
    let mut skipped: Vec<cube_algebra::OperandError> = Vec::new();
    for (index, (f, r)) in inputs.iter().zip(loaded).enumerate() {
        match r {
            Ok(e) => exps.push(Some(e)),
            Err(e) if keep_going => {
                skipped.push(cube_algebra::OperandError {
                    index,
                    reason: e.bare(),
                });
                exps.push(None);
            }
            Err(e) => return Err(e.with_path(f)),
        }
    }
    let reduction = {
        let name = p.value("--op").unwrap_or("mean");
        reduction_of(name).ok_or_else(|| format!("unknown --op '{name}'"))?
    };
    let n = inputs.len();
    // Survivor counts per group: `--minus K` splits the *original*
    // argument list, so a skipped operand shrinks its own group only.
    let refs: Vec<&dyn BatchOperand> = exps.iter().flatten().map(Operand::as_batch).collect();
    let expr = match p.value("--minus") {
        Some(v) => {
            let k: usize = v.parse().map_err(|_| "bad --minus value".to_string())?;
            if k == 0 || k >= n {
                return Err(format!(
                    "--minus {k} needs 1..{} baseline inputs out of {n}",
                    n - 1
                ));
            }
            let head = exps[..n - k].iter().flatten().count();
            let base = exps[n - k..].iter().flatten().count();
            if head == 0 {
                return Err("--minus: no usable inputs left in the reduced group".into());
            }
            if base == 0 {
                return Err("--minus: no usable inputs left in the baseline group".into());
            }
            Expr::diff(
                Expr::reduce(reduction, 0..head),
                Expr::reduce(reduction, head..head + base),
            )
        }
        None => {
            if refs.is_empty() {
                return Err(format!(
                    "operator '{}' requires at least one operand",
                    reduction.name()
                ));
            }
            Expr::reduce(reduction, 0..refs.len())
        }
    };
    let plan = BatchPlan::from_operands(&refs, p.merge_options());
    let result = plan.eval(&expr).map_err(|e| e.to_string())?;
    store(&result, out)?;
    let summary = if keep_going {
        skipped_summary(&skipped, inputs, refs.len())
    } else {
        String::new()
    };
    ok(format!(
        "{summary}wrote {out}: {}\n",
        result.provenance().label()
    ))
}

fn scale(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 2 {
        return Err("cube scale takes INPUT and FACTOR".into());
    }
    let a = load(&p.positional[0])?;
    let factor: f64 = p.positional[1]
        .parse()
        .map_err(|_| format!("'{}' is not a number", p.positional[1]))?;
    let result = ops::scale(&a, factor);
    let out = p.output.ok_or("missing -o OUTPUT")?;
    store(&result, &out)?;
    ok(format!("wrote {out}: {}\n", result.provenance().label()))
}

fn cut(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 1 {
        return Err("cube cut takes exactly one input file".into());
    }
    let a = load(&p.positional[0])?;
    let find = |region: &str| {
        let md = a.metadata();
        md.call_node_ids()
            .find(|&c| md.region(md.call_node_callee(c)).name == region)
            .ok_or_else(|| format!("no call path with callee '{region}'"))
    };
    let result = match (p.value("--prune"), p.value("--reroot")) {
        (Some(r), None) => cube_algebra::cut::prune(&a, find(r)?),
        (None, Some(r)) => cube_algebra::cut::reroot(&a, find(r)?),
        _ => return Err("cube cut needs exactly one of --prune REGION or --reroot REGION".into()),
    };
    let out = p.output.ok_or("missing -o OUTPUT")?;
    store(&result, &out)?;
    ok(format!("wrote {out}: {}\n", result.provenance().label()))
}

// ---------------------------------------------------------------------------
// inspection subcommands
// ---------------------------------------------------------------------------

fn info(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 1 {
        return Err("cube info takes exactly one input file".into());
    }
    let e = load(&p.positional[0])?;
    let md = e.metadata();
    let mut s = String::new();
    let _ = writeln!(s, "experiment: {}", e.provenance().label());
    let _ = writeln!(
        s,
        "derived:    {}",
        if e.provenance().is_derived() {
            "yes"
        } else {
            "no"
        }
    );
    let _ = writeln!(
        s,
        "metrics:    {} ({} roots)",
        md.num_metrics(),
        md.metric_roots().len()
    );
    let _ = writeln!(
        s,
        "program:    {} modules, {} regions, {} call sites, {} call paths",
        md.modules().len(),
        md.regions().len(),
        md.call_sites().len(),
        md.num_call_nodes()
    );
    let _ = writeln!(
        s,
        "system:     {} machines, {} nodes, {} processes, {} threads",
        md.machines().len(),
        md.nodes().len(),
        md.processes().len(),
        md.num_threads()
    );
    let nonzero = e.severity().iter_nonzero().count();
    let _ = writeln!(
        s,
        "severity:   {} tuples, {} nonzero",
        e.severity().len(),
        nonzero
    );
    ok(s)
}

fn stat(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 1 {
        return Err("cube stat takes exactly one input file".into());
    }
    let e = load(&p.positional[0])?;
    let md = e.metadata();
    let mut s = String::new();
    let _ = writeln!(s, "{:<28} {:>16} {:>9}  unit", "metric", "total", "% root");
    for m in md.metric_ids() {
        let total = metric_total(&e, MetricSelection::inclusive(m));
        let root = md.metric_root_of(m);
        let root_total = metric_total(&e, MetricSelection::inclusive(root));
        let pct = if root_total != 0.0 {
            total / root_total * 100.0
        } else {
            0.0
        };
        let depth = {
            let mut d = 0;
            let mut cur = m;
            while let Some(parent) = md.metric(cur).parent {
                d += 1;
                cur = parent;
            }
            d
        };
        let name = format!("{}{}", "  ".repeat(depth), md.metric(m).name);
        let _ = writeln!(
            s,
            "{name:<28} {total:>16.6} {pct:>8.1}%  {}",
            md.metric(m).unit
        );
    }
    ok(s)
}

fn calltree(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 1 {
        return Err("cube calltree takes exactly one input file".into());
    }
    let e = load(&p.positional[0])?;
    let md = e.metadata();
    let metric = match p.value("--metric") {
        Some(name) => md
            .find_metric(name)
            .ok_or_else(|| format!("no metric named '{name}'"))?,
        None => *md
            .metric_roots()
            .first()
            .ok_or("experiment has no metrics")?,
    };
    let msel = MetricSelection::inclusive(metric);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "call tree of {} (metric '{}', inclusive values)",
        e.provenance().label(),
        md.metric(metric).name
    );
    // Preorder traversal with depth.
    let mut stack: Vec<(cube_model::CallNodeId, usize)> =
        md.call_roots().iter().rev().map(|&c| (c, 0)).collect();
    while let Some((c, depth)) = stack.pop() {
        let value = cube_model::aggregate::call_value(
            &e,
            msel,
            cube_model::aggregate::CallSelection::inclusive(c),
        );
        let _ = writeln!(
            s,
            "{value:>14.6}  {}{}",
            "  ".repeat(depth),
            md.region(md.call_node_callee(c)).name
        );
        for &child in md.call_node_children(c).iter().rev() {
            stack.push((child, depth + 1));
        }
    }
    ok(s)
}

fn hotspots_cmd(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 1 {
        return Err("cube hotspots takes exactly one input file".into());
    }
    let e = load(&p.positional[0])?;
    let md = e.metadata();
    let metric = match p.value("--metric") {
        Some(name) => md
            .find_metric(name)
            .ok_or_else(|| format!("no metric named '{name}'"))?,
        None => *md
            .metric_roots()
            .first()
            .ok_or("experiment has no metrics")?,
    };
    let k: usize = match p.valued.iter().find(|(key, _)| key == "--top") {
        Some((_, v)) => v.parse().map_err(|_| "bad --top value".to_string())?,
        None => 10,
    };
    let spots = cube_algebra::stats::hotspots(&e, metric, k);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "top {} severities of metric '{}' in {}",
        spots.len(),
        md.metric(metric).name,
        e.provenance().label()
    );
    for h in spots {
        let thread = md.thread(h.thread);
        let rank = md.process(thread.process).rank;
        let _ = writeln!(
            s,
            "{:>14.6}  rank {rank} thread {}  {}",
            h.value,
            thread.number,
            md.call_path(h.call_node).join(" / ")
        );
    }
    ok(s)
}

fn browse_cmd(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 1 {
        return Err("cube browse takes exactly one input file".into());
    }
    let e = load(&p.positional[0])?;
    let stdin = std::io::stdin();
    let out = browse::browse(&e, stdin.lock(), p.flag("--ansi"));
    ok(out)
}

fn cmp(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 2 {
        return Err("cube cmp takes exactly two input files".into());
    }
    let a = load(&p.positional[0])?;
    let b = load(&p.positional[1])?;
    let tol: f64 = p
        .value("--tol")
        .unwrap_or("1e-9")
        .parse()
        .map_err(|_| "bad --tol value".to_string())?;
    if a.approx_eq(&b, tol) {
        ok("experiments are equal\n".to_string())
    } else {
        let why = if a.metadata() != b.metadata() {
            "metadata differs"
        } else {
            "severity values differ"
        };
        Ok(Outcome {
            code: 1,
            stdout: format!("experiments differ: {why}\n"),
        })
    }
}

/// `cube lint FILE...` — run the static diagnostics engine over each
/// file and report every finding with its stable rule code.
///
/// Exit code 0 means all files are acceptable, 1 means at least one
/// finding was denied: error-level diagnostics always are, and
/// `--deny warnings` promotes warnings too (the CI mode). Hard usage
/// errors keep the tool-wide exit code 2.
fn lint_cmd(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.is_empty() {
        return Err("cube lint needs at least one input file".into());
    }
    let deny_warnings = match p.value("--deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => return Err(format!("unknown --deny class '{other}' (try 'warnings')")),
    };
    let json = match p.value("--format") {
        None | Some("human") => false,
        Some("json") => true,
        Some(other) => {
            return Err(format!(
                "unknown --format '{other}' (try 'human' or 'json')"
            ))
        }
    };

    let reports: Vec<(&String, cube_model::Report)> = p
        .positional
        .iter()
        .map(|path| {
            let report = if is_cubec(path) {
                cube_store::lint_file(path)
            } else {
                cube_xml::lint_file(path)
            };
            (path, report)
        })
        .collect();
    let total_errors: usize = reports.iter().map(|(_, r)| r.num_errors()).sum();
    let total_warnings: usize = reports.iter().map(|(_, r)| r.num_warnings()).sum();
    let denied = total_errors > 0 || (deny_warnings && total_warnings > 0);

    let mut s = String::new();
    if json {
        s.push_str("{\"files\":[");
        for (i, (path, report)) in reports.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"path\":{},\"diagnostics\":[", json_string(path));
            for (j, d) in report.diagnostics().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"code\":\"{}\",\"level\":\"{}\",\"location\":{},\"message\":{}}}",
                    d.code,
                    d.level(),
                    json_string(&d.location.to_string()),
                    json_string(&d.message)
                );
            }
            let _ = write!(
                s,
                "],\"errors\":{},\"warnings\":{}}}",
                report.num_errors(),
                report.num_warnings()
            );
        }
        let _ = write!(
            s,
            "],\"errors\":{total_errors},\"warnings\":{total_warnings},\"ok\":{}}}",
            !denied
        );
        s.push('\n');
    } else {
        for (path, report) in &reports {
            if report.is_clean() {
                let _ = writeln!(s, "{path}: clean");
            } else {
                let _ = writeln!(s, "{path}: {}", report.summary());
                for d in report.diagnostics() {
                    let _ = writeln!(s, "  {d}");
                }
            }
        }
        let _ = writeln!(
            s,
            "{} file{} checked: {total_errors} error{}, {total_warnings} warning{}",
            reports.len(),
            if reports.len() == 1 { "" } else { "s" },
            if total_errors == 1 { "" } else { "s" },
            if total_warnings == 1 { "" } else { "s" },
        );
    }
    Ok(Outcome {
        code: i32::from(denied),
        stdout: s,
    })
}

/// One operand of `cube check`, opened for metadata only: `.cubec`
/// stores lazily (no severity pages touched), `.cube` XML fully (the
/// text format has no partial read path).
enum CheckedInput {
    Store(ColumnarExperiment),
    Xml(Experiment),
}

impl CheckedInput {
    fn metadata(&self) -> &cube_model::Metadata {
        match self {
            Self::Store(c) => c.metadata(),
            Self::Xml(e) => e.metadata(),
        }
    }
}

/// Whether expression operand `name` refers to operand file `file`:
/// exact path, file name, or file stem (`A` matches `runs/A.cubec`).
fn name_binds_file(name: &str, file: &str) -> bool {
    if name == file {
        return true;
    }
    let path = std::path::Path::new(file);
    path.file_name().is_some_and(|f| f == name) || path.file_stem().is_some_and(|s| s == name)
}

/// `cube check EXPR [OPERAND...]` — static semantic analysis of an
/// algebra expression against **metadata-only** opens of its operand
/// files ([`cube_algebra::check`]). No severity value is read; for
/// `.cubec` operands not a single severity page is touched.
///
/// Expression names bind to the operand files by exact path, file
/// name, or file stem. Diagnostics carry stable `A0xx` codes with byte
/// offsets into the expression (`docs/CHECK.md`); the report includes
/// the canonicalized rewrite and a cost estimate. Flags and exit codes
/// mirror `cube lint`: `--format json`, `--deny warnings`; exit 0 =
/// clean, 1 = findings denied (errors always, warnings only under
/// `--deny warnings`; parse errors count as errors), 2 = usage.
fn check_cmd(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    let Some((expr_src, files)) = p.positional.split_first() else {
        return Err("cube check needs an expression (and its operand files)".into());
    };
    let deny_warnings = match p.value("--deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => return Err(format!("unknown --deny class '{other}' (try 'warnings')")),
    };
    let json = match p.value("--format") {
        None | Some("human") => false,
        Some("json") => true,
        Some(other) => {
            return Err(format!(
                "unknown --format '{other}' (try 'human' or 'json')"
            ))
        }
    };

    let parsed = match cube_algebra::parse_expr(expr_src) {
        Ok(parsed) => parsed,
        Err(e) => {
            // A parse failure is a finding (exit 1), not a usage error:
            // render it in the requested format with its stable P-code.
            let s = if json {
                format!(
                    "{{\"expr\":{},\"diagnostics\":[{{\"code\":\"{}\",\"level\":\"error\",\
                     \"offset\":{},\"len\":0,\"message\":{}}}],\
                     \"errors\":1,\"warnings\":0,\"ok\":false}}\n",
                    json_string(expr_src),
                    e.code,
                    e.offset,
                    json_string(&e.message)
                )
            } else {
                format!("{expr_src}: {e}\n1 expression checked: 1 error, 0 warnings\n")
            };
            return Ok(Outcome { code: 1, stdout: s });
        }
    };

    // Bind each expression operand to at most one provided file.
    let mut bound: Vec<Option<&String>> = Vec::with_capacity(parsed.operands.len());
    for name in &parsed.operands {
        let matches: Vec<&String> = files.iter().filter(|f| name_binds_file(name, f)).collect();
        if matches.len() > 1 {
            return Err(format!(
                "operand '{name}' matches more than one provided file ({})",
                matches
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        bound.push(matches.first().copied());
    }

    // Metadata-only opens of the bound files, one per file.
    let loaded: Vec<Option<Result<CheckedInput, String>>> = files
        .iter()
        .map(|file| {
            bound.contains(&Some(file)).then(|| {
                if is_cubec(file) {
                    ColumnarExperiment::open(file)
                        .map(CheckedInput::Store)
                        .map_err(|e| e.to_string())
                } else {
                    read_experiment_file(file)
                        .map(CheckedInput::Xml)
                        .map_err(|e| e.to_string())
                }
            })
        })
        .collect();

    let mut facts: Vec<cube_algebra::OperandFacts<'_>> = Vec::new();
    for (name, b) in parsed.operands.iter().zip(&bound) {
        let fact = match b {
            Some(file) => {
                let i = files.iter().position(|f| &f == file).unwrap_or(0);
                match &loaded[i] {
                    Some(Ok(input)) => cube_algebra::OperandFacts::known(name, input.metadata()),
                    Some(Err(e)) => cube_algebra::OperandFacts::unknown(name, e.clone()),
                    None => cube_algebra::OperandFacts::unknown(name, "not opened"),
                }
            }
            None => {
                cube_algebra::OperandFacts::unknown(name, "not among the provided operand files")
            }
        };
        facts.push(fact);
    }
    // Provided files no expression name binds to become dead operands.
    for file in files {
        if !bound.contains(&Some(file)) {
            facts.push(cube_algebra::OperandFacts {
                name: file.clone(),
                metadata: None,
                note: None,
            });
        }
    }

    let report = cube_algebra::check(&parsed, &facts);
    let denied = report.denied(deny_warnings);
    let mut s = String::new();
    if json {
        s.push_str(&report.to_json(expr_src));
        s.push('\n');
    } else {
        if report.diagnostics.is_empty() {
            let _ = writeln!(s, "{expr_src}: clean");
        } else {
            let _ = writeln!(
                s,
                "{expr_src}: {} error{}, {} warning{}",
                report.num_errors(),
                if report.num_errors() == 1 { "" } else { "s" },
                report.num_warnings(),
                if report.num_warnings() == 1 { "" } else { "s" },
            );
            for d in &report.diagnostics {
                let _ = writeln!(s, "  {d}");
            }
        }
        if report.rewritten_text != report.canonical {
            let rules: Vec<&str> = report.rewrites.iter().map(|n| n.rule).collect();
            let _ = writeln!(
                s,
                "rewritten: {} [{}]",
                report.rewritten_text,
                rules.join(", ")
            );
        }
        let c = &report.cost;
        let _ = writeln!(
            s,
            "cost: operands={} resolved={} nodes={} reductions={} values={} pages={}",
            c.operands, c.known, c.nodes, c.reductions, c.values, c.pages
        );
        if let Some(f) = &c.fused {
            let _ = writeln!(
                s,
                "fused: single-pass kernel, instrs={} regs={} loads={}",
                f.instrs, f.regs, f.loads
            );
        }
        let _ = writeln!(
            s,
            "1 expression checked: {} error{}, {} warning{}",
            report.num_errors(),
            if report.num_errors() == 1 { "" } else { "s" },
            report.num_warnings(),
            if report.num_warnings() == 1 { "" } else { "s" },
        );
    }
    Ok(Outcome {
        code: i32::from(denied),
        stdout: s,
    })
}

/// `cube repair IN OUT` — salvage a damaged `.cube` file, relint the
/// recovered experiment, and atomically rewrite it.
///
/// Exit codes distinguish the recovery grades: 0 = the input was fully
/// intact (the output is a clean rewrite), 1 = partial recovery (the
/// longest valid prefix was written, provenance marks it `recovered`),
/// 2 = unrecoverable (no complete metadata; nothing written).
fn repair_cmd(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 2 {
        return Err("cube repair takes INPUT and OUTPUT".into());
    }
    let (input, output) = (&p.positional[0], &p.positional[1]);
    if is_cubec(input) {
        return repair_store(input, output);
    }
    // Inside a serve repository, recovery provenance names the stable
    // repository-relative object path instead of whatever absolute or
    // temporary path the file was read from.
    let origin = cube_serve::repo_relative_origin(std::path::Path::new(input));
    let (exp, report) = match cube_xml::read_experiment_salvage_file_as(input, origin.as_deref()) {
        Ok(pair) => pair,
        // Not being able to read the file at all is a usage-level
        // failure; "unrecoverable" is reserved for files we read but
        // whose metadata cannot be completed.
        Err(e @ XmlError::Io { .. }) => return Err(path_error(input, e)),
        Err(e) => {
            return Ok(Outcome {
                code: 2,
                stdout: format!("{input}: unrecoverable: {e}\n"),
            })
        }
    };
    let relint = exp.lint();
    store(&exp, output)?;
    let mut s = String::new();
    if report.complete {
        let _ = writeln!(s, "{input}: fully recovered; wrote {output}");
    } else {
        let _ = writeln!(s, "{input}: partial recovery; wrote {output}");
        if let Some(loss) = &report.loss {
            let _ = writeln!(s, "  loss: {loss}");
        }
        if let Some(ctx) = &report.context {
            let _ = writeln!(s, "  context: {ctx}");
        }
        let _ = writeln!(s, "  severity rows recovered: {}", report.rows_recovered);
        if report.checksum.is_mismatch() {
            let _ = writeln!(s, "  checksum: recorded footer does not match the document");
        }
    }
    let _ = writeln!(s, "  relint: {}", relint.summary());
    Ok(Outcome {
        code: i32::from(!report.complete),
        stdout: s,
    })
}

/// The `.cubec` arm of `cube repair`: same exit-code grades, but loss
/// is counted in severity chunks (the store's recovery unit) instead
/// of rows.
fn repair_store(input: &str, output: &str) -> Result<Outcome, String> {
    let origin = cube_serve::repo_relative_origin(std::path::Path::new(input));
    let (exp, report) =
        match cube_store::salvage_store_file_as(input, origin.as_deref(), &ReadLimits::default()) {
            Ok(pair) => pair,
            Err(e @ StoreError::Io { .. }) => return Err(store_path_error(input, e)),
            Err(e) => {
                return Ok(Outcome {
                    code: 2,
                    stdout: format!("{input}: unrecoverable: {e}\n"),
                })
            }
        };
    let relint = exp.lint();
    store(&exp, output)?;
    let mut s = String::new();
    if report.complete {
        let _ = writeln!(s, "{input}: fully recovered; wrote {output}");
    } else {
        let _ = writeln!(s, "{input}: partial recovery; wrote {output}");
        if let Some(loss) = &report.loss {
            let _ = writeln!(s, "  loss: {loss}");
        }
        if let Some(ctx) = &report.context {
            let _ = writeln!(s, "  context: {ctx}");
        }
        let _ = writeln!(
            s,
            "  severity chunks recovered: {} of {}",
            report.chunks_recovered, report.chunks_total
        );
        if report.checksum.is_mismatch() {
            let _ = writeln!(s, "  checksum: recorded footer does not match the file");
        }
    }
    let _ = writeln!(s, "  relint: {}", relint.summary());
    Ok(Outcome {
        code: i32::from(!report.complete),
        stdout: s,
    })
}

/// `cube fsck REPO [--format json]` — walk a serve repository and
/// verify every stored object offline, without booting a server.
///
/// Each `objects/<hh>/<id>.cubec` entry is read strictly through the
/// store reader (section and severity-chunk CRCs included) and its
/// bytes are re-hashed; the verdicts are:
///
/// - `ok` — decodes cleanly and the bytes hash to the file's own name
/// - `corrupt` — the strict reader rejected the file (error)
/// - `misnamed` — decodes cleanly but hashes to a different id, or
///   sits in the wrong shard directory (error)
///
/// Anything else found under `objects/` — orphaned ingest temp files,
/// foreign files, odd directories — is a warning. Exit codes grade the
/// repository lint-style: 0 = clean, 1 = warnings only, 2 = errors
/// (including "not a repository at all").
fn fsck_cmd(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 1 {
        return Err("cube fsck takes exactly one repository directory".into());
    }
    let json = match p.value("--format") {
        None | Some("human") => false,
        Some("json") => true,
        Some(other) => {
            return Err(format!(
                "unknown --format '{other}' (try 'human' or 'json')"
            ))
        }
    };
    let root = std::path::Path::new(&p.positional[0]);
    if !root.join(cube_serve::REPO_MARKER).exists() {
        let msg = format!(
            "{}: not a repository (no {} marker)",
            root.display(),
            cube_serve::REPO_MARKER
        );
        let stdout = if json {
            format!(
                "{{\"root\":{},\"entries\":[],\"checked\":0,\"errors\":1,\"warnings\":0,\"ok\":false,\"detail\":{}}}\n",
                json_string(&p.positional[0]),
                json_string(&msg)
            )
        } else {
            format!("{msg}\n")
        };
        return Ok(Outcome { code: 2, stdout });
    }

    // verdict, repo-relative path, detail ("" = none); level is derived
    // from the verdict so human and JSON renderings cannot disagree.
    let mut entries: Vec<(&'static str, String, String)> = Vec::new();
    let limits = ReadLimits::default();
    let mut shards: Vec<std::fs::DirEntry> = std::fs::read_dir(root.join("objects"))
        .map_err(|e| format!("{}: {e}", root.join("objects").display()))?
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", root.display()))?;
    shards.sort_by_key(|d| d.file_name());
    for shard in shards {
        let shard_name = shard.file_name().to_string_lossy().into_owned();
        let rel_shard = format!("objects/{shard_name}");
        if !shard.path().is_dir() {
            entries.push((
                "stray",
                rel_shard,
                "file where a shard directory belongs".into(),
            ));
            continue;
        }
        let two_hex = shard_name.len() == 2
            && shard_name
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase());
        if !two_hex {
            entries.push((
                "stray",
                rel_shard,
                "not a two-hex-digit shard directory".into(),
            ));
            continue;
        }
        let mut files: Vec<std::fs::DirEntry> = std::fs::read_dir(shard.path())
            .map_err(|e| format!("{}: {e}", shard.path().display()))?
            .collect::<Result<_, _>>()
            .map_err(|e| format!("{}: {e}", shard.path().display()))?;
        files.sort_by_key(|d| d.file_name());
        for f in files {
            let name = f.file_name().to_string_lossy().into_owned();
            let rel = format!("{rel_shard}/{name}");
            if name.starts_with(".tmp-") {
                entries.push((
                    "temp",
                    rel,
                    "orphaned ingest temp file (the server sweeps these at startup)".into(),
                ));
                continue;
            }
            let Some(stem) = name.strip_suffix(".cubec") else {
                entries.push(("stray", rel, "not a .cubec object".into()));
                continue;
            };
            let id_shaped = stem.len() == 16
                && stem
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase());
            if !id_shaped {
                entries.push((
                    "stray",
                    rel,
                    "file name is not a 16-hex-digit content id".into(),
                ));
                continue;
            }
            let bytes = match std::fs::read(f.path()) {
                Ok(b) => b,
                Err(e) => {
                    entries.push(("corrupt", rel, format!("unreadable: {e}")));
                    continue;
                }
            };
            if let Err(e) = cube_store::read_store(&bytes, &limits) {
                entries.push(("corrupt", rel, e.to_string()));
                continue;
            }
            let actual = cube_serve::content_id(&bytes);
            if actual != stem {
                entries.push((
                    "misnamed",
                    rel,
                    format!("content hashes to {actual}, not the file's own name"),
                ));
            } else if stem[..2] != shard_name {
                entries.push((
                    "misnamed",
                    rel,
                    format!(
                        "stored in shard {shard_name}, but id {stem} belongs in {}",
                        &stem[..2]
                    ),
                ));
            } else {
                entries.push(("ok", rel, String::new()));
            }
        }
    }

    let errors = entries
        .iter()
        .filter(|(v, _, _)| matches!(*v, "corrupt" | "misnamed"))
        .count();
    let warnings = entries
        .iter()
        .filter(|(v, _, _)| matches!(*v, "stray" | "temp"))
        .count();
    let checked = entries.iter().filter(|(v, _, _)| *v == "ok").count() + errors;
    let code = if errors > 0 {
        2
    } else {
        i32::from(warnings > 0)
    };

    let mut s = String::new();
    if json {
        let _ = write!(
            s,
            "{{\"root\":{},\"entries\":[",
            json_string(&p.positional[0])
        );
        for (i, (verdict, path, detail)) in entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let level = match *verdict {
                "ok" => "ok",
                "stray" | "temp" => "warning",
                _ => "error",
            };
            let _ = write!(
                s,
                "{{\"path\":{},\"verdict\":\"{verdict}\",\"level\":\"{level}\",\"detail\":{}}}",
                json_string(path),
                json_string(detail)
            );
        }
        let _ = write!(
            s,
            "],\"checked\":{checked},\"errors\":{errors},\"warnings\":{warnings},\"ok\":{}}}",
            errors == 0
        );
        s.push('\n');
    } else {
        for (verdict, path, detail) in &entries {
            if detail.is_empty() {
                let _ = writeln!(s, "{path}: {verdict}");
            } else {
                let _ = writeln!(s, "{path}: {verdict}: {detail}");
            }
        }
        let _ = writeln!(
            s,
            "{checked} object{} checked: {errors} error{}, {warnings} warning{}",
            if checked == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        );
    }
    Ok(Outcome { code, stdout: s })
}

/// `cube serve --repo DIR [--addr A] [--port P] [--workers N]
/// [--queue N] [--cache-results N] [--cache-plans N]
/// [--cache-handles N] [--max-body BYTES] [--delay-ms MS]
/// [--deadline-ms MS] [--header-deadline-ms MS] [--socket-timeout-ms MS]
/// [--retries N] [--backoff-ms MS] [--breaker N]` — run the
/// analysis server over a sharded experiment repository until SIGTERM
/// or SIGINT, then drain in-flight requests and exit 0.
///
/// Prints `listening on ADDR:PORT` (flushed) as soon as the socket is
/// bound, so scripts using `--port 0` can discover the ephemeral port.
/// `--delay-ms` is a test hook that stalls each request, letting the
/// stress harness fill the admission queue deterministically.
fn serve_cmd(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if !p.positional.is_empty() {
        return Err("cube serve takes no positional arguments".into());
    }
    if let Some(flag) = p.flags.first() {
        return Err(format!("unknown flag {flag} for cube serve"));
    }
    let mut config = cube_serve::ServeConfig::default();
    let mut repo: Option<String> = None;
    let num = |flag: &str, value: &str| -> Result<usize, String> {
        value
            .parse::<usize>()
            .map_err(|_| format!("{flag} needs a non-negative integer, got '{value}'"))
    };
    for (flag, value) in &p.valued {
        match flag.as_str() {
            "--repo" => repo = Some(value.clone()),
            "--addr" => config.addr = value.clone(),
            "--port" => {
                config.port = value
                    .parse()
                    .map_err(|_| format!("--port needs a port number, got '{value}'"))?;
            }
            "--workers" => config.workers = num(flag, value)?.max(1),
            "--queue" => config.queue_depth = num(flag, value)?.max(1),
            "--cache-results" => config.result_cache = num(flag, value)?,
            "--cache-plans" => config.plan_cache = num(flag, value)?,
            "--cache-handles" => config.handle_cache = num(flag, value)?,
            "--max-body" => config.max_body = num(flag, value)?,
            "--delay-ms" => config.delay_ms = num(flag, value)? as u64,
            "--deadline-ms" => config.request_deadline_ms = num(flag, value)? as u64,
            "--header-deadline-ms" => config.header_deadline_ms = num(flag, value)? as u64,
            "--socket-timeout-ms" => config.socket_timeout_ms = num(flag, value)? as u64,
            "--retries" => config.read_retries = num(flag, value)?.max(1) as u32,
            "--backoff-ms" => config.backoff_base_ms = num(flag, value)? as u64,
            "--breaker" => config.breaker_threshold = num(flag, value)? as u32,
            "--faults" => config.faults = Some(value.clone()),
            other => return Err(format!("unknown flag {other} for cube serve")),
        }
    }
    // The fault schedule is a test/CI hook, deliberately absent from
    // usage output; the environment variable lets harnesses enable it
    // without touching the command line the gate under test builds.
    if config.faults.is_none() {
        if let Ok(spec) = std::env::var("CUBE_FAULTS") {
            if !spec.is_empty() {
                config.faults = Some(spec);
            }
        }
    }
    let repo = repo.ok_or("cube serve needs --repo DIR")?;
    cube_serve::install_signal_handlers();
    let server =
        cube_serve::start(config, std::path::Path::new(&repo)).map_err(|e| e.to_string())?;
    {
        use std::io::Write as _;
        let mut out = std::io::stdout();
        let _ = writeln!(out, "listening on {}", server.local_addr());
        let _ = out.flush();
    }
    while !cube_serve::signaled() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    server.shutdown();
    server.join();
    ok("shutdown complete; drained in-flight requests\n".to_string())
}

/// `cube pack IN OUT` — re-encode an experiment (either format) into
/// the `.cubec` columnar store, whatever OUT's extension says.
fn pack_cmd(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 2 {
        return Err("cube pack takes INPUT and OUTPUT".into());
    }
    let (input, output) = (&p.positional[0], &p.positional[1]);
    let e = load(input)?;
    cube_store::write_store_file(&e, output).map_err(|err| store_path_error(output, err))?;
    ok(format!("wrote {output}: {}\n", e.provenance().label()))
}

/// `cube unpack IN OUT` — re-encode a `.cubec` store as CUBE XML,
/// whatever OUT's extension says. Strict read: a damaged store is an
/// error here (use `cube repair` to salvage).
fn unpack_cmd(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 2 {
        return Err("cube unpack takes INPUT and OUTPUT".into());
    }
    let (input, output) = (&p.positional[0], &p.positional[1]);
    let e = cube_store::read_store_file(input).map_err(|err| store_path_error(input, err))?;
    write_experiment_file(&e, output).map_err(|err| path_error(output, err))?;
    ok(format!("wrote {output}: {}\n", e.provenance().label()))
}

/// Minimal JSON string encoder (the format has no other JSON needs, so
/// no serializer dependency).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn view(args: &[String]) -> Result<Outcome, String> {
    let p = parse(args)?;
    if p.positional.len() != 1 {
        return Err("cube view takes exactly one input file".into());
    }
    let e = load(&p.positional[0])?;
    let mut state = BrowserState::new(&e);
    if p.flag("--expand-all") {
        state.expand_all(&e);
    }
    if let Some(m) = p.value("--metric") {
        if !state.select_metric_by_name(&e, m) {
            return Err(format!("no metric named '{m}'"));
        }
    }
    if let Some(r) = p.value("--call") {
        if !state.select_call_by_region(&e, r) {
            return Err(format!("no call path with callee '{r}'"));
        }
    }
    if p.flag("--flat") {
        state.program_view = ProgramView::FlatProfile;
    }
    if let Some(reference) = p.value("--normalize") {
        let r = load(reference)?;
        state.value_mode = ValueMode::PercentNormalized(NormalizationRef::from_experiment(&r));
    } else if p.flag("--percent") {
        state.value_mode = ValueMode::Percent;
    }
    let opts = RenderOptions {
        ansi: p.flag("--ansi"),
        ..RenderOptions::default()
    };
    let mut out = cube_display::render_view(&e, &state, opts);
    if let Some(idx) = p.value("--topology") {
        let idx: usize = idx
            .parse()
            .map_err(|_| "bad --topology index".to_string())?;
        match cube_display::render_topology(&e, &state, idx, opts) {
            Some(view) => {
                out.push('\n');
                out.push_str(&view);
            }
            None => return Err(format!("experiment has no renderable topology {idx}")),
        }
    }
    ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};
    use std::path::PathBuf;

    fn sample(value: f64) -> Experiment {
        let mut b = ExperimentBuilder::new(format!("cli sample {value}"));
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a.c", "/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 9);
        let solve_r = b.def_region("solve", m, RegionKind::Function, 2, 8);
        let cs0 = b.def_call_site("a.c", 1, main_r);
        let cs1 = b.def_call_site("a.c", 3, solve_r);
        let root = b.def_call_node(cs0, None);
        let solve = b.def_call_node(cs1, Some(root));
        let ts = single_threaded_system(&mut b, 2);
        for &t in &ts {
            b.set_severity(time, root, t, value);
            b.set_severity(time, solve, t, value * 2.0);
        }
        b.build().unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cube_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn args(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn write_sample(name: &str, value: f64) -> String {
        let path = tmp(name);
        write_experiment_file(&sample(value), &path).unwrap();
        path.to_string_lossy().into_owned()
    }

    /// Drops the checksum footer so a hand-edited document is judged
    /// on its content instead of failing with E204.
    fn strip_footer(text: &str) -> String {
        match text.find("<!-- cube:crc32") {
            Some(i) => text[..i].to_string(),
            None => text.to_string(),
        }
    }

    #[test]
    fn diff_then_info() {
        let a = write_sample("a.cube", 5.0);
        let b = write_sample("b.cube", 3.0);
        let out = tmp("d.cube").to_string_lossy().into_owned();
        let r = run(&args(&["diff", &a, &b, "-o", &out])).unwrap();
        assert_eq!(r.code, 0);
        let d = read_experiment_file(&out).unwrap();
        assert!(d.provenance().is_derived());
        assert_eq!(d.severity().values(), &[2.0, 2.0, 4.0, 4.0]);

        let info = run(&args(&["info", &out])).unwrap();
        assert!(info.stdout.contains("derived:    yes"));
        assert!(info.stdout.contains("2 processes"));
    }

    #[test]
    fn mean_and_cmp_roundtrip() {
        let a = write_sample("m1.cube", 2.0);
        let b = write_sample("m2.cube", 4.0);
        let c = write_sample("m3.cube", 3.0);
        let out = tmp("mean.cube").to_string_lossy().into_owned();
        run(&args(&["mean", &a, &b, &c, "-o", &out])).unwrap();
        // mean(2,4,3) == 3 → equal to the value-3 sample except provenance.
        let r = run(&args(&["cmp", &out, &c])).unwrap();
        assert_eq!(r.code, 0, "{}", r.stdout);

        let r = run(&args(&["cmp", &out, &a])).unwrap();
        assert_eq!(r.code, 1);
        assert!(r.stdout.contains("differ"));
    }

    #[test]
    fn min_max_sum_scale() {
        let a = write_sample("x1.cube", 2.0);
        let b = write_sample("x2.cube", 4.0);
        let lo = tmp("lo.cube").to_string_lossy().into_owned();
        let hi = tmp("hi.cube").to_string_lossy().into_owned();
        let s = tmp("s.cube").to_string_lossy().into_owned();
        let half = tmp("half.cube").to_string_lossy().into_owned();
        run(&args(&["min", &a, &b, "-o", &lo])).unwrap();
        run(&args(&["max", &a, &b, "-o", &hi])).unwrap();
        run(&args(&["sum", &a, &b, "-o", &s])).unwrap();
        run(&args(&["scale", &s, "0.5", "-o", &half])).unwrap();
        assert_eq!(
            read_experiment_file(&lo).unwrap().severity().values()[0],
            2.0
        );
        assert_eq!(
            read_experiment_file(&hi).unwrap().severity().values()[0],
            4.0
        );
        assert_eq!(
            read_experiment_file(&s).unwrap().severity().values()[0],
            6.0
        );
        assert_eq!(
            read_experiment_file(&half).unwrap().severity().values()[0],
            3.0
        );
    }

    #[test]
    fn stat_lists_metrics() {
        let a = write_sample("stat.cube", 1.0);
        let r = run(&args(&["stat", &a])).unwrap();
        assert!(r.stdout.contains("time"));
        assert!(r.stdout.contains("100.0%"));
        assert!(r.stdout.contains("sec"));
    }

    #[test]
    fn view_renders_three_panes() {
        let a = write_sample("view.cube", 1.0);
        let r = run(&args(&["view", &a, "--expand-all", "--percent"])).unwrap();
        assert!(r.stdout.contains("--- metric tree ---"));
        assert!(r.stdout.contains("solve"));
        assert!(r.stdout.contains('%'));
        // Selection flags work.
        let r = run(&args(&["view", &a, "--call", "solve"])).unwrap();
        assert!(r.stdout.contains("call path 'solve'"));
        assert!(run(&args(&["view", &a, "--metric", "nope"])).is_err());
    }

    #[test]
    fn view_normalized_against_reference() {
        let a = write_sample("na.cube", 1.0);
        let reference = write_sample("nref.cube", 2.0);
        let r = run(&args(&["view", &a, "--normalize", &reference])).unwrap();
        assert!(r.stdout.contains("normalized"));
        // a's total (6) over the reference total (12) = 50%.
        assert!(r.stdout.contains("50.0%"), "{}", r.stdout);
    }

    #[test]
    fn cut_prune_and_reroot() {
        let a = write_sample("cut.cube", 1.0);
        let pruned = tmp("pruned.cube").to_string_lossy().into_owned();
        run(&args(&["cut", &a, "--prune", "main", "-o", &pruned])).unwrap();
        let e = read_experiment_file(&pruned).unwrap();
        assert_eq!(e.metadata().num_call_nodes(), 1);
        // Totals preserved by prune: 2 ranks * (1 + 2).
        assert_eq!(e.severity().values().iter().sum::<f64>(), 6.0);

        let rerooted = tmp("rerooted.cube").to_string_lossy().into_owned();
        run(&args(&["cut", &a, "--reroot", "solve", "-o", &rerooted])).unwrap();
        let e = read_experiment_file(&rerooted).unwrap();
        assert_eq!(e.metadata().num_call_nodes(), 1);
        assert_eq!(e.severity().values().iter().sum::<f64>(), 4.0);

        assert!(run(&args(&["cut", &a, "-o", &pruned])).is_err());
        assert!(run(&args(&["cut", &a, "--prune", "ghost", "-o", &pruned])).is_err());
    }

    #[test]
    fn calltree_prints_inclusive_values() {
        let a = write_sample("tree.cube", 1.0);
        let r = run(&args(&["calltree", &a])).unwrap();
        let lines: Vec<&str> = r.stdout.lines().collect();
        assert!(lines[0].contains("metric 'time'"));
        // main (inclusive 1+2 per rank × 2 ranks = 6), solve (4).
        assert!(lines[1].contains("6.000000") && lines[1].contains("main"));
        assert!(lines[2].contains("4.000000") && lines[2].contains("solve"));
        assert!(run(&args(&["calltree", &a, "--metric", "nope"])).is_err());
    }

    #[test]
    fn hotspots_lists_top_tuples() {
        let a = write_sample("hot.cube", 1.0);
        let r = run(&args(&["hotspots", &a, "--top", "2"])).unwrap();
        assert!(r.stdout.contains("top 2"));
        assert!(r.stdout.contains("main / solve"));
        // Largest tuples first (solve rows carry 2.0).
        let first_value_line = r.stdout.lines().nth(1).unwrap();
        assert!(first_value_line.trim_start().starts_with("2.0"));
    }

    #[test]
    fn stddev_subcommand_writes_variability_experiment() {
        let a = write_sample("sd1.cube", 2.0);
        let b = write_sample("sd2.cube", 4.0);
        let out = tmp("sd.cube").to_string_lossy().into_owned();
        run(&args(&["stddev", &a, &b, "-o", &out])).unwrap();
        let e = read_experiment_file(&out).unwrap();
        // Values 2 vs 4 → stddev 1; solve rows 4 vs 8 → stddev 2.
        assert_eq!(e.severity().values(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn stats_default_op_is_mean() {
        let a = write_sample("bs1.cube", 2.0);
        let b = write_sample("bs2.cube", 4.0);
        let out = tmp("bs_mean.cube").to_string_lossy().into_owned();
        let r = run(&args(&["stats", &out, &a, &b])).unwrap();
        assert!(r.stdout.contains("mean"));
        let e = read_experiment_file(&out).unwrap();
        assert_eq!(e.severity().values(), &[3.0, 3.0, 6.0, 6.0]);
    }

    #[test]
    fn stats_op_selection_matches_nary_subcommands() {
        let a = write_sample("bo1.cube", 2.0);
        let b = write_sample("bo2.cube", 4.0);
        for op in ["mean", "sum", "min", "max", "variance", "stddev"] {
            let out = tmp(&format!("bo_{op}.cube")).to_string_lossy().into_owned();
            run(&args(&["stats", &out, &a, &b, "--op", op])).unwrap();
            let e = read_experiment_file(&out).unwrap();
            e.validate().unwrap();
            assert!(e.provenance().label().starts_with(op), "{op}");
        }
        assert!(run(&args(&["stats", "x.cube", &a, "--op", "median"])).is_err());
    }

    #[test]
    fn stats_minus_computes_difference_of_group_reductions() {
        let a1 = write_sample("g1.cube", 4.0);
        let a2 = write_sample("g2.cube", 6.0);
        let b1 = write_sample("g3.cube", 2.0);
        let out = tmp("g_diff.cube").to_string_lossy().into_owned();
        // diff(mean(a1, a2), mean(b1)): 5 − 2 = 3 on root rows.
        let r = run(&args(&["stats", &out, &a1, &a2, &b1, "--minus", "1"])).unwrap();
        assert!(r.stdout.contains("difference(mean("));
        let e = read_experiment_file(&out).unwrap();
        assert_eq!(e.severity().values(), &[3.0, 3.0, 6.0, 6.0]);
        // The baseline group must be a proper, nonempty split.
        assert!(run(&args(&["stats", &out, &a1, &b1, "--minus", "2"])).is_err());
        assert!(run(&args(&["stats", &out, &a1, &b1, "--minus", "0"])).is_err());
        assert!(run(&args(&["stats", &out, &a1, &b1, "--minus", "x"])).is_err());
    }

    #[test]
    fn lint_clean_file_exits_zero() {
        let a = write_sample("lint_ok.cube", 1.0);
        let r = run(&args(&["lint", &a])).unwrap();
        assert_eq!(r.code, 0);
        assert!(r.stdout.contains("clean"), "{}", r.stdout);
        assert!(r.stdout.contains("0 errors, 0 warnings"), "{}", r.stdout);
    }

    #[test]
    fn lint_reports_errors_and_exits_one() {
        let a = write_sample("lint_nan_src.cube", 1.0);
        let text =
            strip_footer(&std::fs::read_to_string(&a).unwrap()).replace("1</row>", "NaN</row>");
        let bad = tmp("lint_nan.cube");
        std::fs::write(&bad, text).unwrap();
        let bad = bad.to_string_lossy().into_owned();
        let r = run(&args(&["lint", &bad])).unwrap();
        assert_eq!(r.code, 1);
        assert!(r.stdout.contains("error[E016]"), "{}", r.stdout);
    }

    #[test]
    fn lint_deny_warnings_promotes_exit_code() {
        let a = write_sample("lint_warn_src.cube", 1.0);
        let text = strip_footer(&std::fs::read_to_string(&a).unwrap()).replace(
            "</program>",
            "<module id=\"1\" name=\"dead.c\" path=\"/dead.c\"/></program>",
        );
        let warn = tmp("lint_warn.cube");
        std::fs::write(&warn, text).unwrap();
        let warn = warn.to_string_lossy().into_owned();
        let r = run(&args(&["lint", &warn])).unwrap();
        assert_eq!(r.code, 0, "{}", r.stdout);
        assert!(r.stdout.contains("warning[W003]"), "{}", r.stdout);
        let r = run(&args(&["lint", &warn, "--deny", "warnings"])).unwrap();
        assert_eq!(r.code, 1);
    }

    #[test]
    fn lint_json_output() {
        let a = write_sample("lint_json_ok.cube", 1.0);
        let missing = "/nonexistent/lint.cube";
        let r = run(&args(&["lint", &a, missing, "--format", "json"])).unwrap();
        assert_eq!(r.code, 1);
        assert!(r.stdout.starts_with("{\"files\":["), "{}", r.stdout);
        assert!(r.stdout.contains("\"code\":\"E100\""), "{}", r.stdout);
        assert!(r.stdout.contains("\"ok\":false"), "{}", r.stdout);
        assert!(r.stdout.trim_end().ends_with('}'), "{}", r.stdout);
    }

    #[test]
    fn lint_usage_errors() {
        assert!(run(&args(&["lint"])).is_err());
        let a = write_sample("lint_flag.cube", 1.0);
        assert!(run(&args(&["lint", &a, "--deny", "everything"])).is_err());
        assert!(run(&args(&["lint", &a, "--format", "xml"])).is_err());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn threads_flag_is_global_and_validated() {
        let prev = rayon::current_num_threads();
        let a = write_sample("thr_a.cube", 2.0);
        let b = write_sample("thr_b.cube", 4.0);
        let out = tmp("thr_out.cube").to_string_lossy().into_owned();
        // Accepted before or after the subcommand; result is unchanged.
        let r = run(&args(&["--threads", "2", "mean", &a, &b, "-o", &out])).unwrap();
        assert_eq!(r.code, 0, "{}", r.stdout);
        assert_eq!(rayon::current_num_threads(), 2);
        let r = run(&args(&["mean", &a, &b, "--threads", "1", "-o", &out])).unwrap();
        assert_eq!(r.code, 0, "{}", r.stdout);
        assert_eq!(rayon::current_num_threads(), 1);
        let e = read_experiment_file(&out).unwrap();
        assert_eq!(e.severity().values(), &[3.0, 3.0, 6.0, 6.0]);
        // Bad values are usage errors.
        assert!(run(&args(&["mean", &a, &b, "--threads", "0", "-o", &out])).is_err());
        assert!(run(&args(&["mean", &a, &b, "--threads", "lots", "-o", &out])).is_err());
        assert!(run(&args(&["mean", &a, &b, "-o", &out, "--threads"])).is_err());
        rayon::set_threads(prev);
    }

    #[test]
    fn usage_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&["diff", "only-one.cube"])).is_err());
        assert!(run(&args(&["mean"])).is_err());
        assert!(run(&args(&["stats", "only-output.cube"])).is_err());
        assert!(run(&args(&["scale", "a.cube", "not-a-number", "-o", "x"])).is_err());
        let help = run(&args(&["help"])).unwrap();
        assert!(help.stdout.contains("usage"));
    }

    #[test]
    fn missing_file_reports_path() {
        let err = run(&args(&["info", "/nonexistent/foo.cube"])).unwrap_err();
        assert!(err.contains("/nonexistent/foo.cube"));
    }

    #[test]
    fn merge_options_flags_accepted() {
        let a = write_sample("opt_a.cube", 1.0);
        let b = write_sample("opt_b.cube", 2.0);
        let out = tmp("opt_out.cube").to_string_lossy().into_owned();
        run(&args(&[
            "diff",
            &a,
            &b,
            "--strict-csite",
            "--collapse",
            "-o",
            &out,
        ]))
        .unwrap();
        let e = read_experiment_file(&out).unwrap();
        assert_eq!(e.metadata().machines().len(), 1);
    }

    /// Writes a sample file, then truncates it shortly after the last
    /// `<row` so salvage recovers a proper prefix.
    fn write_truncated(name: &str, value: f64) -> String {
        let src = write_sample(&format!("{name}_src.cube"), value);
        let text = std::fs::read_to_string(&src).unwrap();
        let cut = text.rfind("<row").unwrap() + 6;
        let path = tmp(name);
        std::fs::write(&path, &text[..cut]).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn repair_intact_file_exits_zero() {
        let a = write_sample("rep_ok.cube", 1.0);
        let out = tmp("rep_ok_out.cube").to_string_lossy().into_owned();
        let r = run(&args(&["repair", &a, &out])).unwrap();
        assert_eq!(r.code, 0, "{}", r.stdout);
        assert!(r.stdout.contains("fully recovered"), "{}", r.stdout);
        let e = read_experiment_file(&out).unwrap();
        assert!(e.provenance().is_original());
    }

    #[test]
    fn repair_truncated_file_exits_one_and_marks_provenance() {
        let bad = write_truncated("rep_cut.cube", 2.0);
        let out = tmp("rep_cut_out.cube").to_string_lossy().into_owned();
        let r = run(&args(&["repair", &bad, &out])).unwrap();
        assert_eq!(r.code, 1, "{}", r.stdout);
        assert!(r.stdout.contains("partial recovery"), "{}", r.stdout);
        assert!(r.stdout.contains("relint:"), "{}", r.stdout);
        let e = read_experiment_file(&out).unwrap();
        assert!(e.provenance().is_recovered());
        // The repaired file itself lints clean.
        let lint = run(&args(&["lint", &out])).unwrap();
        assert_eq!(lint.code, 0, "{}", lint.stdout);
    }

    #[test]
    fn repair_headless_file_exits_two() {
        let src = write_sample("rep_headless_src.cube", 1.0);
        let text = std::fs::read_to_string(&src).unwrap();
        let cut = text.find("<program").unwrap();
        let headless = tmp("rep_headless.cube");
        std::fs::write(&headless, &text[..cut]).unwrap();
        let headless = headless.to_string_lossy().into_owned();
        let out = tmp("rep_headless_out.cube").to_string_lossy().into_owned();
        let r = run(&args(&["repair", &headless, &out])).unwrap();
        assert_eq!(r.code, 2, "{}", r.stdout);
        assert!(r.stdout.contains("unrecoverable"), "{}", r.stdout);
        assert!(!std::path::Path::new(&out).exists());
        // An unreadable input is a hard usage-level error (exit 2 via Err).
        assert!(run(&args(&["repair", "/nonexistent/in.cube", &out])).is_err());
        assert!(run(&args(&["repair", &headless])).is_err());
    }

    #[test]
    fn keep_going_mean_matches_mean_of_survivors() {
        let a = write_sample("kg1.cube", 2.0);
        let b = write_sample("kg2.cube", 4.0);
        let broken = write_truncated("kg_broken.cube", 9.0);
        let degraded = tmp("kg_deg.cube").to_string_lossy().into_owned();
        let oracle = tmp("kg_oracle.cube").to_string_lossy().into_owned();
        let r = run(&args(&[
            "mean",
            &a,
            &broken,
            &b,
            "--keep-going",
            "-o",
            &degraded,
        ]))
        .unwrap();
        assert!(r.stdout.contains("skipped"), "{}", r.stdout);
        assert!(r.stdout.contains("used 2 of 3 inputs"), "{}", r.stdout);
        run(&args(&["mean", &a, &b, "-o", &oracle])).unwrap();
        let cmp = run(&args(&["cmp", &degraded, &oracle])).unwrap();
        assert_eq!(cmp.code, 0, "{}", cmp.stdout);
        // Without the flag the same run fails.
        assert!(run(&args(&["mean", &a, &broken, &b, "-o", &degraded])).is_err());
        // All operands broken is still an error.
        assert!(run(&args(&["mean", &broken, "--keep-going", "-o", &degraded])).is_err());
    }

    #[test]
    fn keep_going_merge_passes_through_survivor() {
        let a = write_sample("kgm.cube", 3.0);
        let broken = write_truncated("kgm_broken.cube", 1.0);
        let out = tmp("kgm_out.cube").to_string_lossy().into_owned();
        let r = run(&args(&["merge", &a, &broken, "--keep-going", "-o", &out])).unwrap();
        assert!(r.stdout.contains("used 1 of 2 inputs"), "{}", r.stdout);
        let cmp = run(&args(&["cmp", &out, &a])).unwrap();
        assert_eq!(cmp.code, 0, "{}", cmp.stdout);
        assert!(run(&args(&[
            "merge",
            &broken,
            &broken,
            "--keep-going",
            "-o",
            &out
        ]))
        .is_err());
    }

    #[test]
    fn pack_unpack_roundtrip_preserves_experiment() {
        let a = write_sample("pk.cube", 5.0);
        let packed = tmp("pk.cubec").to_string_lossy().into_owned();
        let unpacked = tmp("pk_back.cube").to_string_lossy().into_owned();
        let r = run(&args(&["pack", &a, &packed])).unwrap();
        assert_eq!(r.code, 0, "{}", r.stdout);
        let r = run(&args(&["unpack", &packed, &unpacked])).unwrap();
        assert_eq!(r.code, 0, "{}", r.stdout);
        // The XML -> cubec -> XML roundtrip is byte-identical: both
        // writers are canonical.
        assert_eq!(
            std::fs::read(&a).unwrap(),
            std::fs::read(&unpacked).unwrap()
        );
        assert!(run(&args(&["pack", &a])).is_err());
        assert!(run(&args(&["unpack", &a, &unpacked])).is_err());
    }

    #[test]
    fn cubec_accepted_everywhere_a_cube_is() {
        let a = write_sample("cc_a.cube", 2.0);
        let b = write_sample("cc_b.cube", 4.0);
        let ac = tmp("cc_a.cubec").to_string_lossy().into_owned();
        let bc = tmp("cc_b.cubec").to_string_lossy().into_owned();
        run(&args(&["pack", &a, &ac])).unwrap();
        run(&args(&["pack", &b, &bc])).unwrap();
        // info/stat/lint read the store directly.
        let r = run(&args(&["info", &ac])).unwrap();
        assert!(r.stdout.contains("2 processes"), "{}", r.stdout);
        let r = run(&args(&["lint", &ac])).unwrap();
        assert_eq!(r.code, 0, "{}", r.stdout);
        // Operators mix backends and write either format.
        let out_xml = tmp("cc_mean.cube").to_string_lossy().into_owned();
        let out_store = tmp("cc_mean.cubec").to_string_lossy().into_owned();
        run(&args(&["mean", &ac, &b, "-o", &out_xml])).unwrap();
        run(&args(&["mean", &a, &bc, "-o", &out_store])).unwrap();
        let cmp = run(&args(&["cmp", &out_xml, &out_store])).unwrap();
        assert_eq!(cmp.code, 0, "{}", cmp.stdout);
        let e = read_experiment_file(&out_xml).unwrap();
        assert_eq!(e.severity().values(), &[3.0, 3.0, 6.0, 6.0]);
    }

    #[test]
    fn stats_gathers_from_cubec_operands() {
        let a = write_sample("sg_a.cube", 2.0);
        let b = write_sample("sg_b.cube", 4.0);
        let ac = tmp("sg_a.cubec").to_string_lossy().into_owned();
        let bc = tmp("sg_b.cubec").to_string_lossy().into_owned();
        run(&args(&["pack", &a, &ac])).unwrap();
        run(&args(&["pack", &b, &bc])).unwrap();
        let from_xml = tmp("sg_xml.cube").to_string_lossy().into_owned();
        let from_store = tmp("sg_store.cube").to_string_lossy().into_owned();
        run(&args(&["stats", &from_xml, &a, &b])).unwrap();
        run(&args(&["stats", &from_store, &ac, &bc])).unwrap();
        // Same reduction from either backend, byte-identical output.
        assert_eq!(
            std::fs::read(&from_xml).unwrap(),
            std::fs::read(&from_store).unwrap()
        );
        // --keep-going skips a missing store operand like an XML one.
        let r = run(&args(&[
            "stats",
            &from_store,
            &ac,
            "/nonexistent/gone.cubec",
            &bc,
            "--keep-going",
        ]))
        .unwrap();
        assert!(r.stdout.contains("used 2 of 3 inputs"), "{}", r.stdout);
    }

    #[test]
    fn repair_cubec_zeroes_damaged_chunk_and_exits_one() {
        let a = write_sample("rs.cube", 3.0);
        let packed = tmp("rs.cubec").to_string_lossy().into_owned();
        run(&args(&["pack", &a, &packed])).unwrap();
        // Flip one byte in the severity pages (the last section before
        // the 16-byte footer).
        let mut bytes = std::fs::read(&packed).unwrap();
        let n = bytes.len();
        bytes[n - 24] ^= 0xff;
        std::fs::write(&packed, &bytes).unwrap();
        let out = tmp("rs_out.cubec").to_string_lossy().into_owned();
        let r = run(&args(&["repair", &packed, &out])).unwrap();
        assert_eq!(r.code, 1, "{}", r.stdout);
        assert!(r.stdout.contains("partial recovery"), "{}", r.stdout);
        assert!(
            r.stdout.contains("severity chunks recovered: 0 of 1"),
            "{}",
            r.stdout
        );
        assert!(
            r.stdout.contains("context: severity chunk 0"),
            "{}",
            r.stdout
        );
        let e = load(&out).unwrap();
        assert!(e.provenance().is_recovered());
        assert!(e.severity().values().iter().all(|&v| v == 0.0));
        // An intact store repairs to exit 0.
        let ok_in = tmp("rs_ok.cubec").to_string_lossy().into_owned();
        let ok_out = tmp("rs_ok_out.cubec").to_string_lossy().into_owned();
        run(&args(&["pack", &a, &ok_in])).unwrap();
        let r = run(&args(&["repair", &ok_in, &ok_out])).unwrap();
        assert_eq!(r.code, 0, "{}", r.stdout);
    }

    #[test]
    fn repair_in_repository_reports_relative_origin() {
        // An object damaged inside a serve repository salvages with the
        // stable repository-relative path in its recovery note, not the
        // absolute path the repair happened to read.
        let root = tmp("origin_repo");
        let repo = cube_serve::Repository::open_or_init(&root, cube_xml::ReadLimits::default(), 4)
            .unwrap();
        let ingested = repo.ingest(&cube_store::write_store(&sample(5.0))).unwrap();
        let object = repo.object_path(&ingested.id);
        let mut bytes = std::fs::read(&object).unwrap();
        let n = bytes.len();
        bytes[n - 24] ^= 0xff;
        std::fs::write(&object, &bytes).unwrap();

        let out = tmp("origin_out.cubec").to_string_lossy().into_owned();
        let object_str = object.to_string_lossy().into_owned();
        let r = run(&args(&["repair", &object_str, &out])).unwrap();
        assert_eq!(r.code, 1, "{}", r.stdout);
        let repaired = load(&out).unwrap();
        let cube_model::Provenance::Recovered { note, .. } = repaired.provenance() else {
            panic!(
                "expected recovered provenance, got {:?}",
                repaired.provenance()
            );
        };
        let relative = cube_serve::Repository::relative_object_path(&ingested.id);
        assert!(
            note.starts_with(&format!("{relative}: ")),
            "note should lead with the repository-relative path: {note}"
        );
        assert!(
            !note.contains(&object_str),
            "note must not leak the absolute path: {note}"
        );

        // Outside a repository the note keeps its unprefixed form.
        let plain = tmp("origin_plain.cubec").to_string_lossy().into_owned();
        std::fs::write(&plain, std::fs::read(&object).unwrap()).unwrap();
        let out2 = tmp("origin_plain_out.cubec").to_string_lossy().into_owned();
        let r = run(&args(&["repair", &plain, &out2])).unwrap();
        assert_eq!(r.code, 1, "{}", r.stdout);
        let cube_model::Provenance::Recovered {
            note: plain_note, ..
        } = load(&out2).unwrap().provenance().clone()
        else {
            panic!("expected recovered provenance");
        };
        assert_eq!(
            format!("{relative}: {plain_note}"),
            *note,
            "origin must be a pure prefix over the default note"
        );
    }

    #[test]
    fn repair_xml_reports_damage_context() {
        let bad = write_truncated("ctx_cut.cube", 2.0);
        let out = tmp("ctx_out.cube").to_string_lossy().into_owned();
        let r = run(&args(&["repair", &bad, &out])).unwrap();
        assert_eq!(r.code, 1, "{}", r.stdout);
        assert!(
            r.stdout
                .contains("context: severity matrix for metric 'time'"),
            "{}",
            r.stdout
        );
    }

    #[test]
    fn keep_going_stats_minus_tracks_groups() {
        let a1 = write_sample("kgs1.cube", 4.0);
        let a2 = write_sample("kgs2.cube", 6.0);
        let broken = write_truncated("kgs_broken.cube", 8.0);
        let b1 = write_sample("kgs3.cube", 2.0);
        let out = tmp("kgs_out.cube").to_string_lossy().into_owned();
        // Head group loses the broken operand: diff(mean(a1, a2), mean(b1)).
        let r = run(&args(&[
            "stats",
            &out,
            &a1,
            &broken,
            &a2,
            &b1,
            "--minus",
            "1",
            "--keep-going",
        ]))
        .unwrap();
        assert!(r.stdout.contains("used 3 of 4 inputs"), "{}", r.stdout);
        let e = read_experiment_file(&out).unwrap();
        assert_eq!(e.severity().values(), &[3.0, 3.0, 6.0, 6.0]);
        // A group emptied by skipping is an error, not a silent zero.
        assert!(run(&args(&[
            "stats",
            &out,
            &a1,
            &broken,
            "--minus",
            "1",
            "--keep-going"
        ]))
        .is_err());
    }

    /// Builds a throwaway repository with one valid object, returning
    /// (root, valid object id).
    fn fsck_repo(name: &str) -> (PathBuf, String) {
        let root = tmp(name);
        let _ = std::fs::remove_dir_all(&root);
        let bytes = cube_store::write_store(&sample(4.0));
        let id = cube_serve::content_id(&bytes);
        let shard = root.join("objects").join(&id[..2]);
        std::fs::create_dir_all(&shard).unwrap();
        std::fs::write(
            root.join(cube_serve::REPO_MARKER),
            "cube experiment repository v1\n",
        )
        .unwrap();
        std::fs::write(shard.join(format!("{id}.cubec")), &bytes).unwrap();
        (root, id)
    }

    #[test]
    fn fsck_clean_repository_exits_zero() {
        let (root, id) = fsck_repo("fsck_clean");
        let r = run(&args(&["fsck", root.to_str().unwrap()])).unwrap();
        assert_eq!(r.code, 0, "{}", r.stdout);
        assert!(r
            .stdout
            .contains(&format!("objects/{}/{id}.cubec: ok", &id[..2])));
        assert!(r.stdout.contains("1 object checked: 0 errors, 0 warnings"));
    }

    #[test]
    fn fsck_grades_corrupt_misnamed_and_temp_files() {
        let (root, id) = fsck_repo("fsck_dirty");
        let shard = root.join("objects").join(&id[..2]);
        // Orphaned ingest temp file → warning.
        std::fs::write(shard.join(".tmp-999-1"), b"half an upload").unwrap();
        // Valid container stored under the wrong name → misnamed error.
        let bytes = cube_store::write_store(&sample(7.0));
        std::fs::create_dir_all(root.join("objects/aa")).unwrap();
        std::fs::write(root.join("objects/aa/aaaaaaaaaaaaaaaa.cubec"), &bytes).unwrap();
        // Flipped byte in the severity region → corrupt error.
        let mut broken = cube_store::write_store(&sample(9.0));
        let flip = broken.len() / 2;
        broken[flip] ^= 0xFF;
        let broken_id = cube_serve::content_id(&broken);
        let bshard = root.join("objects").join(&broken_id[..2]);
        std::fs::create_dir_all(&bshard).unwrap();
        std::fs::write(bshard.join(format!("{broken_id}.cubec")), &broken).unwrap();

        let r = run(&args(&["fsck", root.to_str().unwrap()])).unwrap();
        assert_eq!(r.code, 2, "{}", r.stdout);
        assert!(r.stdout.contains("misnamed"), "{}", r.stdout);
        assert!(r.stdout.contains("corrupt"), "{}", r.stdout);
        assert!(r.stdout.contains(".tmp-999-1: temp"), "{}", r.stdout);

        let j = run(&args(&["fsck", root.to_str().unwrap(), "--format", "json"])).unwrap();
        assert_eq!(j.code, 2);
        assert!(
            j.stdout.contains("\"verdict\":\"misnamed\""),
            "{}",
            j.stdout
        );
        assert!(j.stdout.contains("\"verdict\":\"corrupt\""), "{}", j.stdout);
        assert!(
            j.stdout
                .contains("\"errors\":2,\"warnings\":1,\"ok\":false"),
            "{}",
            j.stdout
        );
    }

    #[test]
    fn fsck_warnings_only_exits_one_and_rejects_non_repositories() {
        let (root, _) = fsck_repo("fsck_warn");
        std::fs::write(root.join("objects").join("notes.txt"), b"hi").unwrap();
        let r = run(&args(&["fsck", root.to_str().unwrap()])).unwrap();
        assert_eq!(r.code, 1, "{}", r.stdout);
        assert!(
            r.stdout.contains("objects/notes.txt: stray"),
            "{}",
            r.stdout
        );

        let plain = tmp("fsck_not_repo");
        std::fs::create_dir_all(&plain).unwrap();
        let r = run(&args(&["fsck", plain.to_str().unwrap()])).unwrap();
        assert_eq!(r.code, 2);
        assert!(r.stdout.contains("not a repository"), "{}", r.stdout);
    }
}
