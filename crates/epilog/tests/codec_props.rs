//! Property tests: the binary codec round-trips arbitrary traces, and
//! decoding never panics on corrupted input.

use proptest::prelude::*;

use epilog::{
    decode_trace, encode_trace, CollectiveOp, CounterDef, Event, EventKind, Location, RegionDef,
    Trace, TraceDefs,
};

fn arb_collective() -> impl Strategy<Value = CollectiveOp> {
    prop_oneof![
        Just(CollectiveOp::Barrier),
        Just(CollectiveOp::AllToAll),
        Just(CollectiveOp::AllReduce),
        Just(CollectiveOp::Broadcast),
        Just(CollectiveOp::Reduce),
    ]
}

prop_compose! {
    fn arb_defs()(
        machine in "[a-zA-Z0-9 _-]{0,12}",
        nodes in 1usize..4,
        ranks in 1usize..6,
        region_names in proptest::collection::vec("[a-zA-Z_][a-zA-Z0-9_]{0,10}", 1..6),
        counters in proptest::collection::vec("[A-Z_]{1,12}", 0..3),
    ) -> TraceDefs {
        TraceDefs {
            machine_name: machine,
            node_names: (0..nodes).map(|n| format!("node{n}")).collect(),
            locations: (0..ranks)
                .map(|r| Location { rank: r as i32, thread: 0, node_index: (r % nodes) as u32 })
                .collect(),
            regions: region_names
                .into_iter()
                .enumerate()
                .map(|(i, name)| RegionDef { name, file: format!("f{i}.c"), line: i as u32 })
                .collect(),
            counters: counters.into_iter().map(|name| CounterDef { name }).collect(),
            topology: if ranks % 2 == 0 {
                Some(epilog::TopologyDef {
                    name: "grid".into(),
                    dims: vec![ranks as u32 / 2, 2],
                    periodic: vec![false, true],
                    coords: (0..ranks)
                        .map(|r| (r as i32, vec![r as u32 / 2, r as u32 % 2]))
                        .collect(),
                })
            } else {
                None
            },
        }
    }
}

fn arb_kind(nregions: u32, ranks: i32) -> impl Strategy<Value = EventKind> {
    prop_oneof![
        (0..nregions).prop_map(|region| EventKind::Enter { region }),
        (0..nregions).prop_map(|region| EventKind::Exit { region }),
        (0..ranks, any::<i32>(), any::<u64>()).prop_map(|(dest, tag, bytes)| EventKind::MpiSend {
            dest,
            tag,
            bytes
        }),
        (0..ranks, any::<i32>(), any::<u64>())
            .prop_map(|(source, tag, bytes)| EventKind::MpiRecv { source, tag, bytes }),
        (arb_collective(), any::<u64>(), -1i32..8)
            .prop_map(|(op, bytes, root)| EventKind::CollectiveExit { op, bytes, root }),
    ]
}

prop_compose! {
    fn arb_trace()(defs in arb_defs())(
        kinds in proptest::collection::vec(
            arb_kind(defs.regions.len() as u32, defs.locations.len() as i32),
            0..40,
        ),
        times in proptest::collection::vec(0.0f64..1e6, 0..40),
        locs in proptest::collection::vec(0u32..8, 0..40),
        counter_vals in proptest::collection::vec(any::<u64>(), 0..40),
        defs in Just(defs),
    ) -> Trace {
        let ncnt = defs.counters.len();
        let nloc = defs.locations.len() as u32;
        let mut t = Trace::new(defs);
        for (i, kind) in kinds.into_iter().enumerate() {
            let mut e = Event::new(
                times.get(i).copied().unwrap_or(0.0),
                locs.get(i).copied().unwrap_or(0) % nloc,
                kind,
            );
            e.counters = (0..ncnt)
                .map(|c| counter_vals.get((i + c) % counter_vals.len().max(1)).copied().unwrap_or(0))
                .collect();
            t.push(e);
        }
        t
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode/decode is the identity on arbitrary traces (valid or not —
    /// the codec is structure-agnostic; validation is separate).
    #[test]
    fn codec_roundtrip(trace in arb_trace()) {
        let bytes = encode_trace(&trace);
        let back = decode_trace(bytes).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Truncating an encoded trace anywhere yields an error, never a
    /// panic or a silent success.
    #[test]
    fn truncation_always_errors(trace in arb_trace(), frac in 0.0f64..1.0) {
        let bytes = encode_trace(&trace).to_vec();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_trace(bytes::Bytes::from(bytes[..cut].to_vec())).is_err());
        }
    }

    /// Flipping one byte never panics (it may or may not error —
    /// a flipped severity byte is still a valid trace).
    #[test]
    fn corruption_never_panics(trace in arb_trace(), pos in any::<prop::sample::Index>(), delta in 1u8..=255) {
        let mut bytes = encode_trace(&trace).to_vec();
        if !bytes.is_empty() {
            let i = pos.index(bytes.len());
            bytes[i] = bytes[i].wrapping_add(delta);
            let _ = decode_trace(bytes::Bytes::from(bytes));
        }
    }

    /// Stats are invariant under codec round-trip.
    #[test]
    fn stats_survive_roundtrip(trace in arb_trace()) {
        let back = decode_trace(encode_trace(&trace)).unwrap();
        prop_assert_eq!(back.stats(), trace.stats());
    }
}
