//! The in-memory trace container, validation, and statistics.

use crate::defs::TraceDefs;
use crate::error::EpilogError;
use crate::event::{Event, EventKind};

/// A complete event trace: definitions plus events.
///
/// Events are stored in recording order. Within one location timestamps
/// must be non-decreasing; across locations no global order is required
/// (each process records independently).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Trace {
    /// Definition records.
    pub defs: TraceDefs,
    /// Event records in recording order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace over the given definitions.
    pub fn new(defs: TraceDefs) -> Self {
        Self {
            defs,
            events: Vec::new(),
        }
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Events of one location, in order.
    pub fn events_of(&self, location: u32) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.location == location)
    }

    /// Checks structural invariants:
    ///
    /// * every event's location and region indices are in range;
    /// * per location, timestamps are non-decreasing;
    /// * per location, enter/exit events are properly nested and every
    ///   exit names the region currently on top of the stack;
    /// * counter value counts match the counter definitions;
    /// * counter values are non-decreasing per location (they are
    ///   accumulations).
    pub fn validate(&self) -> Result<(), EpilogError> {
        let nloc = self.defs.locations.len();
        let nreg = self.defs.regions.len();
        let ncnt = self.defs.counters.len();
        let mut last_time = vec![f64::NEG_INFINITY; nloc];
        let mut stacks: Vec<Vec<u32>> = vec![Vec::new(); nloc];
        let mut last_counters: Vec<Vec<u64>> = vec![vec![0; ncnt]; nloc];

        for (i, e) in self.events.iter().enumerate() {
            let loc = e.location as usize;
            if loc >= nloc {
                return Err(EpilogError::Invalid(format!(
                    "event {i} refers to location {loc}, trace has {nloc}"
                )));
            }
            if e.time < last_time[loc] {
                return Err(EpilogError::Invalid(format!(
                    "event {i} at location {loc} goes back in time ({} < {})",
                    e.time, last_time[loc]
                )));
            }
            last_time[loc] = e.time;
            if e.counters.len() != ncnt {
                return Err(EpilogError::Invalid(format!(
                    "event {i} carries {} counter values, trace defines {ncnt}",
                    e.counters.len()
                )));
            }
            for (c, (&v, last)) in e
                .counters
                .iter()
                .zip(last_counters[loc].iter_mut())
                .enumerate()
            {
                if v < *last {
                    return Err(EpilogError::Invalid(format!(
                        "event {i}: counter {c} decreases at location {loc}"
                    )));
                }
                *last = v;
            }
            match &e.kind {
                EventKind::Enter { region } => {
                    if *region as usize >= nreg {
                        return Err(EpilogError::Invalid(format!(
                            "event {i} enters unknown region {region}"
                        )));
                    }
                    stacks[loc].push(*region);
                }
                EventKind::Exit { region } => match stacks[loc].pop() {
                    Some(top) if top == *region => {}
                    Some(top) => {
                        return Err(EpilogError::Invalid(format!(
                            "event {i} exits region {region} but region {top} is open"
                        )))
                    }
                    None => {
                        return Err(EpilogError::Invalid(format!(
                            "event {i} exits region {region} with empty call stack"
                        )))
                    }
                },
                EventKind::MpiSend { dest, .. } => {
                    if !self.defs.locations.iter().any(|l| l.rank == *dest) {
                        return Err(EpilogError::Invalid(format!(
                            "event {i} sends to unknown rank {dest}"
                        )));
                    }
                }
                EventKind::MpiRecv { source, .. } => {
                    if !self.defs.locations.iter().any(|l| l.rank == *source) {
                        return Err(EpilogError::Invalid(format!(
                            "event {i} receives from unknown rank {source}"
                        )));
                    }
                }
                EventKind::CollectiveExit { .. } => {}
            }
        }
        for (loc, stack) in stacks.iter().enumerate() {
            if !stack.is_empty() {
                return Err(EpilogError::Invalid(format!(
                    "location {loc} ends with {} unclosed region(s)",
                    stack.len()
                )));
            }
        }
        Ok(())
    }

    /// Summary statistics.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats {
            num_locations: self.defs.locations.len(),
            num_events: self.events.len(),
            ..TraceStats::default()
        };
        for e in &self.events {
            match e.kind {
                EventKind::Enter { .. } => s.enters += 1,
                EventKind::Exit { .. } => s.exits += 1,
                EventKind::MpiSend { bytes, .. } => {
                    s.sends += 1;
                    // Saturate: hostile or corrupt traces may carry
                    // absurd byte counts, and statistics must not abort.
                    s.bytes_sent = s.bytes_sent.saturating_add(bytes);
                }
                EventKind::MpiRecv { .. } => s.recvs += 1,
                EventKind::CollectiveExit { .. } => s.collectives += 1,
            }
            s.end_time = s.end_time.max(e.time);
        }
        s
    }
}

/// Aggregate statistics of a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Number of measurement locations.
    pub num_locations: usize,
    /// Total event count.
    pub num_events: usize,
    /// Region-enter events.
    pub enters: usize,
    /// Region-exit events.
    pub exits: usize,
    /// Point-to-point sends.
    pub sends: usize,
    /// Point-to-point receives.
    pub recvs: usize,
    /// Collective completions.
    pub collectives: usize,
    /// Total payload bytes sent point-to-point.
    pub bytes_sent: u64,
    /// Largest timestamp.
    pub end_time: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs::{RegionDef, TraceDefs};
    use crate::event::CollectiveOp;

    fn defs() -> TraceDefs {
        let mut d = TraceDefs::pure_mpi("m", 2, 1);
        d.regions.push(RegionDef {
            name: "main".into(),
            file: "a.c".into(),
            line: 1,
        });
        d.regions.push(RegionDef {
            name: "MPI_Send".into(),
            file: "mpi".into(),
            line: 0,
        });
        d
    }

    fn valid_trace() -> Trace {
        let mut t = Trace::new(defs());
        t.push(Event::new(0.0, 0, EventKind::Enter { region: 0 }));
        t.push(Event::new(0.1, 0, EventKind::Enter { region: 1 }));
        t.push(Event::new(
            0.15,
            0,
            EventKind::MpiSend {
                dest: 1,
                tag: 7,
                bytes: 1024,
            },
        ));
        t.push(Event::new(0.2, 0, EventKind::Exit { region: 1 }));
        t.push(Event::new(1.0, 0, EventKind::Exit { region: 0 }));
        t.push(Event::new(0.0, 1, EventKind::Enter { region: 0 }));
        t.push(Event::new(
            0.3,
            1,
            EventKind::MpiRecv {
                source: 0,
                tag: 7,
                bytes: 1024,
            },
        ));
        t.push(Event::new(
            0.9,
            1,
            EventKind::CollectiveExit {
                op: CollectiveOp::Barrier,
                bytes: 0,
                root: -1,
            },
        ));
        t.push(Event::new(1.0, 1, EventKind::Exit { region: 0 }));
        t
    }

    #[test]
    fn valid_trace_validates() {
        valid_trace().validate().unwrap();
    }

    #[test]
    fn stats_count_event_kinds() {
        let s = valid_trace().stats();
        assert_eq!(s.num_events, 9);
        assert_eq!(s.enters, 3);
        assert_eq!(s.exits, 3);
        assert_eq!(s.sends, 1);
        assert_eq!(s.recvs, 1);
        assert_eq!(s.collectives, 1);
        assert_eq!(s.bytes_sent, 1024);
        assert_eq!(s.end_time, 1.0);
        assert_eq!(s.num_locations, 2);
    }

    #[test]
    fn time_regression_rejected() {
        let mut t = valid_trace();
        t.push(Event::new(0.5, 0, EventKind::Enter { region: 0 }));
        assert!(t.validate().is_err());
    }

    #[test]
    fn unbalanced_stack_rejected() {
        let mut t = Trace::new(defs());
        t.push(Event::new(0.0, 0, EventKind::Enter { region: 0 }));
        assert!(t.validate().is_err()); // unclosed
        let mut t = Trace::new(defs());
        t.push(Event::new(0.0, 0, EventKind::Exit { region: 0 }));
        assert!(t.validate().is_err()); // empty-stack exit
    }

    #[test]
    fn crossed_exit_rejected() {
        let mut t = Trace::new(defs());
        t.push(Event::new(0.0, 0, EventKind::Enter { region: 0 }));
        t.push(Event::new(0.1, 0, EventKind::Enter { region: 1 }));
        t.push(Event::new(0.2, 0, EventKind::Exit { region: 0 })); // wrong order
        assert!(t.validate().is_err());
    }

    #[test]
    fn unknown_indices_rejected() {
        let mut t = Trace::new(defs());
        t.push(Event::new(0.0, 9, EventKind::Enter { region: 0 }));
        assert!(t.validate().is_err());
        let mut t = Trace::new(defs());
        t.push(Event::new(0.0, 0, EventKind::Enter { region: 9 }));
        assert!(t.validate().is_err());
        let mut t = Trace::new(defs());
        t.push(Event::new(
            0.0,
            0,
            EventKind::MpiSend {
                dest: 5,
                tag: 0,
                bytes: 0,
            },
        ));
        assert!(t.validate().is_err());
    }

    #[test]
    fn counter_cardinality_enforced() {
        let mut d = defs();
        d.counters.push(crate::defs::CounterDef {
            name: "PAPI_FP_INS".into(),
        });
        let mut t = Trace::new(d);
        t.push(Event::new(0.0, 0, EventKind::Enter { region: 0 })); // 0 counters, 1 defined
        assert!(t.validate().is_err());
    }

    #[test]
    fn decreasing_counters_rejected() {
        let mut d = defs();
        d.counters.push(crate::defs::CounterDef {
            name: "PAPI_FP_INS".into(),
        });
        let mut t = Trace::new(d);
        let mut e1 = Event::new(0.0, 0, EventKind::Enter { region: 0 });
        e1.counters = vec![100];
        let mut e2 = Event::new(1.0, 0, EventKind::Exit { region: 0 });
        e2.counters = vec![50];
        t.push(e1);
        t.push(e2);
        assert!(t.validate().is_err());
    }

    #[test]
    fn events_of_filters_by_location() {
        let t = valid_trace();
        assert_eq!(t.events_of(0).count(), 5);
        assert_eq!(t.events_of(1).count(), 4);
    }
}
