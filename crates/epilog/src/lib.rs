//! # epilog — event-trace substrate
//!
//! EXPERT (the trace analyzer reproduced in the `expert` crate) consumes
//! time-stamped event traces in the EPILOG format. This crate is the
//! EPILOG-like substrate: an event model for message-passing programs,
//! an in-memory [`Trace`] container with validation, and a compact
//! binary encoding ([`codec`]).
//!
//! A trace consists of
//!
//! * **definition records** ([`TraceDefs`]): the machine/node layout,
//!   one [`Location`] per `(process rank, thread)`, the source
//!   [`RegionDef`]s events refer to, and optional counter definitions;
//! * **event records** ([`Event`]): region enter/exit, point-to-point
//!   send/receive, and collective-operation completion, each carrying a
//!   timestamp, a location, and (optionally) accumulated hardware
//!   counter values.
//!
//! Recording one or more hardware-counter values as part of nearly every
//! event record increases trace size dramatically (the paper's §5.2
//! motivation for merging profile data instead); the codec reproduces
//! that trade-off faithfully, and the `trace_analysis` bench measures it.

pub mod codec;
pub mod defs;
pub mod error;
pub mod event;
pub mod trace;

pub use codec::{decode_trace, encode_trace, read_trace_file, write_trace_file};
pub use defs::{CounterDef, Location, RegionDef, TopologyDef, TraceDefs};
pub use error::EpilogError;
pub use event::{CollectiveOp, Event, EventKind};
pub use trace::{Trace, TraceStats};
