//! Error type for trace construction, validation, and (de)serialization.

use std::error::Error;
use std::fmt;

/// Errors raised by the trace substrate.
#[derive(Debug)]
pub enum EpilogError {
    /// The byte stream does not start with the EPILOG magic.
    BadMagic,
    /// The byte stream declares an unsupported format version.
    UnsupportedVersion(u32),
    /// The byte stream ended in the middle of a record.
    UnexpectedEof { while_reading: &'static str },
    /// An event record carries an unknown kind tag.
    BadEventTag(u8),
    /// A string field is not valid UTF-8.
    Utf8(&'static str),
    /// The trace violates a structural invariant.
    Invalid(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for EpilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not an EPILOG trace (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported EPILOG format version {v}"),
            Self::UnexpectedEof { while_reading } => {
                write!(f, "unexpected end of trace while reading {while_reading}")
            }
            Self::BadEventTag(t) => write!(f, "unknown event kind tag {t}"),
            Self::Utf8(field) => write!(f, "field '{field}' is not valid UTF-8"),
            Self::Invalid(msg) => write!(f, "invalid trace: {msg}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl Error for EpilogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EpilogError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EpilogError::BadMagic.to_string().contains("magic"));
        assert!(EpilogError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(EpilogError::BadEventTag(42).to_string().contains("42"));
        assert!(EpilogError::Invalid("x".into()).to_string().contains('x'));
    }
}
