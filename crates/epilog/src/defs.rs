//! Trace definition records: the static context events refer to.

/// One measurement location: a `(process rank, thread number)` pair,
/// placed on an SMP node. Pure MPI traces have one location per rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Location {
    /// Global MPI rank of the process.
    pub rank: i32,
    /// Thread number within the process (0 for single-threaded).
    pub thread: u32,
    /// Index into [`TraceDefs::node_names`].
    pub node_index: u32,
}

/// A source region referenced by enter/exit events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionDef {
    /// Region name (e.g. `"solver"`, `"MPI_Recv"`).
    pub name: String,
    /// Source file.
    pub file: String,
    /// First source line.
    pub line: u32,
}

/// A hardware counter recorded with events (optional).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterDef {
    /// Counter name, e.g. `"PAPI_FP_INS"`.
    pub name: String,
}

/// A Cartesian process topology recorded by instrumented MPI topology
/// routines (`MPI_Cart_create`), as the paper's future work proposes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyDef {
    /// Topology (communicator) name.
    pub name: String,
    /// Grid extents.
    pub dims: Vec<u32>,
    /// Periodicity flags, same length as `dims`.
    pub periodic: Vec<bool>,
    /// `(rank, coordinate)` placements.
    pub coords: Vec<(i32, Vec<u32>)>,
}

/// All definition records of a trace.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TraceDefs {
    /// Machine name.
    pub machine_name: String,
    /// SMP node names, indexed by [`Location::node_index`].
    pub node_names: Vec<String>,
    /// Measurement locations; the event records' `location` field
    /// indexes this table.
    pub locations: Vec<Location>,
    /// Region table; enter/exit events index it.
    pub regions: Vec<RegionDef>,
    /// Counter table; when non-empty, every event carries one value per
    /// counter (accumulated since location start).
    pub counters: Vec<CounterDef>,
    /// Optional Cartesian process topology.
    pub topology: Option<TopologyDef>,
}

impl TraceDefs {
    /// Looks up a region index by name.
    pub fn find_region(&self, name: &str) -> Option<u32> {
        self.regions
            .iter()
            .position(|r| r.name == name)
            .map(|i| i as u32)
    }

    /// Looks up the location index for `(rank, thread)`.
    pub fn find_location(&self, rank: i32, thread: u32) -> Option<u32> {
        self.locations
            .iter()
            .position(|l| l.rank == rank && l.thread == thread)
            .map(|i| i as u32)
    }

    /// Convenience constructor for the common pure-MPI layout: `ranks`
    /// single-threaded processes spread round-robin over `nodes` nodes.
    pub fn pure_mpi(machine: impl Into<String>, ranks: usize, nodes: usize) -> Self {
        let nodes = nodes.max(1);
        Self {
            machine_name: machine.into(),
            node_names: (0..nodes).map(|n| format!("node{n}")).collect(),
            locations: (0..ranks)
                .map(|r| Location {
                    rank: r as i32,
                    thread: 0,
                    node_index: (r % nodes) as u32,
                })
                .collect(),
            regions: Vec::new(),
            counters: Vec::new(),
            topology: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_mpi_layout() {
        let d = TraceDefs::pure_mpi("cluster", 8, 4);
        assert_eq!(d.node_names.len(), 4);
        assert_eq!(d.locations.len(), 8);
        assert_eq!(d.locations[5].rank, 5);
        assert_eq!(d.locations[5].node_index, 1);
        assert_eq!(d.find_location(5, 0), Some(5));
        assert_eq!(d.find_location(5, 1), None);
    }

    #[test]
    fn find_region_by_name() {
        let mut d = TraceDefs::pure_mpi("m", 1, 1);
        d.regions.push(RegionDef {
            name: "main".into(),
            file: "a.c".into(),
            line: 1,
        });
        assert_eq!(d.find_region("main"), Some(0));
        assert_eq!(d.find_region("nope"), None);
    }

    #[test]
    fn zero_nodes_clamped_to_one() {
        let d = TraceDefs::pure_mpi("m", 2, 0);
        assert_eq!(d.node_names.len(), 1);
    }
}
