//! Binary encoding of traces.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"EPLG"
//! version u32 (currently 1)
//! machine string
//! nodes   u32 count, then strings
//! locs    u32 count, then (rank i32, thread u32, node u32)
//! regions u32 count, then (name string, file string, line u32)
//! ctrs    u32 count, then strings
//! events  u64 count, then per event:
//!         time f64, location u32, tag u8, payload, counter values u64*
//! ```
//!
//! Strings are a `u32` length followed by UTF-8 bytes. Each event
//! carries exactly one `u64` per defined counter — which is precisely
//! why per-event counter recording inflates traces (§5.2 of the paper).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::defs::{CounterDef, Location, RegionDef, TopologyDef, TraceDefs};
use crate::error::EpilogError;
use crate::event::{CollectiveOp, Event, EventKind};
use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"EPLG";
const VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Serializes a trace into bytes.
pub fn encode_trace(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + trace.events.len() * 24);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    put_string(&mut buf, &trace.defs.machine_name);
    buf.put_u32_le(trace.defs.node_names.len() as u32);
    for n in &trace.defs.node_names {
        put_string(&mut buf, n);
    }
    buf.put_u32_le(trace.defs.locations.len() as u32);
    for l in &trace.defs.locations {
        buf.put_i32_le(l.rank);
        buf.put_u32_le(l.thread);
        buf.put_u32_le(l.node_index);
    }
    buf.put_u32_le(trace.defs.regions.len() as u32);
    for r in &trace.defs.regions {
        put_string(&mut buf, &r.name);
        put_string(&mut buf, &r.file);
        buf.put_u32_le(r.line);
    }
    buf.put_u32_le(trace.defs.counters.len() as u32);
    for c in &trace.defs.counters {
        put_string(&mut buf, &c.name);
    }
    match &trace.defs.topology {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            put_string(&mut buf, &t.name);
            buf.put_u32_le(t.dims.len() as u32);
            for &d in &t.dims {
                buf.put_u32_le(d);
            }
            for &p in &t.periodic {
                buf.put_u8(u8::from(p));
            }
            buf.put_u32_le(t.coords.len() as u32);
            for (rank, c) in &t.coords {
                buf.put_i32_le(*rank);
                for &x in c {
                    buf.put_u32_le(x);
                }
            }
        }
    }
    buf.put_u64_le(trace.events.len() as u64);
    for e in &trace.events {
        buf.put_f64_le(e.time);
        buf.put_u32_le(e.location);
        buf.put_u8(e.kind.tag());
        match &e.kind {
            EventKind::Enter { region } | EventKind::Exit { region } => {
                buf.put_u32_le(*region);
            }
            EventKind::MpiSend { dest, tag, bytes } => {
                buf.put_i32_le(*dest);
                buf.put_i32_le(*tag);
                buf.put_u64_le(*bytes);
            }
            EventKind::MpiRecv { source, tag, bytes } => {
                buf.put_i32_le(*source);
                buf.put_i32_le(*tag);
                buf.put_u64_le(*bytes);
            }
            EventKind::CollectiveExit { op, bytes, root } => {
                buf.put_u8(op.tag());
                buf.put_u64_le(*bytes);
                buf.put_i32_le(*root);
            }
        }
        for &c in &e.counters {
            buf.put_u64_le(c);
        }
    }
    buf.freeze()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader {
    buf: Bytes,
}

impl Reader {
    fn need(&self, n: usize, what: &'static str) -> Result<(), EpilogError> {
        if self.buf.remaining() < n {
            Err(EpilogError::UnexpectedEof {
                while_reading: what,
            })
        } else {
            Ok(())
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, EpilogError> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, EpilogError> {
        self.need(4, what)?;
        Ok(self.buf.get_u32_le())
    }

    fn i32(&mut self, what: &'static str) -> Result<i32, EpilogError> {
        self.need(4, what)?;
        Ok(self.buf.get_i32_le())
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, EpilogError> {
        self.need(8, what)?;
        Ok(self.buf.get_u64_le())
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, EpilogError> {
        self.need(8, what)?;
        Ok(self.buf.get_f64_le())
    }

    fn string(&mut self, what: &'static str) -> Result<String, EpilogError> {
        let len = self.u32(what)? as usize;
        self.need(len, what)?;
        let raw = self.buf.copy_to_bytes(len);
        String::from_utf8(raw.to_vec()).map_err(|_| EpilogError::Utf8(what))
    }
}

/// Deserializes a trace from bytes.
pub fn decode_trace(bytes: Bytes) -> Result<Trace, EpilogError> {
    let mut r = Reader { buf: bytes };
    r.need(4, "magic")?;
    let mut magic = [0u8; 4];
    r.buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(EpilogError::BadMagic);
    }
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(EpilogError::UnsupportedVersion(version));
    }
    let machine_name = r.string("machine name")?;
    let mut node_names = Vec::new();
    for _ in 0..r.u32("node count")? {
        node_names.push(r.string("node name")?);
    }
    let mut locations = Vec::new();
    for _ in 0..r.u32("location count")? {
        locations.push(Location {
            rank: r.i32("location rank")?,
            thread: r.u32("location thread")?,
            node_index: r.u32("location node")?,
        });
    }
    let mut regions = Vec::new();
    for _ in 0..r.u32("region count")? {
        regions.push(RegionDef {
            name: r.string("region name")?,
            file: r.string("region file")?,
            line: r.u32("region line")?,
        });
    }
    let mut counters = Vec::new();
    for _ in 0..r.u32("counter count")? {
        counters.push(CounterDef {
            name: r.string("counter name")?,
        });
    }
    let topology = match r.u8("topology flag")? {
        0 => None,
        1 => {
            let name = r.string("topology name")?;
            let ndims = r.u32("topology ndims")? as usize;
            if ndims > 16 {
                return Err(EpilogError::Invalid(format!(
                    "topology declares {ndims} dimensions"
                )));
            }
            let mut dims = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                dims.push(r.u32("topology dim")?);
            }
            let mut periodic = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                periodic.push(r.u8("topology periodic")? != 0);
            }
            let ncoords = r.u32("topology coord count")?;
            let mut coords = Vec::with_capacity(ncoords.min(1 << 20) as usize);
            for _ in 0..ncoords {
                let rank = r.i32("topology coord rank")?;
                let mut c = Vec::with_capacity(ndims);
                for _ in 0..ndims {
                    c.push(r.u32("topology coord value")?);
                }
                coords.push((rank, c));
            }
            Some(TopologyDef {
                name,
                dims,
                periodic,
                coords,
            })
        }
        other => return Err(EpilogError::BadEventTag(other)),
    };
    let defs = TraceDefs {
        machine_name,
        node_names,
        locations,
        regions,
        counters,
        topology,
    };
    let ncnt = defs.counters.len();
    let nevents = r.u64("event count")?;
    let mut events = Vec::with_capacity(nevents.min(1 << 24) as usize);
    for _ in 0..nevents {
        let time = r.f64("event time")?;
        let location = r.u32("event location")?;
        let tag = r.u8("event tag")?;
        let kind = match tag {
            0 => EventKind::Enter {
                region: r.u32("enter region")?,
            },
            1 => EventKind::Exit {
                region: r.u32("exit region")?,
            },
            2 => EventKind::MpiSend {
                dest: r.i32("send dest")?,
                tag: r.i32("send tag")?,
                bytes: r.u64("send bytes")?,
            },
            3 => EventKind::MpiRecv {
                source: r.i32("recv source")?,
                tag: r.i32("recv tag")?,
                bytes: r.u64("recv bytes")?,
            },
            4 => {
                let op_tag = r.u8("collective op")?;
                let op = CollectiveOp::from_tag(op_tag).ok_or(EpilogError::BadEventTag(op_tag))?;
                EventKind::CollectiveExit {
                    op,
                    bytes: r.u64("collective bytes")?,
                    root: r.i32("collective root")?,
                }
            }
            other => return Err(EpilogError::BadEventTag(other)),
        };
        let mut cvals = Vec::with_capacity(ncnt);
        for _ in 0..ncnt {
            cvals.push(r.u64("counter value")?);
        }
        events.push(Event {
            time,
            location,
            kind,
            counters: cvals,
        });
    }
    Ok(Trace { defs, events })
}

/// Writes a trace to a file.
pub fn write_trace_file(
    trace: &Trace,
    path: impl AsRef<std::path::Path>,
) -> Result<(), EpilogError> {
    std::fs::write(path, encode_trace(trace))?;
    Ok(())
}

/// Reads a trace from a file.
pub fn read_trace_file(path: impl AsRef<std::path::Path>) -> Result<Trace, EpilogError> {
    let raw = std::fs::read(path)?;
    decode_trace(Bytes::from(raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut defs = TraceDefs::pure_mpi("cluster", 2, 2);
        defs.regions.push(RegionDef {
            name: "main".into(),
            file: "a.c".into(),
            line: 1,
        });
        defs.counters.push(CounterDef {
            name: "PAPI_FP_INS".into(),
        });
        let mut t = Trace::new(defs);
        let mut e = Event::new(0.0, 0, EventKind::Enter { region: 0 });
        e.counters = vec![0];
        t.push(e);
        let mut e = Event::new(
            0.5,
            0,
            EventKind::MpiSend {
                dest: 1,
                tag: 3,
                bytes: 4096,
            },
        );
        e.counters = vec![1000];
        t.push(e);
        let mut e = Event::new(1.0, 0, EventKind::Exit { region: 0 });
        e.counters = vec![2000];
        t.push(e);
        let mut e = Event::new(
            0.75,
            1,
            EventKind::CollectiveExit {
                op: CollectiveOp::AllReduce,
                bytes: 8,
                root: -1,
            },
        );
        e.counters = vec![10];
        t.push(e);
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = encode_trace(&t);
        let back = decode_trace(bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn roundtrip_empty() {
        let t = Trace::new(TraceDefs::default());
        let back = decode_trace(encode_trace(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = encode_trace(&sample()).to_vec();
        raw[0] = b'X';
        assert!(matches!(
            decode_trace(Bytes::from(raw)),
            Err(EpilogError::BadMagic)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut raw = encode_trace(&sample()).to_vec();
        raw[4] = 99;
        assert!(matches!(
            decode_trace(Bytes::from(raw)),
            Err(EpilogError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let raw = encode_trace(&sample()).to_vec();
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..raw.len() {
            let r = decode_trace(Bytes::from(raw[..cut].to_vec()));
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly decoded");
        }
    }

    #[test]
    fn bad_event_tag_rejected() {
        let t = sample();
        let raw = encode_trace(&t).to_vec();
        // Find the first event's tag byte: after defs. Easier: corrupt the
        // known collective op tag by scanning for tag 4 events is brittle;
        // instead rebuild a minimal trace and poke its single event tag.
        let mut mini = Trace::new(TraceDefs::pure_mpi("m", 1, 1));
        mini.defs.regions.push(RegionDef {
            name: "r".into(),
            file: "f".into(),
            line: 0,
        });
        mini.push(Event::new(0.0, 0, EventKind::Enter { region: 0 }));
        let mut raw2 = encode_trace(&mini).to_vec();
        let tag_pos = raw2.len() - 4 - 1; // u32 region payload then nothing
        raw2[tag_pos] = 200;
        assert!(matches!(
            decode_trace(Bytes::from(raw2)),
            Err(EpilogError::BadEventTag(200))
        ));
        let _ = raw;
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut mini = Trace::new(TraceDefs::pure_mpi("mm", 1, 1));
        mini.defs.machine_name = "mm".into();
        let mut raw = encode_trace(&mini).to_vec();
        // Machine name bytes start at offset 4 (magic) + 4 (version) + 4 (len).
        raw[12] = 0xFF;
        raw[13] = 0xFE;
        assert!(matches!(
            decode_trace(Bytes::from(raw)),
            Err(EpilogError::Utf8(_))
        ));
    }

    #[test]
    fn counters_inflate_trace_size() {
        // The §5.2 effect: defining counters makes every event larger.
        let mut without = sample();
        without.defs.counters.clear();
        for e in &mut without.events {
            e.counters.clear();
        }
        let small = encode_trace(&without).len();
        let big = encode_trace(&sample()).len();
        assert!(big > small);
        assert_eq!(big - small, 8 * sample().events.len() + 4 + 11 + 4 - 4);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample();
        let dir = std::env::temp_dir().join("epilog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.elg");
        write_trace_file(&t, &path).unwrap();
        let back = read_trace_file(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(path).ok();
    }
}
