//! Event records.

/// Collective operations distinguished by the analyzer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveOp {
    /// `MPI_Barrier`: pure synchronization.
    Barrier,
    /// N-to-N data exchange (`MPI_Alltoall`, `MPI_Allgather`, ...).
    AllToAll,
    /// Reduction to all (`MPI_Allreduce`).
    AllReduce,
    /// Rooted one-to-N (`MPI_Bcast`).
    Broadcast,
    /// Rooted N-to-one (`MPI_Reduce`).
    Reduce,
}

impl CollectiveOp {
    /// Stable tag used in the binary encoding.
    pub fn tag(self) -> u8 {
        match self {
            Self::Barrier => 0,
            Self::AllToAll => 1,
            Self::AllReduce => 2,
            Self::Broadcast => 3,
            Self::Reduce => 4,
        }
    }

    /// Inverse of [`CollectiveOp::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Self::Barrier),
            1 => Some(Self::AllToAll),
            2 => Some(Self::AllReduce),
            3 => Some(Self::Broadcast),
            4 => Some(Self::Reduce),
            _ => None,
        }
    }

    /// The conventional MPI routine name, used as the region name of
    /// collective call sites.
    pub fn region_name(self) -> &'static str {
        match self {
            Self::Barrier => "MPI_Barrier",
            Self::AllToAll => "MPI_Alltoall",
            Self::AllReduce => "MPI_Allreduce",
            Self::Broadcast => "MPI_Bcast",
            Self::Reduce => "MPI_Reduce",
        }
    }

    /// Whether the operation synchronizes *all* participants (inherent
    /// N×N synchronization — the `Wait at N x N` pattern applies).
    pub fn is_nxn(self) -> bool {
        matches!(self, Self::AllToAll | Self::AllReduce)
    }
}

/// What happened.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Control flow entered a region (index into the trace's region
    /// table).
    Enter { region: u32 },
    /// Control flow left the most recently entered region.
    Exit { region: u32 },
    /// A point-to-point message left this location.
    MpiSend { dest: i32, tag: i32, bytes: u64 },
    /// A point-to-point message was received at this location. Recorded
    /// at the *end* of the receive operation.
    MpiRecv { source: i32, tag: i32, bytes: u64 },
    /// A collective operation completed at this location. Enter/exit of
    /// the surrounding `MPI_*` region carry the timing; this record
    /// identifies the operation and instance for cross-process matching.
    CollectiveExit {
        op: CollectiveOp,
        /// Bytes contributed by this location.
        bytes: u64,
        /// Root rank for rooted collectives, `-1` otherwise.
        root: i32,
    },
}

impl EventKind {
    /// Stable tag used in the binary encoding.
    pub fn tag(&self) -> u8 {
        match self {
            Self::Enter { .. } => 0,
            Self::Exit { .. } => 1,
            Self::MpiSend { .. } => 2,
            Self::MpiRecv { .. } => 3,
            Self::CollectiveExit { .. } => 4,
        }
    }
}

/// One time-stamped event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Timestamp in seconds since the run's start.
    pub time: f64,
    /// Index into [`TraceDefs::locations`](crate::TraceDefs::locations).
    pub location: u32,
    /// What happened.
    pub kind: EventKind,
    /// Accumulated counter values, one per defined counter (empty when
    /// the trace defines no counters).
    pub counters: Vec<u64>,
}

impl Event {
    /// Creates an event without counter values.
    pub fn new(time: f64, location: u32, kind: EventKind) -> Self {
        Self {
            time,
            location,
            kind,
            counters: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_tags_roundtrip() {
        for op in [
            CollectiveOp::Barrier,
            CollectiveOp::AllToAll,
            CollectiveOp::AllReduce,
            CollectiveOp::Broadcast,
            CollectiveOp::Reduce,
        ] {
            assert_eq!(CollectiveOp::from_tag(op.tag()), Some(op));
        }
        assert_eq!(CollectiveOp::from_tag(99), None);
    }

    #[test]
    fn nxn_classification() {
        assert!(CollectiveOp::AllToAll.is_nxn());
        assert!(CollectiveOp::AllReduce.is_nxn());
        assert!(!CollectiveOp::Barrier.is_nxn());
        assert!(!CollectiveOp::Broadcast.is_nxn());
    }

    #[test]
    fn region_names_are_mpi_routines() {
        assert_eq!(CollectiveOp::Barrier.region_name(), "MPI_Barrier");
        assert_eq!(CollectiveOp::AllToAll.region_name(), "MPI_Alltoall");
    }

    #[test]
    fn event_kind_tags_distinct() {
        let kinds = [
            EventKind::Enter { region: 0 },
            EventKind::Exit { region: 0 },
            EventKind::MpiSend {
                dest: 0,
                tag: 0,
                bytes: 0,
            },
            EventKind::MpiRecv {
                source: 0,
                tag: 0,
                bytes: 0,
            },
            EventKind::CollectiveExit {
                op: CollectiveOp::Barrier,
                bytes: 0,
                root: -1,
            },
        ];
        let tags: std::collections::HashSet<u8> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(tags.len(), kinds.len());
    }
}
