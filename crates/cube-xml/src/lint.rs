//! File-level linting: `.cube` documents checked during the streaming
//! pass, without materializing a DOM.
//!
//! The model-level rule engine lives in [`cube_model::lint()`]; this
//! module bridges it to the file format:
//!
//! * parse and I/O failures become diagnostics with `E1xx` codes (and a
//!   [`Location::Source`] position whenever the reader knows one), so a
//!   broken file and a structurally unsound experiment produce the same
//!   kind of report;
//! * a well-formed file is read through the streaming parser's
//!   parts-returning entry point, so *all* model violations are
//!   reported, not just the first one
//!   [`Experiment::new`](cube_model::Experiment::new) would raise.

use std::path::Path;

use cube_model::lint::{diagnostic_of_model_error, lint_parts, Diagnostic, Location, Report};
use cube_model::{Experiment, RuleCode};

use crate::error::{LimitKind, XmlError};
use crate::reader::read_streaming_parts;

/// Converts a parse/IO error into a single diagnostic with the best
/// available location.
pub fn diagnostic_of_xml_error(e: &XmlError) -> Diagnostic {
    let code = match e {
        XmlError::Io { .. } => RuleCode::Io,
        XmlError::Syntax { .. } => RuleCode::XmlSyntax,
        XmlError::Malformed { .. } => RuleCode::XmlMalformed,
        XmlError::Format { .. } => RuleCode::FormatViolation,
        XmlError::Value { .. } => RuleCode::BadValue,
        XmlError::Limit { kind, .. } => match kind {
            LimitKind::InputBytes => RuleCode::InputTooLarge,
            LimitKind::Depth => RuleCode::NestingTooDeep,
            LimitKind::Entities => RuleCode::TooManyEntities,
            LimitKind::RowBytes => RuleCode::RowTooLong,
        },
        XmlError::Checksum { .. } => RuleCode::ChecksumMismatch,
        XmlError::Model(m) => return diagnostic_of_model_error(m),
    };
    let location = match e.position() {
        Some(p) => Location::Source {
            line: p.line,
            column: p.column,
        },
        None => Location::Experiment,
    };
    Diagnostic::new(code, location, e.to_string())
}

/// Lints a `.cube` document and also returns the experiment when one
/// could be assembled.
///
/// The experiment is `Some` exactly when the document parses and the
/// resulting structure satisfies the data model (no error-level
/// diagnostics); warnings do not prevent assembly.
pub fn lint_read(input: &str) -> (Option<Experiment>, Report) {
    if let crate::footer::FooterStatus::Mismatch { expected, actual } =
        crate::footer::check_footer(input)
    {
        return (
            None,
            Report::from_diagnostics(vec![diagnostic_of_xml_error(&XmlError::Checksum {
                expected,
                actual,
            })]),
        );
    }
    match read_streaming_parts(input) {
        Ok(Some((md, sev, prov))) => {
            let report = lint_parts(&md, &sev, &prov);
            let exp = if report.has_errors() {
                None
            } else {
                // Clean of errors ⇒ validate() accepts (the E0xx rules
                // are exactly the validate() checks).
                Some(Experiment::new_unchecked(md, sev, prov))
            };
            (exp, report)
        }
        // Severity stored before the metadata sections: the streaming
        // pass cannot size the matrix, so fall back to the DOM reader
        // like `read_experiment` does.
        Ok(None) => match crate::format::read_experiment_dom(input) {
            Ok(exp) => {
                let report = exp.lint();
                (Some(exp), report)
            }
            Err(e) => (
                None,
                Report::from_diagnostics(vec![diagnostic_of_xml_error(&e)]),
            ),
        },
        Err(e) => (
            None,
            Report::from_diagnostics(vec![diagnostic_of_xml_error(&e)]),
        ),
    }
}

/// Lints a `.cube` document in memory.
pub fn lint_str(input: &str) -> Report {
    lint_read(input).1
}

/// Lints a `.cube` file on disk. I/O failures are reported as `E100`
/// diagnostics rather than a separate error channel, so callers handle
/// one result shape.
pub fn lint_file(path: impl AsRef<Path>) -> Report {
    match std::fs::read_to_string(path.as_ref()) {
        Ok(text) => lint_str(&text),
        Err(e) => Report::from_diagnostics(vec![diagnostic_of_xml_error(&XmlError::Io {
            path: Some(path.as_ref().to_path_buf()),
            source: e,
        })]),
    }
}

/// Strict read: parses `input` and fails unless the lint report is
/// fully clean — warnings included.
///
/// This is the "strict-read mode" for pipelines that refuse suspicious
/// inputs at the door; plain [`read_experiment`](crate::read_experiment)
/// remains the lenient path.
pub fn read_experiment_strict(input: &str) -> Result<Experiment, Report> {
    match lint_read(input) {
        (Some(exp), report) if report.is_clean() => Ok(exp),
        (_, report) => Err(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::lint::Level;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn valid_doc() -> String {
        let mut b = ExperimentBuilder::new("lint test");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a.c", "/a.c");
        let r = b.def_region("main", m, RegionKind::Function, 1, 9);
        let cs = b.def_call_site("a.c", 1, r);
        let root = b.def_call_node(cs, None);
        let mach = b.def_machine("mach");
        let node = b.def_node("n0", mach);
        let p = b.def_process("p0", 0, node);
        let t = b.def_thread("t0", 0, p);
        b.set_severity(time, root, t, 2.5);
        crate::write_experiment(&b.build().unwrap())
    }

    #[test]
    fn valid_document_is_clean() {
        let report = lint_str(&valid_doc());
        assert!(report.is_clean(), "{report}");
        let (exp, _) = lint_read(&valid_doc());
        assert!(exp.is_some());
        assert!(read_experiment_strict(&valid_doc()).is_ok());
    }

    #[test]
    fn syntax_error_reports_e101_with_position() {
        let report = lint_str("<cube\n<");
        assert!(report.has_errors());
        let d = &report.diagnostics()[0];
        assert_eq!(d.code.as_str(), "E101");
        assert!(matches!(d.location, Location::Source { .. }), "{d}");
    }

    #[test]
    fn nan_severity_reports_e016_not_parse_error() {
        let doc = valid_doc().replace("2.5", "NaN");
        let report = lint_str(&doc);
        assert_eq!(
            report
                .codes()
                .iter()
                .map(|c| c.as_str())
                .collect::<Vec<_>>(),
            vec!["E016"]
        );
    }

    #[test]
    fn multiple_model_violations_all_reported() {
        // NaN severity *and* inverted region lines in one file: the
        // plain reader stops at the first, the linter reports both.
        let doc = valid_doc()
            .replace("2.5", "NaN")
            .replace("begin=\"1\" end=\"9\"", "begin=\"9\" end=\"1\"");
        let report = lint_str(&doc);
        let codes: Vec<&str> = report.codes().iter().map(|c| c.as_str()).collect();
        assert!(codes.contains(&"E016"), "{report}");
        assert!(codes.contains(&"E005"), "{report}");
        assert!(crate::read_experiment(&doc).is_err());
    }

    #[test]
    fn missing_attribute_reports_e103_with_position() {
        let doc = valid_doc().replace(" uom=\"sec\"", "");
        let report = lint_str(&doc);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code.as_str(), "E103");
        assert!(matches!(d.location, Location::Source { .. }), "{d}");
    }

    #[test]
    fn strict_read_rejects_warnings() {
        // An extra module nobody references is a warning (W003): the
        // lenient reader accepts it, the strict one refuses.
        let fixed = valid_doc().replace(
            "</program>",
            "<module id=\"1\" name=\"dead.c\" path=\"/dead.c\"/></program>",
        );
        let report = lint_str(&fixed);
        assert!(!report.has_errors(), "{report}");
        assert_eq!(report.num_warnings(), 1, "{report}");
        assert!(crate::read_experiment(&fixed).is_ok());
        let err = read_experiment_strict(&fixed).unwrap_err();
        assert_eq!(err.diagnostics()[0].code.as_str(), "W003");
        assert_eq!(err.diagnostics()[0].level(), Level::Warning);
    }

    #[test]
    fn io_error_reports_e100() {
        let report = lint_file("/nonexistent/definitely/not/here.cube");
        assert_eq!(report.diagnostics()[0].code.as_str(), "E100");
    }

    #[test]
    fn severity_before_metadata_falls_back_to_dom() {
        // Move <severity> to the front; the streaming parser cannot
        // size it, the DOM fallback still lints the result.
        let doc = valid_doc();
        let start = doc.find("  <severity>").unwrap();
        let end = doc.find("</severity>").unwrap() + "</severity>\n".len();
        let severity = doc[start..end].to_string();
        let rest = format!("{}{}", &doc[..start], &doc[end..]);
        let moved = rest.replacen("  <metrics>", &format!("{severity}  <metrics>"), 1);
        let (exp, report) = lint_read(&moved);
        assert!(report.is_clean(), "{report}");
        assert!(exp.is_some());
    }
}
