//! Checksum footer: a trailing XML comment carrying a CRC-32 of the
//! document bytes.
//!
//! The footer is written *after* `</cube>` as
//!
//! ```text
//! <!-- cube:crc32 XXXXXXXX NNN -->
//! ```
//!
//! where `XXXXXXXX` is the CRC-32 (IEEE polynomial, the one used by
//! gzip and PNG) of the first `NNN` bytes of the file — everything up
//! to and including the newline that ends `</cube>` — rendered as
//! eight lowercase hex digits, and `NNN` is that byte count in
//! decimal. Because it is an ordinary XML comment after the root
//! element, readers that predate the footer skip it; readers that know
//! it can detect silent corruption that still happens to parse.
//!
//! The normative description lives in `docs/FORMAT.md` §10.

use std::io::{self, Write};

/// Marker that opens the checksum footer comment.
pub(crate) const FOOTER_PREFIX: &str = "<!-- cube:crc32 ";

/// CRC-32 lookup table for the reflected IEEE polynomial `0xEDB88320`.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

fn update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 (IEEE, reflected, init and xor-out `0xFFFFFFFF`) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !update(!0, bytes)
}

/// A [`Write`] adapter that forwards to an inner writer while tracking
/// the CRC-32 and byte count of everything written through it.
pub struct Crc32Writer<W: Write> {
    inner: W,
    state: u32,
    len: u64,
}

impl<W: Write> Crc32Writer<W> {
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            state: !0,
            len: 0,
        }
    }

    /// CRC-32 of the bytes written so far.
    pub fn crc(&self) -> u32 {
        !self.state
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Unwraps the adapter, returning the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for Crc32Writer<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.state = update(self.state, &buf[..n]);
        self.len += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Renders the footer comment for a document of `len` bytes hashing to
/// `crc`, newline included.
pub fn footer_line(crc: u32, len: u64) -> String {
    format!("<!-- cube:crc32 {crc:08x} {len} -->\n")
}

/// Outcome of checking a document against its checksum footer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FooterStatus {
    /// No footer present (pre-footer writers, or the trailer was lost):
    /// nothing to verify against.
    Absent,
    /// Footer present and the document bytes hash to the recorded CRC.
    Valid,
    /// Footer present but the document bytes do not match: the file was
    /// altered after it was written.
    Mismatch { expected: u32, actual: u32 },
}

impl FooterStatus {
    pub fn is_mismatch(&self) -> bool {
        matches!(self, Self::Mismatch { .. })
    }
}

/// Checks `input` against its checksum footer, if one is present.
///
/// A trailing comment that merely *resembles* a footer but does not
/// parse exactly (wrong digit count, missing fields) is treated as an
/// ordinary comment — [`FooterStatus::Absent`] — since only our writer
/// produces the strict form. The CRC is computed over the bytes before
/// the footer comment, which for an untampered file is exactly the
/// recorded region.
pub fn check_footer(input: &str) -> FooterStatus {
    let trimmed = input.trim_end();
    if !trimmed.ends_with("-->") {
        return FooterStatus::Absent;
    }
    let Some(start) = trimmed.rfind(FOOTER_PREFIX) else {
        return FooterStatus::Absent;
    };
    let fields = &trimmed[start + FOOTER_PREFIX.len()..trimmed.len() - "-->".len()];
    // Expect exactly "XXXXXXXX NNN " (writer leaves one space before
    // the closing "-->").
    let mut it = fields.split_whitespace();
    let (Some(hex), Some(dec), None) = (it.next(), it.next(), it.next()) else {
        return FooterStatus::Absent;
    };
    if hex.len() != 8 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return FooterStatus::Absent;
    }
    let Ok(expected) = u32::from_str_radix(hex, 16) else {
        return FooterStatus::Absent;
    };
    let Ok(recorded_len) = dec.parse::<u64>() else {
        return FooterStatus::Absent;
    };
    let body = &input.as_bytes()[..start];
    let actual = crc32(body);
    if actual == expected && recorded_len == body.len() as u64 {
        FooterStatus::Valid
    } else {
        FooterStatus::Mismatch { expected, actual }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_vector() {
        // The standard CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_matches_one_shot() {
        let mut w = Crc32Writer::new(Vec::new());
        w.write_all(b"12345").unwrap();
        w.write_all(b"6789").unwrap();
        assert_eq!(w.crc(), crc32(b"123456789"));
        assert_eq!(w.len(), 9);
        assert_eq!(w.into_inner(), b"123456789");
    }

    #[test]
    fn footer_roundtrip() {
        let body = "<cube/>\n";
        let doc = format!(
            "{body}{}",
            footer_line(crc32(body.as_bytes()), body.len() as u64)
        );
        assert_eq!(check_footer(&doc), FooterStatus::Valid);
    }

    #[test]
    fn corrupted_body_is_a_mismatch() {
        let body = "<cube/>\n";
        let doc = format!(
            "{body}{}",
            footer_line(crc32(body.as_bytes()), body.len() as u64)
        );
        let bad = doc.replace("<cube/>", "<cubE/>");
        assert!(check_footer(&bad).is_mismatch());
    }

    #[test]
    fn wrong_recorded_length_is_a_mismatch() {
        let body = "<cube/>\n";
        let doc = format!("{body}{}", footer_line(crc32(body.as_bytes()), 999));
        assert!(check_footer(&doc).is_mismatch());
    }

    #[test]
    fn absent_or_foreign_comments_are_ignored() {
        assert_eq!(check_footer("<cube/>\n"), FooterStatus::Absent);
        assert_eq!(
            check_footer("<cube/>\n<!-- just a note -->\n"),
            FooterStatus::Absent
        );
        assert_eq!(
            check_footer("<cube/>\n<!-- cube:crc32 nonsense -->\n"),
            FooterStatus::Absent
        );
        assert_eq!(
            check_footer("<cube/>\n<!-- cube:crc32 12ab 7 -->\n"),
            FooterStatus::Absent
        );
        assert_eq!(check_footer(""), FooterStatus::Absent);
    }

    #[test]
    fn trailing_whitespace_after_footer_is_tolerated() {
        let body = "<cube/>\n";
        let doc = format!(
            "{body}{} \n",
            footer_line(crc32(body.as_bytes()), body.len() as u64).trim_end()
        );
        assert_eq!(check_footer(&doc), FooterStatus::Valid);
    }
}
