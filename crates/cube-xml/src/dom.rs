//! A small document object model on top of the lexer, plus a writer.

use std::fmt::Write as _;

use crate::error::{Position, XmlError};
use crate::escape::{escape_attr, escape_text};
use crate::lexer::{Lexer, XmlToken};

/// A child of an element.
#[derive(Clone, Debug, PartialEq)]
pub enum XmlNode {
    /// Nested element.
    Element(Element),
    /// Character data (whitespace-only text between elements is dropped
    /// by the parser; CDATA is preserved verbatim).
    Text(String),
}

/// An XML element: name, attributes in document order, children.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl Element {
    /// Creates an empty element.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Builder-style attribute addition.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Builder-style child element addition.
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Builder-style text child addition.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Looks up an attribute value.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Attribute value or a format error naming the element.
    pub fn require_attr(&self, key: &str) -> Result<&str, XmlError> {
        self.get_attr(key).ok_or_else(|| {
            XmlError::format(format!(
                "element <{}> is missing required attribute '{key}'",
                self.name
            ))
        })
    }

    /// Parses a required attribute into any `FromStr` type.
    pub fn parse_attr<T: std::str::FromStr>(&self, key: &str) -> Result<T, XmlError> {
        let raw = self.require_attr(key)?;
        raw.parse().map_err(|_| {
            XmlError::value(format!(
                "attribute '{key}'=\"{raw}\" of <{}> does not parse as {}",
                self.name,
                std::any::type_name::<T>()
            ))
        })
    }

    /// Child elements with the given tag name, in order.
    pub fn elements<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter_map(move |c| match c {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements in order.
    pub fn all_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            _ => None,
        })
    }

    /// The first child element with the given name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.children.iter().find_map(|c| match c {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// First child element with the given name or a format error.
    pub fn require_element(&self, name: &str) -> Result<&Element, XmlError> {
        self.element(name).ok_or_else(|| {
            XmlError::format(format!(
                "element <{}> is missing required child <{name}>",
                self.name
            ))
        })
    }

    /// Concatenated text content of the element (direct text children).
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let XmlNode::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }

    /// Serializes this element as the root of a document.
    pub fn to_document_string(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            let _ = write!(out, " {k}=\"{}\"", escape_attr(v));
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        let only_text = self.children.iter().all(|c| matches!(c, XmlNode::Text(_)));
        if only_text {
            out.push('>');
            for c in &self.children {
                if let XmlNode::Text(t) = c {
                    out.push_str(&escape_text(t));
                }
            }
            let _ = writeln!(out, "</{}>", self.name);
            return;
        }
        out.push_str(">\n");
        for c in &self.children {
            match c {
                XmlNode::Element(e) => e.write_into(out, depth + 1),
                XmlNode::Text(t) => {
                    let trimmed = t.trim();
                    if !trimmed.is_empty() {
                        for _ in 0..depth + 1 {
                            out.push_str("  ");
                        }
                        out.push_str(&escape_text(trimmed));
                        out.push('\n');
                    }
                }
            }
        }
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = writeln!(out, "</{}>", self.name);
    }
}

/// A parsed document: exactly one root element.
#[derive(Clone, Debug, PartialEq)]
pub struct Document {
    /// The document's root element.
    pub root: Element,
}

impl Document {
    /// Parses a document from a string, checking well-formedness.
    ///
    /// Whitespace-only text between elements is dropped; comments are
    /// dropped; CDATA becomes literal text.
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        let mut lexer = Lexer::new(input);
        let mut stack: Vec<Element> = Vec::new();
        let mut root: Option<Element> = None;

        while let Some(tok) = lexer.next_token()? {
            let at = lexer.position();
            match tok {
                XmlToken::Declaration | XmlToken::Comment(_) => {}
                XmlToken::StartTag {
                    name,
                    attributes,
                    self_closing,
                } => {
                    if root.is_some() && stack.is_empty() {
                        return Err(XmlError::malformed(
                            at,
                            "content after the document's root element",
                        ));
                    }
                    let elem = Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    };
                    if self_closing {
                        Self::attach(&mut stack, &mut root, elem, at)?;
                    } else {
                        stack.push(elem);
                    }
                }
                XmlToken::EndTag { name } => {
                    let elem = stack.pop().ok_or_else(|| {
                        XmlError::malformed(at, format!("unexpected closing tag </{name}>"))
                    })?;
                    if elem.name != name {
                        return Err(XmlError::malformed(
                            at,
                            format!("<{}> closed by </{name}>", elem.name),
                        ));
                    }
                    Self::attach(&mut stack, &mut root, elem, at)?;
                }
                XmlToken::Text(t) => {
                    if let Some(top) = stack.last_mut() {
                        if !t.trim().is_empty() {
                            top.children.push(XmlNode::Text(t));
                        }
                    } else if !t.trim().is_empty() {
                        return Err(XmlError::malformed(at, "text outside the root element"));
                    }
                }
                XmlToken::CData(t) => {
                    if let Some(top) = stack.last_mut() {
                        top.children.push(XmlNode::Text(t));
                    } else {
                        return Err(XmlError::malformed(at, "CDATA outside the root element"));
                    }
                }
            }
        }
        if let Some(open) = stack.last() {
            return Err(XmlError::malformed(
                lexer.position(),
                format!("unclosed element <{}>", open.name),
            ));
        }
        root.ok_or_else(|| {
            XmlError::malformed(
                Position { line: 1, column: 1 },
                "document has no root element",
            )
        })
        .map(|root| Self { root })
    }

    fn attach(
        stack: &mut [Element],
        root: &mut Option<Element>,
        elem: Element,
        at: Position,
    ) -> Result<(), XmlError> {
        if let Some(top) = stack.last_mut() {
            top.children.push(XmlNode::Element(elem));
            Ok(())
        } else if root.is_none() {
            *root = Some(elem);
            Ok(())
        } else {
            Err(XmlError::malformed(
                at,
                "document has multiple root elements",
            ))
        }
    }

    /// Serializes the document with declaration and indentation.
    pub fn to_string_pretty(&self) -> String {
        self.root.to_document_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_nested_document() {
        let doc = Document::parse(
            r#"<?xml version="1.0"?>
            <cube version="1.0">
              <metrics><metric id="0" name="time"/></metrics>
              <doc>hello &amp; goodbye</doc>
            </cube>"#,
        )
        .unwrap();
        assert_eq!(doc.root.name, "cube");
        assert_eq!(doc.root.get_attr("version"), Some("1.0"));
        let metrics = doc.root.require_element("metrics").unwrap();
        let m = metrics.element("metric").unwrap();
        assert_eq!(m.get_attr("name"), Some("time"));
        assert_eq!(
            doc.root.element("doc").unwrap().text_content(),
            "hello & goodbye"
        );
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(Document::parse("<a><b></a></b>").is_err());
        assert!(Document::parse("<a>").is_err());
        assert!(Document::parse("</a>").is_err());
        assert!(Document::parse("<a/><b/>").is_err());
        assert!(Document::parse("stray text").is_err());
        assert!(Document::parse("").is_err());
    }

    #[test]
    fn writer_roundtrip() {
        let e = Element::new("cube")
            .attr("version", "1.0")
            .child(
                Element::new("metric")
                    .attr("name", "time <i>")
                    .attr("descr", "a \"quoted\" thing"),
            )
            .child(Element::new("doc").text("line1 & line2"));
        let s = e.to_document_string();
        let doc = Document::parse(&s).unwrap();
        assert_eq!(doc.root, e);
    }

    #[test]
    fn parse_attr_typed() {
        let doc = Document::parse(r#"<m id="42" frac="2.5" bad="x"/>"#).unwrap();
        assert_eq!(doc.root.parse_attr::<u32>("id").unwrap(), 42);
        assert_eq!(doc.root.parse_attr::<f64>("frac").unwrap(), 2.5);
        assert!(doc.root.parse_attr::<u32>("bad").is_err());
        assert!(doc.root.parse_attr::<u32>("absent").is_err());
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = Document::parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn cdata_preserved_as_text() {
        let doc = Document::parse("<a><![CDATA[x < y]]></a>").unwrap();
        assert_eq!(doc.root.text_content(), "x < y");
    }

    #[test]
    fn elements_iterator_filters_by_name() {
        let doc = Document::parse("<a><x/><y/><x/></a>").unwrap();
        assert_eq!(doc.root.elements("x").count(), 2);
        assert_eq!(doc.root.all_elements().count(), 3);
        assert!(doc.root.require_element("z").is_err());
    }
}
