//! Fast shortest-round-trip `f64` formatting for severity rows.
//!
//! Severity sections dominate `.cube` files, and the standard
//! library's `{}` formatting machinery is most of the streaming
//! write's cost. [`push_f64`] replaces it with a three-tier cascade,
//! every tier byte-identical to `{}`:
//!
//! 1. a fixed-notation path for values that are exact multiples of
//!    10⁻⁶ below 2³² ([`push_fixed_micro`]) — measurement data
//!    quantized at timer resolution lands here almost always, and the
//!    value reduces to one integer itoa;
//! 2. the Grisu3 algorithm (Loitsch, PLDI 2010, as hardened in
//!    double-conversion): 64-bit fixed-point digit generation against
//!    the value's rounding boundaries, which either *proves* it
//!    produced the closest shortest representation or reports failure;
//! 3. `write!("{v}")` for non-finite values and the ≲0.5% of inputs
//!    Grisu3 cannot certify.
//!
//! The format stability golden test and the differential property
//! tests in `tests/streaming_roundtrip.rs` depend on the byte-for-byte
//! guarantee.
//!
//! The cached powers of ten that Grisu needs are not a baked-in table:
//! they are computed exactly once per process with a small bignum
//! (correctly rounded 64-bit significands of `10^k` for `k` in
//! `-348..=340` step 8), which keeps this module self-contained and
//! auditable. The differential tests below compare against `format!`
//! over random bit patterns and structured corner cases.

use std::fmt::Write as _;
use std::sync::OnceLock;

/// Appends `v` to `out`, byte-identical to `write!(out, "{v}")`.
pub fn push_f64(out: &mut String, v: f64) {
    if v == 0.0 {
        // Covers -0.0 too: `{}` prints the sign of a negative zero.
        out.push_str(if v.is_sign_negative() { "-0" } else { "0" });
        return;
    }
    if push_fixed_micro(out, v) {
        return;
    }
    if v.is_finite() {
        let mut buf = [0u8; 40];
        if let Some((len, k)) = grisu3(v.abs(), &mut buf) {
            render(out, v < 0.0, &buf[..len], k);
            return;
        }
    }
    // Non-finite values and the rare inputs Grisu3 cannot certify.
    let _ = write!(out, "{v}");
}

/// Fast path for measurement-like values: exactly a multiple of 10⁻⁶
/// after double rounding, with magnitude below 2³². Profilers quantize
/// timestamps at timer resolution, so real severity data lands here
/// almost always; uniform random doubles almost never do.
///
/// Correctness: let `r = round(v·10⁶)` (as doubles). The guard
/// `r / 10⁶ == v` certifies that the real number `r·10⁻⁶` rounds to
/// `v`, i.e. lies within half an ulp of it. For `|v| < 2³²` an ulp is
/// below 10⁻⁶, so that interval contains exactly **one** multiple of
/// 10⁻⁶ — and every decimal with at most six fractional digits is such
/// a multiple, while one with seven or more has a strictly longer
/// significand than `r` (which has at most six). Hence `r·10⁻⁶`, with
/// trailing fractional zeros stripped, is the unique shortest decimal
/// that round-trips: byte-for-byte what `{}` prints. Returns `false`
/// (emitting nothing) for every value outside the class, including
/// NaN, infinities, and exact zero.
fn push_fixed_micro(out: &mut String, v: f64) -> bool {
    let a = v.abs();
    // Zero is the caller's case; NaN must fall to the `{}` tier.
    if a.is_nan() || a >= 4_294_967_296.0 || a == 0.0 {
        return false;
    }
    let r = (a * 1e6).round();
    if r / 1e6 != a || r == 0.0 {
        return false;
    }
    let mut n = r as u64; // < 2³²·10⁶ < 2⁵³, exact
    let mut frac = 6u32;
    while frac > 0 && n.is_multiple_of(10) {
        n /= 10;
        frac -= 1;
    }
    // Sign + up to 10 integral digits + '.' + up to 6 fractional.
    let mut tmp = [0u8; 24];
    let mut i = tmp.len();
    if frac > 0 {
        for _ in 0..frac {
            i -= 1;
            tmp[i] = b'0' + (n % 10) as u8;
            n /= 10;
        }
        i -= 1;
        tmp[i] = b'.';
    }
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    if v < 0.0 {
        i -= 1;
        tmp[i] = b'-';
    }
    // SAFETY: `tmp[i..]` holds only ASCII bytes written above.
    out.push_str(unsafe { std::str::from_utf8_unchecked(&tmp[i..]) });
    true
}

/// Renders `digits × 10^k` positionally, matching `{}`: no exponent
/// form, no trailing `.0`, leading `0.` for pure fractions.
///
/// The common case (every severity-like magnitude) is assembled —
/// sign included — in one stack buffer and appended with a single
/// `push_str`; extreme exponents take the general path below.
fn render(out: &mut String, neg: bool, digits: &[u8], k: i32) {
    let n = digits.len();
    let point = n as i32 + k;
    let mut tmp = [0u8; 40];
    let sign = usize::from(neg);
    let body = if k >= 0 {
        n + k as usize
    } else if point > 0 {
        n + 1
    } else {
        n + 2 + (-point) as usize
    };
    let total = sign + body;
    if total <= tmp.len() {
        tmp[0] = b'-';
        let t = &mut tmp[sign..total];
        if k >= 0 {
            t[..n].copy_from_slice(digits);
            t[n..].fill(b'0');
        } else if point > 0 {
            let p = point as usize;
            t[..p].copy_from_slice(&digits[..p]);
            t[p] = b'.';
            t[p + 1..].copy_from_slice(&digits[p..]);
        } else {
            let zeros = (-point) as usize;
            t[0] = b'0';
            t[1] = b'.';
            t[2..2 + zeros].fill(b'0');
            t[2 + zeros..].copy_from_slice(digits);
        }
        // SAFETY: every byte in `tmp[..total]` was written above and is
        // ASCII — `-`, `.`, `0`, or a digit from `digits` (which
        // `digit_gen` fills with `b'0'..=b'9'` only).
        out.push_str(unsafe { std::str::from_utf8_unchecked(&tmp[..total]) });
        return;
    }

    if neg {
        out.push('-');
    }
    let digits = std::str::from_utf8(digits).expect("grisu digits are ASCII");
    if k >= 0 {
        out.push_str(digits);
        for _ in 0..k {
            out.push('0');
        }
    } else {
        debug_assert!(point <= 0, "long mid-point forms fit the fast path");
        out.push_str("0.");
        for _ in 0..-point {
            out.push('0');
        }
        out.push_str(digits);
    }
}

// ---------------------------------------------------------------------------
// Grisu3 core
// ---------------------------------------------------------------------------

/// A floating-point value `f × 2^e` with a full 64-bit significand.
#[derive(Copy, Clone, Debug)]
struct Fp {
    f: u64,
    e: i32,
}

impl Fp {
    fn normalize(self) -> Fp {
        let s = self.f.leading_zeros() as i32;
        Fp {
            f: self.f << s,
            e: self.e - s,
        }
    }

    /// Rounded 64×64→64 high product; the ≤0.5 ulp error here plus the
    /// ≤0.5 ulp of the cached power is the 1-unit slack `digit_gen`
    /// carries around its intervals.
    fn mul(self, o: Fp) -> Fp {
        let p = u128::from(self.f) * u128::from(o.f);
        Fp {
            f: (p >> 64) as u64 + ((p as u64) >> 63),
            e: self.e + o.e + 64,
        }
    }
}

const SIGNIFICAND_BITS: u32 = 52;
const HIDDEN_BIT: u64 = 1 << SIGNIFICAND_BITS;
const EXPONENT_BIAS: i32 = 1075;

fn fp_of(v: f64) -> Fp {
    let bits = v.to_bits();
    let biased = ((bits >> SIGNIFICAND_BITS) & 0x7ff) as i32;
    let frac = bits & (HIDDEN_BIT - 1);
    if biased == 0 {
        Fp {
            f: frac,
            e: 1 - EXPONENT_BIAS,
        }
    } else {
        Fp {
            f: frac | HIDDEN_BIT,
            e: biased - EXPONENT_BIAS,
        }
    }
}

/// Normalized neighbours `(m⁻, m⁺)` of `v`'s rounding interval, both at
/// the same binary exponent as `fp_of(v).normalize()`.
fn boundaries(v: f64) -> (Fp, Fp) {
    let w = fp_of(v);
    let upper = Fp {
        f: (w.f << 1) + 1,
        e: w.e - 1,
    }
    .normalize();
    // The lower gap is half-sized when v sits on a power of two (its
    // predecessor lives in the binade below), except at the bottom of
    // the subnormal range where spacing is uniform.
    let lower = if w.f == HIDDEN_BIT && w.e > 1 - EXPONENT_BIAS {
        Fp {
            f: (w.f << 2) - 1,
            e: w.e - 2,
        }
    } else {
        Fp {
            f: (w.f << 1) - 1,
            e: w.e - 1,
        }
    };
    let lower = Fp {
        f: lower.f << (lower.e - upper.e),
        e: upper.e,
    };
    (lower, upper)
}

/// Digit generation works in the window `scaled.e ∈ [ALPHA, GAMMA]`:
/// low enough that the fractional accumulator survives ×10 steps in 64
/// bits, high enough that the integral part fits a `u32`.
const ALPHA: i32 = -60;
const GAMMA: i32 = -32;

/// Shortest-digit generation for finite positive `v`. On success the
/// digits `buf[..len]` satisfy `v == digits × 10^k` exactly under
/// round-to-nearest parsing, and they are the unique closest shortest
/// representation (what `{}` prints). Trailing zeros are already
/// stripped.
fn grisu3(v: f64, buf: &mut [u8; 40]) -> Option<(usize, i32)> {
    let w = fp_of(v).normalize();
    let (low, high) = boundaries(v);
    debug_assert_eq!(low.e, w.e);
    debug_assert_eq!(high.e, w.e);
    let (pow, dec) = cached_power(w.e);
    let scaled_w = w.mul(pow);
    let scaled_low = low.mul(pow);
    let scaled_high = high.mul(pow);
    let (mut len, kappa) = digit_gen(scaled_low, scaled_w, scaled_high, buf)?;
    let mut k = kappa - dec;
    // The weeding step can land on a value whose last digit is zero;
    // the shortest form drops it (the value is unchanged).
    while len > 1 && buf[len - 1] == b'0' {
        len -= 1;
        k += 1;
    }
    Some((len, k))
}

/// Generates the digits of `high` from most significant down, cutting
/// as soon as the remainder fits inside the unsafe interval, then weeds
/// the last digit toward `w`. Returns `None` when the margins cannot
/// certify a closest shortest representation.
fn digit_gen(low: Fp, w: Fp, high: Fp, buf: &mut [u8; 40]) -> Option<(usize, i32)> {
    debug_assert!(low.e == w.e && w.e == high.e);
    debug_assert!((ALPHA..=GAMMA).contains(&w.e));
    let mut unit: u64 = 1;
    let too_low = Fp {
        f: low.f - unit,
        e: low.e,
    };
    let too_high = Fp {
        f: high.f + unit,
        e: high.e,
    };
    let mut unsafe_interval = too_high.f - too_low.f;
    let one = Fp {
        f: 1u64 << -w.e,
        e: w.e,
    };
    let integrals = (too_high.f >> -one.e) as u32;
    let mut fractionals = too_high.f & (one.f - 1);
    debug_assert!(integrals >= 1);

    // The remainder at integral position j is `remaining·2^-e +
    // fractionals`, which is smallest (= `fractionals`) after the last
    // integral digit. So a cut inside the integral digits is possible
    // iff `fractionals < unsafe_interval`; otherwise all integral
    // digits can be emitted unchecked by a plain pairwise itoa.
    if fractionals < unsafe_interval {
        // Cold path: the shortest representation terminates within the
        // integral digits. Quotient chain `quot[j] = integrals / 10^j`
        // keeps every division by a constant; the digit at weight 10^j
        // is `quot[j] - 10·quot[j+1]` and the remainder after cutting
        // there is `integrals - quot[j]·10^j`.
        const POWERS: [u32; 10] = [
            1,
            10,
            100,
            1_000,
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            100_000_000,
            1_000_000_000,
        ];
        let mut quot = [0u32; 11];
        quot[0] = integrals;
        let mut digits = 1;
        while quot[digits - 1] >= 10 {
            quot[digits] = quot[digits - 1] / 10;
            digits += 1;
        }
        let mut len = 0usize;
        for j in (0..digits).rev() {
            buf[len] = b'0' + (quot[j] - 10 * quot[j + 1]) as u8;
            len += 1;
            let remaining = integrals - quot[j] * POWERS[j];
            let rest = (u64::from(remaining) << -one.e) + fractionals;
            if rest < unsafe_interval {
                let ok = round_weed(
                    &mut buf[..len],
                    too_high.f - w.f,
                    unsafe_interval,
                    rest,
                    u64::from(POWERS[j]) << -one.e,
                    unit,
                );
                return ok.then_some((len, j as i32));
            }
        }
        unreachable!("rest at j = 0 equals fractionals < unsafe_interval");
    }

    let mut len = itoa_u32(integrals, buf);
    let mut kappa = 0i32;

    // Fractional digits, four per iteration: the serial dependency is
    // `fractionals ← fractionals·10⁴ mod 2^-e` (one widening multiply
    // per four digits instead of one per digit), with the three
    // intra-group cut positions checked off that chain, so the cut
    // point — and thus the emitted length — is identical to the
    // reference one-digit-at-a-time loop.
    //
    // Range safety: `fractionals < one.f ≤ 2^60`, so `·10` products fit
    // u64; the `·10⁴` step widens to u128. Each `uⱼ₊₁ = uⱼ·10` is only
    // computed after `fⱼ ≥ uⱼ` ruled out the cut, which bounds
    // `uⱼ < 2^60` inductively (the loop is entered with
    // `unsafe_interval ≤ fractionals`).
    let mask = one.f - 1;
    let distance = too_high.f - w.f;
    loop {
        let y1 = fractionals * 10;
        let f1 = y1 & mask;
        let f2 = (f1 * 10) & mask;
        let f3 = (f2 * 10) & mask;
        let z = u128::from(fractionals) * 10_000;
        let group = (z >> -one.e) as u32;
        let next = z as u64 & mask;

        let u1 = unsafe_interval * 10;
        if f1 < u1 {
            buf[len] = b'0' + (y1 >> -one.e) as u8;
            len += 1;
            let unit = unit * 10;
            let ok = round_weed(
                &mut buf[..len],
                distance.wrapping_mul(unit),
                u1,
                f1,
                one.f,
                unit,
            );
            return ok.then_some((len, kappa - 1));
        }
        let u2 = u1 * 10;
        if f2 < u2 {
            let pair = 2 * (group / 100) as usize;
            buf[len] = DIGIT_PAIRS[pair];
            buf[len + 1] = DIGIT_PAIRS[pair + 1];
            len += 2;
            let unit = unit * 100;
            let ok = round_weed(
                &mut buf[..len],
                distance.wrapping_mul(unit),
                u2,
                f2,
                one.f,
                unit,
            );
            return ok.then_some((len, kappa - 2));
        }
        let u3 = u2 * 10;
        if f3 < u3 {
            let lead = group / 10;
            let pair = 2 * (lead / 10) as usize;
            buf[len] = DIGIT_PAIRS[pair];
            buf[len + 1] = DIGIT_PAIRS[pair + 1];
            buf[len + 2] = b'0' + (lead % 10) as u8;
            len += 3;
            let unit = unit * 1000;
            let ok = round_weed(
                &mut buf[..len],
                distance.wrapping_mul(unit),
                u3,
                f3,
                one.f,
                unit,
            );
            return ok.then_some((len, kappa - 3));
        }
        let hi = 2 * (group / 100) as usize;
        let lo = 2 * (group % 100) as usize;
        buf[len] = DIGIT_PAIRS[hi];
        buf[len + 1] = DIGIT_PAIRS[hi + 1];
        buf[len + 2] = DIGIT_PAIRS[lo];
        buf[len + 3] = DIGIT_PAIRS[lo + 1];
        len += 4;
        fractionals = next;
        unsafe_interval = u3 * 10;
        unit *= 10_000;
        kappa -= 4;
        if fractionals < unsafe_interval {
            let ok = round_weed(
                &mut buf[..len],
                distance.wrapping_mul(unit),
                unsafe_interval,
                fractionals,
                one.f,
                unit,
            );
            return ok.then_some((len, kappa));
        }
    }
}

/// Unchecked decimal emission of `x ≥ 1` into the front of `out`;
/// returns the digit count. Used when the cut is known to fall past the
/// integral digits, so no per-digit interval test is needed.
fn itoa_u32(mut x: u32, out: &mut [u8; 40]) -> usize {
    let count = if x < 100 {
        if x < 10 {
            1
        } else {
            2
        }
    } else if x < 10_000 {
        if x < 1_000 {
            3
        } else {
            4
        }
    } else if x < 1_000_000 {
        if x < 100_000 {
            5
        } else {
            6
        }
    } else if x < 100_000_000 {
        if x < 10_000_000 {
            7
        } else {
            8
        }
    } else if x < 1_000_000_000 {
        9
    } else {
        10
    };
    let mut i = count;
    while x >= 100 {
        let pair = 2 * (x % 100) as usize;
        x /= 100;
        i -= 2;
        out[i] = DIGIT_PAIRS[pair];
        out[i + 1] = DIGIT_PAIRS[pair + 1];
    }
    if x >= 10 {
        let pair = 2 * x as usize;
        out[0] = DIGIT_PAIRS[pair];
        out[1] = DIGIT_PAIRS[pair + 1];
    } else {
        out[0] = b'0' + x as u8;
    }
    count
}

/// ASCII digit pairs `"00" … "99"` for two-at-a-time emission.
static DIGIT_PAIRS: [u8; 200] = {
    let mut t = [0u8; 200];
    let mut i = 0;
    while i < 100 {
        t[2 * i] = b'0' + (i / 10) as u8;
        t[2 * i + 1] = b'0' + (i % 10) as u8;
        i += 1;
    }
    t
};

/// Adjusts the last generated digit toward `w` and verifies the result
/// is the unique closest value in the safe interval (double-conversion's
/// `RoundWeed`). `wrapping_sub` mirrors the reference's unsigned
/// arithmetic.
fn round_weed(
    buf: &mut [u8],
    distance_too_high_w: u64,
    unsafe_interval: u64,
    mut rest: u64,
    ten_kappa: u64,
    unit: u64,
) -> bool {
    let small = distance_too_high_w.wrapping_sub(unit);
    let big = distance_too_high_w.wrapping_add(unit);
    while rest < small
        && unsafe_interval - rest >= ten_kappa
        && (rest + ten_kappa < small || small - rest >= rest + ten_kappa - small)
    {
        *buf.last_mut().expect("at least one digit") -= 1;
        rest += ten_kappa;
    }
    if rest < big
        && unsafe_interval - rest >= ten_kappa
        && (rest + ten_kappa < big || big - rest > rest + ten_kappa - big)
    {
        return false;
    }
    2 * unit <= rest && rest <= unsafe_interval.wrapping_sub(4 * unit)
}

// ---------------------------------------------------------------------------
// cached powers of ten
// ---------------------------------------------------------------------------

const CACHE_MIN_DEC: i32 = -348;
const CACHE_STEP: i32 = 8;

fn cache() -> &'static [Fp] {
    static TABLE: OnceLock<Vec<Fp>> = OnceLock::new();
    TABLE.get_or_init(|| {
        (0..87)
            .map(|i| pow10_fp(CACHE_MIN_DEC + CACHE_STEP * i))
            .collect()
    })
}

/// Picks the cached power `10^dec` whose product with a value of binary
/// exponent `e` lands in `[ALPHA, GAMMA]`; returns `(power, dec)`.
fn cached_power(e: i32) -> (Fp, i32) {
    // ceil((ALPHA - e - 63) · log10 2), then up to the next table slot.
    let dk = f64::from(-61 - e) * std::f64::consts::LOG10_2 + 347.0;
    let mut k = dk as i32;
    if dk > f64::from(k) {
        k += 1;
    }
    let index = ((k >> 3) + 1) as usize;
    let pow = cache()[index];
    debug_assert!((ALPHA..=GAMMA).contains(&(e + pow.e + 64)));
    (pow, CACHE_MIN_DEC + CACHE_STEP * index as i32)
}

/// Correctly rounded `Fp` for `10^dec`, computed with exact bignum
/// arithmetic: repeated small multiplications for `dec ≥ 0`, binary
/// long division of a power of two for `dec < 0`. Ties cannot occur
/// for these inputs (see the in-line arguments), so round-half-up on
/// the cut bit is exact round-to-nearest.
fn pow10_fp(dec: i32) -> Fp {
    if dec >= 0 {
        let mut big = vec![1u32];
        for _ in 0..dec {
            mul_small(&mut big, 10);
        }
        // A tie would need the cut-off bits to be 100…0; 10^dec's
        // lowest set bit is bit `dec`, which never aligns that way for
        // any dec with more than 64 significant bits above it.
        let (f, shift) = top64(&big);
        Fp { f, e: shift }
    } else {
        let mut den = vec![1u32];
        for _ in 0..-dec {
            mul_small(&mut den, 10);
        }
        // q = ⌊2^s / 10^-dec⌋ has exactly 67 bits; the division is
        // never exact (the denominator has a factor 5), so the cut
        // sits strictly below the true value and half-up is correct.
        let s = bit_len(&den) + 66;
        let q = div_pow2(s, &den);
        let (f, shift) = top64(&q);
        Fp {
            f,
            e: shift - s as i32,
        }
    }
}

/// Top 64 bits of a nonzero bignum, rounded half-up on the first cut
/// bit: `value ≈ f × 2^e` with `f ∈ [2^63, 2^64)`.
fn top64(n: &[u32]) -> (u64, i32) {
    let len = bit_len(n);
    debug_assert!(len > 0);
    if len <= 64 {
        let mut f = 0u64;
        for (i, &limb) in n.iter().enumerate().take(2) {
            f |= u64::from(limb) << (32 * i);
        }
        let s = 64 - len as i32;
        return (f << s, -s);
    }
    let cut = len - 64;
    let mut f = 0u64;
    for i in 0..64 {
        if get_bit(n, cut + i) {
            f |= 1 << i;
        }
    }
    let mut e = cut as i32;
    if get_bit(n, cut - 1) {
        f = f.wrapping_add(1);
        if f == 0 {
            f = 1 << 63;
            e += 1;
        }
    }
    (f, e)
}

fn mul_small(n: &mut Vec<u32>, m: u32) {
    let mut carry = 0u64;
    for limb in n.iter_mut() {
        let p = u64::from(*limb) * u64::from(m) + carry;
        *limb = p as u32;
        carry = p >> 32;
    }
    if carry > 0 {
        n.push(carry as u32);
    }
}

fn bit_len(n: &[u32]) -> usize {
    for (i, &limb) in n.iter().enumerate().rev() {
        if limb != 0 {
            return 32 * i + (32 - limb.leading_zeros() as usize);
        }
    }
    0
}

fn get_bit(n: &[u32], i: usize) -> bool {
    n.get(i / 32).is_some_and(|&limb| limb >> (i % 32) & 1 == 1)
}

/// `⌊2^s / den⌋` by restoring binary long division (init-time only).
fn div_pow2(s: usize, den: &[u32]) -> Vec<u32> {
    let mut q = vec![0u32; s / 32 + 1];
    let mut rem = vec![0u32; den.len() + 1];
    for i in (0..=s).rev() {
        let mut carry = u32::from(i == s);
        for limb in rem.iter_mut() {
            let out = *limb >> 31;
            *limb = (*limb << 1) | carry;
            carry = out;
        }
        if ge(&rem, den) {
            sub(&mut rem, den);
            q[i / 32] |= 1 << (i % 32);
        }
    }
    q
}

fn ge(a: &[u32], b: &[u32]) -> bool {
    for i in (0..a.len().max(b.len())).rev() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        if x != y {
            return x > y;
        }
    }
    true
}

fn sub(a: &mut [u32], b: &[u32]) {
    let mut borrow = 0u64;
    for (i, limb) in a.iter_mut().enumerate() {
        let rhs = u64::from(b.get(i).copied().unwrap_or(0)) + borrow;
        let lhs = u64::from(*limb);
        if lhs >= rhs {
            *limb = (lhs - rhs) as u32;
            borrow = 0;
        } else {
            *limb = (lhs + (1 << 32) - rhs) as u32;
            borrow = 1;
        }
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
}

// ---------------------------------------------------------------------------
// tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(v: f64) -> String {
        let mut s = String::new();
        push_f64(&mut s, v);
        s
    }

    #[track_caller]
    fn check(v: f64) {
        assert_eq!(fast(v), format!("{v}"), "bits {:#018x}", v.to_bits());
    }

    #[test]
    fn matches_std_on_corner_cases() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            0.1,
            0.3,
            1.5,
            3.0,
            10.0,
            100.0,
            0.25,
            -2.375,
            1e16,
            1e17 - 2.0,
            1e23, // classic shortest-representation stress value
            1e300,
            1e-300,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::from_bits(1),               // smallest subnormal
            f64::from_bits(0xfffffffffffff), // largest subnormal
            (1u64 << 53) as f64 - 1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            2f64.powi(-1022),
            123_456_789.123_456_79,
            0.000001,
            0.0000001,
        ] {
            check(v);
        }
        // Powers of ten and of two across the whole range.
        for p in -308..=308 {
            check(format!("1e{p}").parse::<f64>().unwrap());
        }
        for p in -1074..=1023 {
            check(2f64.powi(p));
            check(1.5 * 2f64.powi(p));
        }
    }

    #[test]
    fn matches_std_on_random_bit_patterns() {
        // Deterministic xorshift over raw bit patterns: every exponent
        // class, subnormals and negatives included.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut checked = 0;
        while checked < 50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = f64::from_bits(x);
            if v.is_nan() {
                continue;
            }
            check(v);
            checked += 1;
        }
    }

    #[test]
    fn matches_std_on_severity_like_values() {
        // The shapes the writers actually emit: full-precision values
        // from arithmetic, plus eighth-steps from the property tests.
        let mut state = 1u64;
        for i in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
            check(unit * 10.0 - 2.0);
            check(f64::from(i % 400 - 200) * 0.125);
            // Quantized to timer resolution: the fixed-notation class.
            check((unit * 10.0 - 2.0) * 1e6_f64.recip() * 1e6);
            check(((unit * 10.0 - 2.0) * 1e6).round() / 1e6);
            check(((unit * 1e10).round() / 1e6) * if i % 2 == 0 { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn matches_std_around_fixed_path_boundaries() {
        // Magnitude gate (2³²), resolution gate (multiples of 10⁻⁶),
        // and values straddling both.
        let mut cases = vec![
            1e-6,
            -1e-6,
            2e-6,
            9.9e-5,
            0.000001,
            0.999999,
            1.000001,
            123456.654321,
            4294967295.999999,
            4294967296.0,
            4294967296.000001,
            4294967297.5,
            8589934592.25,
            1e15 + 0.5,
            0.1,
            0.5,
            3.0,
            -2.75,
        ];
        for i in 0..5000u64 {
            // Dense walk over the 10⁻⁶ grid and its neighbors in ulps.
            let g = i as f64 / 1e6;
            cases.push(g);
            cases.push(-g);
            cases.push(g.next_up());
            cases.push(g.next_down());
            cases.push((i as f64 * 4096.0 + 0.33) / 1e6);
        }
        for v in cases {
            check(v);
        }
    }

    #[test]
    fn cached_power_covers_every_normalized_exponent() {
        // Normalized f64 exponents span [-1137, 960]; the scaled
        // exponent must land in digit_gen's window for each.
        for e in -1137..=960 {
            let (pow, dec) = cached_power(e);
            let scaled = e + pow.e + 64;
            assert!(
                (ALPHA..=GAMMA).contains(&scaled),
                "e={e} dec={dec} scaled={scaled}"
            );
        }
    }

    #[test]
    fn cached_powers_are_correctly_rounded_spot_checks() {
        // 10^0 and exactly representable powers must come out exact.
        assert_eq!(pow10_fp(0).f, 1 << 63);
        assert_eq!(pow10_fp(0).e, -63);
        // 10^8 has 27 bits, so its normalized form is an exact shift.
        let p8 = pow10_fp(8);
        assert_eq!((p8.f, p8.e), (100_000_000u64 << 37, -37));
    }
}

#[cfg(test)]
mod probe {
    use super::*;

    #[test]
    #[ignore = "diagnostic"]
    fn timing() {
        let mut state = 1u64;
        let mut vals = Vec::new();
        for _ in 0..100_000u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
            vals.push(unit * 10.0 - 2.0);
        }
        let mut buf = [0u8; 40];
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            for &v in &vals {
                std::hint::black_box(grisu3(std::hint::black_box(v), &mut buf));
            }
        }
        eprintln!(
            "grisu3 alone: {:.1} ns/call",
            t0.elapsed().as_nanos() as f64 / 1e6
        );
        let mut out = String::with_capacity(64);
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            for &v in &vals {
                out.clear();
                push_f64(&mut out, std::hint::black_box(v));
                std::hint::black_box(&out);
            }
        }
        eprintln!(
            "push_f64: {:.1} ns/call",
            t0.elapsed().as_nanos() as f64 / 1e6
        );

        // setup portion only: everything before digit_gen
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            for &v in &vals {
                let v = std::hint::black_box(v);
                let w = fp_of(v).normalize();
                let (low, high) = boundaries(v);
                let (pow, dec) = cached_power(w.e);
                std::hint::black_box((w.mul(pow), low.mul(pow), high.mul(pow), dec));
            }
        }
        eprintln!(
            "setup only: {:.1} ns/call",
            t0.elapsed().as_nanos() as f64 / 1e6
        );

        // cached_power alone
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            for &v in &vals {
                let w = fp_of(std::hint::black_box(v)).normalize();
                std::hint::black_box(cached_power(w.e));
            }
        }
        eprintln!(
            "fp+cached_power: {:.1} ns/call",
            t0.elapsed().as_nanos() as f64 / 1e6
        );
    }

    #[test]
    #[ignore = "diagnostic"]
    fn fallback_rate() {
        let mut state = 1u64;
        let mut buf = [0u8; 40];
        let n = 100_000;
        let (mut fail_full, mut fail_quant) = (0, 0);
        let mut quant = Vec::with_capacity(n);
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
            let v: f64 = unit * 10.0 - 2.0;
            if grisu3(v.abs(), &mut buf).is_none() {
                fail_full += 1;
            }
            let q = (v * 1e6).round() / 1e6;
            quant.push(q);
            if grisu3(q.abs(), &mut buf).is_none() {
                fail_quant += 1;
            }
        }
        eprintln!("fallback full-precision: {fail_full}/{n}  quantized: {fail_quant}/{n}");
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            for &v in &quant {
                std::hint::black_box(grisu3(std::hint::black_box(v.abs()), &mut buf));
            }
        }
        eprintln!(
            "grisu3 on quantized: {:.1} ns/call",
            t0.elapsed().as_nanos() as f64 / (10 * n) as f64
        );
        let mut out = String::with_capacity(64);
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            for &v in &quant {
                out.clear();
                push_f64(&mut out, std::hint::black_box(v));
                std::hint::black_box(&out);
            }
        }
        eprintln!(
            "push_f64 on quantized: {:.1} ns/call",
            t0.elapsed().as_nanos() as f64 / (10 * n) as f64
        );
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            for &v in &quant {
                out.clear();
                let _ = write!(out, "{v}");
                std::hint::black_box(&out);
            }
        }
        eprintln!(
            "std {{}} on quantized: {:.1} ns/call",
            t0.elapsed().as_nanos() as f64 / (10 * n) as f64
        );
    }
}
