//! Error type shared by the XML substrate and the CUBE format layer.

use std::error::Error;
use std::fmt;

/// Position in the input, 1-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes, for speed; good enough for error
    /// reporting on the ASCII-heavy CUBE format).
    pub column: u32,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors raised while lexing, parsing, or interpreting a `.cube` file.
#[derive(Debug)]
pub enum XmlError {
    /// The lexer met a character it cannot interpret.
    Syntax { position: Position, message: String },
    /// Well-formedness violation (mismatched tags, multiple roots, ...).
    Malformed { position: Position, message: String },
    /// The document is valid XML but not a valid CUBE file. The
    /// position, when known, is that of the offending element's start
    /// tag.
    Format {
        position: Option<Position>,
        message: String,
    },
    /// A numeric attribute failed to parse or an id is out of range.
    /// The position, when known, is that of the enclosing element's
    /// start tag.
    Value {
        position: Option<Position>,
        message: String,
    },
    /// The experiment read from the file violates the data model.
    Model(cube_model::ModelError),
    /// Underlying I/O failure when reading or writing a file.
    Io(std::io::Error),
}

impl XmlError {
    pub(crate) fn syntax(position: Position, message: impl Into<String>) -> Self {
        Self::Syntax {
            position,
            message: message.into(),
        }
    }

    pub(crate) fn malformed(position: Position, message: impl Into<String>) -> Self {
        Self::Malformed {
            position,
            message: message.into(),
        }
    }

    pub(crate) fn format(message: impl Into<String>) -> Self {
        Self::Format {
            position: None,
            message: message.into(),
        }
    }

    pub(crate) fn format_at(position: Position, message: impl Into<String>) -> Self {
        Self::Format {
            position: Some(position),
            message: message.into(),
        }
    }

    pub(crate) fn value(message: impl Into<String>) -> Self {
        Self::Value {
            position: None,
            message: message.into(),
        }
    }

    pub(crate) fn value_at(position: Position, message: impl Into<String>) -> Self {
        Self::Value {
            position: Some(position),
            message: message.into(),
        }
    }

    /// The source position this error points at, when one is known.
    pub fn position(&self) -> Option<Position> {
        match self {
            Self::Syntax { position, .. } | Self::Malformed { position, .. } => Some(*position),
            Self::Format { position, .. } | Self::Value { position, .. } => *position,
            Self::Model(_) | Self::Io(_) => None,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { position, message } => {
                write!(f, "XML syntax error at {position}: {message}")
            }
            Self::Malformed { position, message } => {
                write!(f, "malformed XML at {position}: {message}")
            }
            Self::Format {
                position: Some(p),
                message,
            } => write!(f, "not a valid CUBE file at {p}: {message}"),
            Self::Format {
                position: None,
                message,
            } => write!(f, "not a valid CUBE file: {message}"),
            Self::Value {
                position: Some(p),
                message,
            } => write!(f, "invalid value in CUBE file at {p}: {message}"),
            Self::Value {
                position: None,
                message,
            } => write!(f, "invalid value in CUBE file: {message}"),
            Self::Model(e) => write!(f, "experiment violates the data model: {e}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl Error for XmlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cube_model::ModelError> for XmlError {
    fn from(e: cube_model::ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<std::io::Error> for XmlError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::syntax(Position { line: 3, column: 7 }, "unexpected '<'");
        assert!(e.to_string().contains("3:7"));
    }

    #[test]
    fn model_error_chains_source() {
        let e: XmlError = cube_model::ModelError::NoThreads.into();
        assert!(Error::source(&e).is_some());
    }
}
