//! Error type shared by the XML substrate and the CUBE format layer.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// Position in the input, 1-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes, for speed; good enough for error
    /// reporting on the ASCII-heavy CUBE format).
    pub column: u32,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Which resource limit a document exceeded.
///
/// Limits are configured through
/// [`ReadLimits`](crate::reader::ReadLimits); each kind maps to one
/// `E2xx` lint code so bounded-resource refusals are diagnosable like
/// any other defect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimitKind {
    /// Total input size in bytes (`E200`).
    InputBytes,
    /// Element nesting depth (`E201`).
    Depth,
    /// Entities defined in one metadata dimension (`E202`).
    Entities,
    /// Byte length of a single severity row's text (`E203`).
    RowBytes,
}

/// Errors raised while lexing, parsing, or interpreting a `.cube` file.
#[derive(Debug)]
pub enum XmlError {
    /// The lexer met a character it cannot interpret.
    Syntax { position: Position, message: String },
    /// Well-formedness violation (mismatched tags, multiple roots, ...).
    Malformed { position: Position, message: String },
    /// The document is valid XML but not a valid CUBE file. The
    /// position, when known, is that of the offending element's start
    /// tag.
    Format {
        position: Option<Position>,
        message: String,
    },
    /// A numeric attribute failed to parse or an id is out of range.
    /// The position, when known, is that of the enclosing element's
    /// start tag.
    Value {
        position: Option<Position>,
        message: String,
    },
    /// The experiment read from the file violates the data model.
    Model(cube_model::ModelError),
    /// The document exceeds a configured resource limit. The position,
    /// when known, is where the limit was crossed.
    Limit {
        position: Option<Position>,
        kind: LimitKind,
        message: String,
    },
    /// The checksum footer does not match the document bytes: the file
    /// was corrupted after it was written.
    Checksum { expected: u32, actual: u32 },
    /// Underlying I/O failure when reading or writing a file. `path` is
    /// the file involved, when the operation had one.
    Io {
        path: Option<PathBuf>,
        source: std::io::Error,
    },
}

impl XmlError {
    pub(crate) fn syntax(position: Position, message: impl Into<String>) -> Self {
        Self::Syntax {
            position,
            message: message.into(),
        }
    }

    pub(crate) fn malformed(position: Position, message: impl Into<String>) -> Self {
        Self::Malformed {
            position,
            message: message.into(),
        }
    }

    pub(crate) fn format(message: impl Into<String>) -> Self {
        Self::Format {
            position: None,
            message: message.into(),
        }
    }

    pub(crate) fn format_at(position: Position, message: impl Into<String>) -> Self {
        Self::Format {
            position: Some(position),
            message: message.into(),
        }
    }

    pub(crate) fn value(message: impl Into<String>) -> Self {
        Self::Value {
            position: None,
            message: message.into(),
        }
    }

    pub(crate) fn value_at(position: Position, message: impl Into<String>) -> Self {
        Self::Value {
            position: Some(position),
            message: message.into(),
        }
    }

    pub(crate) fn limit_at(
        position: Position,
        kind: LimitKind,
        message: impl Into<String>,
    ) -> Self {
        Self::Limit {
            position: Some(position),
            kind,
            message: message.into(),
        }
    }

    pub(crate) fn limit(kind: LimitKind, message: impl Into<String>) -> Self {
        Self::Limit {
            position: None,
            kind,
            message: message.into(),
        }
    }

    /// An I/O error tagged with the file it occurred on.
    pub(crate) fn io_at(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        Self::Io {
            path: Some(path.into()),
            source,
        }
    }

    /// The source position this error points at, when one is known.
    pub fn position(&self) -> Option<Position> {
        match self {
            Self::Syntax { position, .. } | Self::Malformed { position, .. } => Some(*position),
            Self::Format { position, .. }
            | Self::Value { position, .. }
            | Self::Limit { position, .. } => *position,
            Self::Model(_) | Self::Io { .. } | Self::Checksum { .. } => None,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { position, message } => {
                write!(f, "XML syntax error at {position}: {message}")
            }
            Self::Malformed { position, message } => {
                write!(f, "malformed XML at {position}: {message}")
            }
            Self::Format {
                position: Some(p),
                message,
            } => write!(f, "not a valid CUBE file at {p}: {message}"),
            Self::Format {
                position: None,
                message,
            } => write!(f, "not a valid CUBE file: {message}"),
            Self::Value {
                position: Some(p),
                message,
            } => write!(f, "invalid value in CUBE file at {p}: {message}"),
            Self::Value {
                position: None,
                message,
            } => write!(f, "invalid value in CUBE file: {message}"),
            Self::Model(e) => write!(f, "experiment violates the data model: {e}"),
            Self::Limit {
                position: Some(p),
                message,
                ..
            } => write!(f, "resource limit exceeded at {p}: {message}"),
            Self::Limit {
                position: None,
                message,
                ..
            } => write!(f, "resource limit exceeded: {message}"),
            Self::Checksum { expected, actual } => write!(
                f,
                "checksum mismatch: footer records crc32 {expected:08x}, document bytes hash to {actual:08x}"
            ),
            Self::Io {
                path: Some(p),
                source,
            } => write!(f, "I/O error on {}: {source}", p.display()),
            Self::Io { path: None, source } => write!(f, "I/O error: {source}"),
        }
    }
}

impl Error for XmlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<cube_model::ModelError> for XmlError {
    fn from(e: cube_model::ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<std::io::Error> for XmlError {
    fn from(e: std::io::Error) -> Self {
        Self::Io {
            path: None,
            source: e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::syntax(Position { line: 3, column: 7 }, "unexpected '<'");
        assert!(e.to_string().contains("3:7"));
    }

    #[test]
    fn model_error_chains_source() {
        let e: XmlError = cube_model::ModelError::NoThreads.into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn io_error_display_includes_path() {
        let e = XmlError::io_at(
            "/tmp/x.cube",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("/tmp/x.cube"), "{e}");
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn limit_and_checksum_display() {
        let e = XmlError::limit_at(
            Position { line: 2, column: 1 },
            LimitKind::Depth,
            "nesting depth 300 exceeds the limit of 256",
        );
        assert!(e.to_string().contains("2:1"), "{e}");
        assert_eq!(e.position(), Some(Position { line: 2, column: 1 }));
        let c = XmlError::Checksum {
            expected: 0xdeadbeef,
            actual: 0x12345678,
        };
        assert!(c.to_string().contains("deadbeef"), "{c}");
        assert!(c.to_string().contains("12345678"), "{c}");
    }
}
