//! The CUBE experiment file format.
//!
//! [`write_experiment`] serializes an [`Experiment`] into the `.cube`
//! XML layout documented in the crate docs; [`read_experiment`] parses
//! it back. Identifiers are written explicitly and must be dense
//! (0..n in document order), mirroring the original format's reliance on
//! dense integer ids.
//!
//! Zero severities are omitted from the file: a `<row>` holding only
//! zeros is skipped, as is a `<matrix>` with no rows. On read, missing
//! tuples default to zero — the same zero-extension convention the
//! algebra uses.
//!
//! [`read_experiment`] and [`write_experiment`] run on the streaming
//! [`CubeReader`](crate::reader::CubeReader) /
//! [`CubeWriter`](crate::writer::CubeWriter) layer, which never builds
//! a DOM. The DOM-based implementations remain available as
//! [`read_experiment_dom`] and [`write_experiment_dom`] for tooling
//! that wants an [`Element`] tree, and as the differential-testing
//! oracle: both pipelines must produce identical results
//! (`tests/streaming_roundtrip.rs` checks byte equality).

use std::fmt::Write as _;
use std::path::Path;

use cube_model::{
    CallNodeId, CallSiteId, Experiment, MachineId, Metadata, MetricId, ModuleId, Provenance,
    RegionId, RegionKind, Severity, Unit,
};

use crate::dom::{Document, Element};
use crate::error::{Position, XmlError};
use crate::footer::{check_footer, footer_line, Crc32Writer, FooterStatus};
use crate::reader::ReadLimits;

/// Current format version written by this crate.
pub const FORMAT_VERSION: &str = "1.0";

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Serializes an experiment into a `.cube` XML string.
///
/// Streams through [`CubeWriter`](crate::writer::CubeWriter) into one
/// pre-sized buffer; no intermediate element tree or per-row strings
/// are built.
pub fn write_experiment(exp: &Experiment) -> String {
    let (nm, nc, nt) = exp.severity().shape();
    // Rough pre-size: ~20 bytes per severity cell covers typical
    // shortest-float text plus markup; metadata is small next to that.
    let hint = 4096 + nm * nc * nt * 20;
    let bytes = crate::writer::CubeWriter::new(Vec::with_capacity(hint))
        .write(exp)
        .expect("writing to a Vec cannot fail");
    String::from_utf8(bytes).expect("writer emits UTF-8 only")
}

/// Serializes an experiment into a `.cube` XML string by building a
/// DOM [`Element`] tree first.
///
/// Byte-identical to [`write_experiment`]; kept for tooling that wants
/// to post-process the tree and as the streaming writer's test oracle.
pub fn write_experiment_dom(exp: &Experiment) -> String {
    let md = exp.metadata();
    let mut root = Element::new("cube")
        .attr("version", FORMAT_VERSION)
        .child(provenance_element(exp.provenance()))
        .child(metrics_element(md))
        .child(program_element(md))
        .child(system_element(md));
    if !md.topologies().is_empty() {
        root = root.child(topologies_element(md));
    }
    root = root.child(severity_element(exp));
    root.to_document_string()
}

/// How [`write_experiment_file_with`] commits an experiment to disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOptions {
    /// Write through a same-directory temporary file, `sync_all`, then
    /// atomically rename over the target — a crash at any point leaves
    /// the pre-existing target byte-identical. Default `true`.
    pub durable: bool,
    /// Append the CRC-32 checksum footer (`docs/FORMAT.md` §10) so
    /// readers can detect silent corruption. Default `true`.
    pub checksum: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        Self {
            durable: true,
            checksum: true,
        }
    }
}

/// Writes an experiment to a file: atomic, durable, and checksummed.
///
/// Streams directly into a buffered file handle — the document is
/// never materialized in memory. Equivalent to
/// [`write_experiment_file_with`] with [`WriteOptions::default`]: the
/// document is written to a temporary file in the target's directory,
/// synced, and renamed into place, so a crash mid-write never corrupts
/// a pre-existing target.
pub fn write_experiment_file(exp: &Experiment, path: impl AsRef<Path>) -> Result<(), XmlError> {
    write_experiment_file_with(exp, path, WriteOptions::default())
}

/// Writes an experiment to a file with explicit [`WriteOptions`].
///
/// I/O errors carry `path` (or the temporary path while staging).
pub fn write_experiment_file_with(
    exp: &Experiment,
    path: impl AsRef<Path>,
    options: WriteOptions,
) -> Result<(), XmlError> {
    let path = path.as_ref();
    if !options.durable {
        return write_file_direct(exp, path, options.checksum);
    }
    // Stage in the same directory so the final rename cannot cross a
    // filesystem boundary (cross-device renames are not atomic).
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .ok_or_else(|| {
            XmlError::io_at(
                path,
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "target path has no file name",
                ),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let res = (|| -> Result<(), XmlError> {
        write_file_direct(exp, &tmp, options.checksum)?;
        std::fs::rename(&tmp, path).map_err(|e| XmlError::io_at(path, e))
    })();
    if res.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    res
}

/// Streams the document into `path` directly (no staging), flushing
/// and syncing before returning so no buffered block can be silently
/// dropped at [`std::io::BufWriter`] drop time.
fn write_file_direct(exp: &Experiment, path: &Path, checksum: bool) -> Result<(), XmlError> {
    use std::io::Write as _;
    let err = |e: std::io::Error| XmlError::io_at(path, e);
    let file = std::fs::File::create(path).map_err(err)?;
    let out = Crc32Writer::new(std::io::BufWriter::new(file));
    let mut out = match crate::writer::CubeWriter::new(out).write(exp) {
        Ok(out) => out,
        Err(XmlError::Io { source, .. }) => return Err(err(source)),
        Err(e) => return Err(e),
    };
    if checksum {
        let line = footer_line(out.crc(), out.len());
        // The footer itself is outside the checksummed region.
        out.get_mut().write_all(line.as_bytes()).map_err(err)?;
    }
    let mut buf = out.into_inner();
    buf.flush().map_err(err)?;
    let file = buf.into_inner().map_err(|e| err(e.into_error()))?;
    file.sync_all().map_err(err)?;
    Ok(())
}

fn provenance_element(p: &Provenance) -> Element {
    match p {
        Provenance::Original { name } => Element::new("provenance")
            .attr("kind", "original")
            .attr("label", name.clone()),
        Provenance::Derived { operator, operands } => {
            let mut e = Element::new("provenance")
                .attr("kind", "derived")
                .attr("operator", operator.clone());
            for op in operands {
                e = e.child(Element::new("operand").text(op.clone()));
            }
            e
        }
        Provenance::Recovered { source, note } => Element::new("provenance")
            .attr("kind", "recovered")
            .attr("label", source.clone())
            .attr("note", note.clone()),
    }
}

fn metrics_element(md: &Metadata) -> Element {
    // Metric trees are written nested, in id order within each level.
    fn emit(md: &Metadata, id: MetricId) -> Element {
        let m = md.metric(id);
        let mut e = Element::new("metric")
            .attr("id", id.raw().to_string())
            .attr("name", m.name.clone())
            .attr("uom", m.unit.as_str())
            .attr("descr", m.description.clone());
        for &child in md.metric_children(id) {
            e = e.child(emit(md, child));
        }
        e
    }
    let mut out = Element::new("metrics");
    for &root in md.metric_roots() {
        out = out.child(emit(md, root));
    }
    out
}

fn program_element(md: &Metadata) -> Element {
    let mut out = Element::new("program");
    for (i, m) in md.modules().iter().enumerate() {
        out = out.child(
            Element::new("module")
                .attr("id", i.to_string())
                .attr("name", m.name.clone())
                .attr("path", m.path.clone()),
        );
    }
    for (i, r) in md.regions().iter().enumerate() {
        out = out.child(
            Element::new("region")
                .attr("id", i.to_string())
                .attr("mod", r.module.raw().to_string())
                .attr("name", r.name.clone())
                .attr("kind", r.kind.as_str())
                .attr("begin", r.begin_line.to_string())
                .attr("end", r.end_line.to_string()),
        );
    }
    for (i, cs) in md.call_sites().iter().enumerate() {
        out = out.child(
            Element::new("csite")
                .attr("id", i.to_string())
                .attr("file", cs.file.clone())
                .attr("line", cs.line.to_string())
                .attr("callee", cs.callee.raw().to_string()),
        );
    }
    // Call trees nested like metrics.
    fn emit(md: &Metadata, id: CallNodeId) -> Element {
        let n = md.call_node(id);
        let mut e = Element::new("cnode")
            .attr("id", id.raw().to_string())
            .attr("csite", n.call_site.raw().to_string());
        for &child in md.call_node_children(id) {
            e = e.child(emit(md, child));
        }
        e
    }
    for &root in md.call_roots() {
        out = out.child(emit(md, root));
    }
    out
}

fn system_element(md: &Metadata) -> Element {
    let mut out = Element::new("system");
    for (mi, machine) in md.machines().iter().enumerate() {
        let mid = MachineId::from_index(mi);
        let mut me = Element::new("machine")
            .attr("id", mi.to_string())
            .attr("name", machine.name.clone());
        for &nid in md.nodes_of_machine(mid) {
            let node = md.node(nid);
            let mut ne = Element::new("node")
                .attr("id", nid.raw().to_string())
                .attr("name", node.name.clone());
            for &pid in md.processes_of_node(nid) {
                let process = md.process(pid);
                let mut pe = Element::new("process")
                    .attr("id", pid.raw().to_string())
                    .attr("rank", process.rank.to_string())
                    .attr("name", process.name.clone());
                for &tid in md.threads_of_process(pid) {
                    let thread = md.thread(tid);
                    pe = pe.child(
                        Element::new("thread")
                            .attr("id", tid.raw().to_string())
                            .attr("num", thread.number.to_string())
                            .attr("name", thread.name.clone()),
                    );
                }
                ne = ne.child(pe);
            }
            me = me.child(ne);
        }
        out = out.child(me);
    }
    out
}

fn topologies_element(md: &Metadata) -> Element {
    let mut out = Element::new("topologies");
    for t in md.topologies() {
        let dims = t
            .dims
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        let periodic = t
            .periodic
            .iter()
            .map(|&p| if p { "1" } else { "0" })
            .collect::<Vec<_>>()
            .join(" ");
        let mut cart = Element::new("cart")
            .attr("name", t.name.clone())
            .attr("dims", dims)
            .attr("periodic", periodic);
        for (p, c) in &t.coords {
            let coord = c.iter().map(u32::to_string).collect::<Vec<_>>().join(" ");
            cart = cart.child(
                Element::new("coord")
                    .attr("proc", p.raw().to_string())
                    .text(coord),
            );
        }
        out = out.child(cart);
    }
    out
}

fn severity_element(exp: &Experiment) -> Element {
    let md = exp.metadata();
    let sev = exp.severity();
    let mut out = Element::new("severity");
    for m in md.metric_ids() {
        let mut matrix = Element::new("matrix").attr("metric", m.raw().to_string());
        let mut has_rows = false;
        for c in md.call_node_ids() {
            let row = sev.row(m, c);
            if row.iter().all(|&v| v == 0.0) {
                continue;
            }
            has_rows = true;
            let mut text = String::new();
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    text.push(' ');
                }
                // Deliberately std's formatter, not `fmt64`: the DOM
                // writer is the differential oracle, and an independent
                // formatting path makes the byte-equality tests a real
                // cross-check of the streaming writer's fast paths.
                let _ = write!(text, "{v}");
            }
            matrix = matrix.child(
                Element::new("row")
                    .attr("cnode", c.raw().to_string())
                    .text(text),
            );
        }
        if has_rows {
            out = out.child(matrix);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Parses a `.cube` XML string into an experiment.
///
/// Runs the streaming [`CubeReader`](crate::reader::CubeReader), which
/// falls back to [`read_experiment_dom`] only for documents that store
/// `<severity>` before the metadata sections. When the document carries
/// a checksum footer (`docs/FORMAT.md` §10), it is verified first —
/// silent corruption that would still parse is refused with
/// [`XmlError::Checksum`].
pub fn read_experiment(input: &str) -> Result<Experiment, XmlError> {
    verify_footer(input)?;
    crate::reader::CubeReader::new(input).read()
}

fn verify_footer(input: &str) -> Result<(), XmlError> {
    match check_footer(input) {
        FooterStatus::Mismatch { expected, actual } => Err(XmlError::Checksum { expected, actual }),
        FooterStatus::Absent | FooterStatus::Valid => Ok(()),
    }
}

/// Parses a `.cube` XML string into an experiment through the DOM.
///
/// Equivalent to [`read_experiment`]; kept as the
/// order-independent fallback and as the streaming reader's test
/// oracle.
pub fn read_experiment_dom(input: &str) -> Result<Experiment, XmlError> {
    let doc = Document::parse(input)?;
    if doc.root.name != "cube" {
        return Err(XmlError::format(format!(
            "root element is <{}>, expected <cube>",
            doc.root.name
        )));
    }

    let provenance = read_provenance(&doc.root)?;
    let mut md = Metadata::new();

    // --- metrics (nested; ids may be permuted relative to document
    // order because the writer nests trees while ids follow creation
    // order) ---
    let metrics = doc.root.require_element("metrics")?;
    let mut metric_recs: Vec<(u32, Option<u32>, &Element)> = Vec::new();
    for m in metrics.elements("metric") {
        collect_nested(m, "metric", None, &mut metric_recs)?;
    }
    sort_dense("metric", &mut metric_recs)?;
    for (id, parent, e) in &metric_recs {
        if let Some(p) = parent {
            if p >= id {
                return Err(XmlError::format(format!(
                    "metric {id} appears before its parent {p}"
                )));
            }
        }
        let uom = e.require_attr("uom")?;
        let unit = Unit::from_str_opt(uom)
            .ok_or_else(|| XmlError::value(format!("unknown unit of measurement '{uom}'")))?;
        md.add_metric(cube_model::Metric {
            name: e.require_attr("name")?.to_string(),
            unit,
            description: e.get_attr("descr").unwrap_or("").to_string(),
            parent: parent.map(MetricId::new),
        });
    }

    // --- program ---
    let program = doc.root.require_element("program")?;
    for (i, e) in program.elements("module").enumerate() {
        check_dense_id(e, i)?;
        md.add_module(cube_model::Module::new(
            e.require_attr("name")?,
            e.get_attr("path").unwrap_or(""),
        ));
    }
    for (i, e) in program.elements("region").enumerate() {
        check_dense_id(e, i)?;
        let kind_raw = e.require_attr("kind")?;
        let kind = RegionKind::from_str_opt(kind_raw)
            .ok_or_else(|| XmlError::value(format!("unknown region kind '{kind_raw}'")))?;
        md.add_region(cube_model::Region {
            name: e.require_attr("name")?.to_string(),
            module: ModuleId::new(e.parse_attr("mod")?),
            kind,
            begin_line: e.parse_attr("begin")?,
            end_line: e.parse_attr("end")?,
        });
    }
    for (i, e) in program.elements("csite").enumerate() {
        check_dense_id(e, i)?;
        md.add_call_site(cube_model::CallSite {
            file: e.require_attr("file")?.to_string(),
            line: e.parse_attr("line")?,
            callee: RegionId::new(e.parse_attr("callee")?),
        });
    }
    let mut cnode_recs: Vec<(u32, Option<u32>, &Element)> = Vec::new();
    for e in program.elements("cnode") {
        collect_nested(e, "cnode", None, &mut cnode_recs)?;
    }
    sort_dense("cnode", &mut cnode_recs)?;
    for (id, parent, e) in &cnode_recs {
        if let Some(p) = parent {
            if p >= id {
                return Err(XmlError::format(format!(
                    "cnode {id} appears before its parent {p}"
                )));
            }
        }
        md.add_call_node(cube_model::CallNode {
            call_site: CallSiteId::new(e.parse_attr("csite")?),
            parent: parent.map(CallNodeId::new),
        });
    }

    // --- system ---
    // The hierarchy is nested by machine/node, but ids follow creation
    // order, which interleaves levels (e.g. ranks placed round-robin
    // over nodes). Collect every level, then add entities in id order
    // so that severity columns keep their meaning.
    let system = doc.root.require_element("system")?;
    let mut machines: Vec<(u32, &Element)> = Vec::new();
    let mut sys_nodes: Vec<(u32, u32, &Element)> = Vec::new();
    let mut processes: Vec<(u32, u32, &Element)> = Vec::new();
    let mut threads: Vec<(u32, u32, &Element)> = Vec::new();
    for me in system.elements("machine") {
        let mid: u32 = me.parse_attr("id")?;
        machines.push((mid, me));
        for ne in me.elements("node") {
            let nid: u32 = ne.parse_attr("id")?;
            sys_nodes.push((nid, mid, ne));
            for pe in ne.elements("process") {
                let pid: u32 = pe.parse_attr("id")?;
                processes.push((pid, nid, pe));
                for te in pe.elements("thread") {
                    threads.push((te.parse_attr("id")?, pid, te));
                }
            }
        }
    }
    sort_dense_sys("machine", &mut machines, |m| m.0)?;
    sort_dense_sys("node", &mut sys_nodes, |n| n.0)?;
    sort_dense_sys("process", &mut processes, |p| p.0)?;
    sort_dense_sys("thread", &mut threads, |t| t.0)?;
    for (_, me) in &machines {
        md.add_machine(cube_model::Machine::new(me.require_attr("name")?));
    }
    for (_, mid, ne) in &sys_nodes {
        md.add_node(cube_model::SystemNode::new(
            ne.require_attr("name")?,
            cube_model::MachineId::new(*mid),
        ));
    }
    for (_, nid, pe) in &processes {
        md.add_process(cube_model::Process::new(
            pe.require_attr("name")?,
            pe.parse_attr("rank")?,
            cube_model::NodeId::new(*nid),
        ));
    }
    for (_, pid, te) in &threads {
        md.add_thread(cube_model::Thread::new(
            te.require_attr("name")?,
            te.parse_attr("num")?,
            cube_model::ProcessId::new(*pid),
        ));
    }

    // --- topologies (optional) ---
    if let Some(topologies) = doc.root.element("topologies") {
        for cart in topologies.elements("cart") {
            let parse_list = |key: &str| -> Result<Vec<u32>, XmlError> {
                cart.require_attr(key)?
                    .split_ascii_whitespace()
                    .map(|tok| {
                        tok.parse::<u32>().map_err(|_| {
                            XmlError::value(format!("bad topology {key} entry '{tok}'"))
                        })
                    })
                    .collect()
            };
            let dims = parse_list("dims")?;
            let periodic: Vec<bool> = parse_list("periodic")?
                .into_iter()
                .map(|v| v != 0)
                .collect();
            let mut topo =
                cube_model::CartTopology::new(cart.require_attr("name")?, dims, periodic);
            for coord in cart.elements("coord") {
                let proc_id: u32 = coord.parse_attr("proc")?;
                let c: Vec<u32> = coord
                    .text_content()
                    .split_ascii_whitespace()
                    .map(|tok| {
                        tok.parse::<u32>()
                            .map_err(|_| XmlError::value(format!("bad coordinate entry '{tok}'")))
                    })
                    .collect::<Result<_, _>>()?;
                topo.coords.push((cube_model::ProcessId::new(proc_id), c));
            }
            md.add_topology(topo);
        }
    }

    // --- severity ---
    let (nm, nc, nt) = md.shape();
    let mut sev = Severity::zeros(nm, nc, nt);
    if let Some(severity) = doc.root.element("severity") {
        for matrix in severity.elements("matrix") {
            let m: u32 = matrix.parse_attr("metric")?;
            if m as usize >= nm {
                return Err(XmlError::value(format!(
                    "matrix metric id {m} out of range"
                )));
            }
            for row in matrix.elements("row") {
                let c: u32 = row.parse_attr("cnode")?;
                if c as usize >= nc {
                    return Err(XmlError::value(format!("row cnode id {c} out of range")));
                }
                let text = row.text_content();
                let dest = sev.row_mut(MetricId::new(m), CallNodeId::new(c));
                let mut count = 0usize;
                for (i, tok) in text.split_ascii_whitespace().enumerate() {
                    if i >= dest.len() {
                        return Err(XmlError::value(format!(
                            "row (metric {m}, cnode {c}) has more than {} values",
                            dest.len()
                        )));
                    }
                    dest[i] = tok.parse().map_err(|_| {
                        XmlError::value(format!(
                            "severity value '{tok}' in row (metric {m}, cnode {c}) is not a number"
                        ))
                    })?;
                    count += 1;
                }
                if count != dest.len() {
                    return Err(XmlError::value(format!(
                        "row (metric {m}, cnode {c}) has {count} values, expected {}",
                        dest.len()
                    )));
                }
            }
        }
    }

    Experiment::new(md, sev, provenance).map_err(Into::into)
}

/// Reads an experiment from a file. I/O errors carry `path`.
///
/// The raw bytes pass through the [`crate::faults`] seam (site
/// `xml.file`) before decoding, so a fault harness can exercise the
/// parse-error and checksum paths with real corruption.
pub fn read_experiment_file(path: impl AsRef<Path>) -> Result<Experiment, XmlError> {
    let path = path.as_ref();
    let mut bytes = std::fs::read(path).map_err(|e| XmlError::io_at(path, e))?;
    if let Some(e) = crate::faults::inject("xml.file", &mut bytes) {
        return Err(XmlError::io_at(path, e));
    }
    let input = String::from_utf8(bytes)
        .map_err(|_| XmlError::value(format!("{}: file is not UTF-8", path.display())))?;
    read_experiment(&input)
}

// ---------------------------------------------------------------------------
// Salvage
// ---------------------------------------------------------------------------

/// What [`read_experiment_salvage`] managed to recover, and what not.
#[derive(Clone, Debug)]
pub struct SalvageReport {
    /// `true` when the document read cleanly end to end with a valid or
    /// absent checksum — the result equals what [`read_experiment`]
    /// would return, and the provenance is left untouched.
    pub complete: bool,
    /// Severity rows recovered intact (each committed atomically; a row
    /// torn mid-number is dropped whole).
    pub rows_recovered: usize,
    /// Description of the first unrecoverable defect, when any.
    pub loss: Option<String>,
    /// Position of that defect, when known.
    pub position: Option<Position>,
    /// The structure being parsed when the defect hit (e.g.
    /// `severity matrix for metric 'time' (id 0), cnode 3`), so
    /// recovery messages can name the metric and row, not just a byte
    /// offset. The message format is documented in `docs/FORMAT.md`
    /// §10.
    pub context: Option<String>,
    /// Outcome of the checksum footer verification.
    pub checksum: FooterStatus,
}

/// Reads the longest valid prefix of a damaged `.cube` document.
///
/// The metadata sections must be complete — without them there is no
/// shape to recover into, and the result is an error. Past that point
/// the reader keeps everything assembled before the first defect:
/// complete metadata, every intact severity row (zero-extension covers
/// the rest, mirroring the algebra's convention), and the stored
/// provenance. When anything was lost — or the checksum footer proves
/// the bytes were altered — the experiment's provenance is rewrapped as
/// [`Provenance::Recovered`] so the damage stays visible through any
/// downstream algebra.
///
/// Documents that store `<severity>` before the metadata fall back to
/// the DOM reader and recover only when they parse completely.
pub fn read_experiment_salvage(input: &str) -> Result<(Experiment, SalvageReport), XmlError> {
    read_experiment_salvage_with(input, ReadLimits::default())
}

/// [`read_experiment_salvage`] with explicit [`ReadLimits`].
pub fn read_experiment_salvage_with(
    input: &str,
    limits: ReadLimits,
) -> Result<(Experiment, SalvageReport), XmlError> {
    read_experiment_salvage_as(input, None, limits)
}

/// [`read_experiment_salvage_with`] with an explicit *origin* — the
/// name the recovery provenance note should call the damaged document.
///
/// Salvage often runs over bytes that no longer sit where the user
/// thinks of them: a staging temp file, or an object inside a
/// hash-sharded repository. The note is the one place the damage stays
/// visible downstream, so it should name the document by its durable
/// identity — e.g. the repository-relative path `objects/ab/….cubec` —
/// not whatever transient path the bytes were read from. With
/// `origin: None` the note format is unchanged.
pub fn read_experiment_salvage_as(
    input: &str,
    origin: Option<&str>,
    limits: ReadLimits,
) -> Result<(Experiment, SalvageReport), XmlError> {
    let checksum = check_footer(input);
    let (mut exp, report) = match crate::reader::read_streaming_salvage(input, limits)? {
        Some((md, sev, prov, info)) => {
            let exp = Experiment::new(md, sev, prov)?;
            let report = SalvageReport {
                complete: info.loss.is_none() && !checksum.is_mismatch(),
                rows_recovered: info.rows_recovered,
                loss: info.loss,
                position: info.position,
                context: info.context,
                checksum,
            };
            (exp, report)
        }
        // Severity stored before the metadata: the salvage pass cannot
        // size the matrix either, so only a full DOM parse recovers.
        None => {
            let exp = read_experiment_dom(input)?;
            let report = SalvageReport {
                complete: !checksum.is_mismatch(),
                rows_recovered: 0,
                loss: None,
                position: None,
                context: None,
                checksum,
            };
            (exp, report)
        }
    };
    if !report.complete {
        // Recovery-note format (normative, docs/FORMAT.md §10):
        //   "[ORIGIN: ]damaged[ at L:C][ in CONTEXT]; N rows recovered"
        // or "[ORIGIN: ]checksum mismatch; N rows recovered".
        let mut what = match (&report.loss, report.position) {
            (Some(_), Some(p)) => format!("damaged at {p}"),
            (Some(_), None) => "damaged".to_string(),
            (None, _) => "checksum mismatch".to_string(),
        };
        if report.loss.is_some() {
            if let Some(ctx) = &report.context {
                what = format!("{what} in {ctx}");
            }
        }
        let mut note = format!("{what}; {} rows recovered", report.rows_recovered);
        if let Some(origin) = origin {
            note = format!("{origin}: {note}");
        }
        let source = exp.provenance().label();
        exp.set_provenance(Provenance::recovered(source, note));
    }
    Ok((exp, report))
}

/// Reads and salvages a `.cube` file on disk. I/O errors carry `path`.
pub fn read_experiment_salvage_file(
    path: impl AsRef<Path>,
) -> Result<(Experiment, SalvageReport), XmlError> {
    read_experiment_salvage_file_as(path, None)
}

/// [`read_experiment_salvage_file`] with an explicit *origin* for the
/// recovery provenance note (see [`read_experiment_salvage_as`]);
/// `None` keeps the note unprefixed.
pub fn read_experiment_salvage_file_as(
    path: impl AsRef<Path>,
    origin: Option<&str>,
) -> Result<(Experiment, SalvageReport), XmlError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| XmlError::io_at(path, e))?;
    // Damaged files may be torn mid-UTF-8-sequence; lossy conversion
    // keeps the valid prefix readable.
    read_experiment_salvage_as(
        &String::from_utf8_lossy(&bytes),
        origin,
        ReadLimits::default(),
    )
}

fn read_provenance(root: &Element) -> Result<Provenance, XmlError> {
    let Some(p) = root.element("provenance") else {
        return Ok(Provenance::default());
    };
    match p.get_attr("kind") {
        Some("original") | None => Ok(Provenance::original(
            p.get_attr("label").unwrap_or("unnamed experiment"),
        )),
        Some("derived") => Ok(Provenance::derived(
            p.get_attr("operator").unwrap_or("unknown"),
            p.elements("operand").map(|o| o.text_content()).collect(),
        )),
        Some("recovered") => Ok(Provenance::recovered(
            p.get_attr("label").unwrap_or("unnamed experiment"),
            p.get_attr("note").unwrap_or(""),
        )),
        Some(other) => Err(XmlError::value(format!(
            "unknown provenance kind '{other}'"
        ))),
    }
}

/// Collects a nested tree of same-named elements into `(id, parent id,
/// element)` records.
fn collect_nested<'a>(
    e: &'a Element,
    tag: &'a str,
    parent: Option<u32>,
    out: &mut Vec<(u32, Option<u32>, &'a Element)>,
) -> Result<(), XmlError> {
    let id: u32 = e.parse_attr("id")?;
    out.push((id, parent, e));
    for child in e.elements(tag) {
        collect_nested(child, tag, Some(id), out)?;
    }
    Ok(())
}

/// Sorts records by id and verifies the ids are exactly `0..n`.
fn sort_dense(what: &str, recs: &mut [(u32, Option<u32>, &Element)]) -> Result<(), XmlError> {
    recs.sort_by_key(|(id, _, _)| *id);
    for (expected, (id, _, _)) in recs.iter().enumerate() {
        if *id as usize != expected {
            return Err(XmlError::format(format!(
                "<{what}> ids must be dense 0..{}: found {id}, expected {expected}",
                recs.len()
            )));
        }
    }
    Ok(())
}

fn check_dense_id(e: &Element, expected: usize) -> Result<(), XmlError> {
    let id: usize = e.parse_attr("id")?;
    if id != expected {
        return Err(XmlError::format(format!(
            "<{}> ids must be dense and in document order: found {id}, expected {expected}",
            e.name
        )));
    }
    Ok(())
}

/// Sorts system-level records by id and verifies density.
fn sort_dense_sys<T>(
    what: &str,
    recs: &mut [T],
    id_of: impl Fn(&T) -> u32,
) -> Result<(), XmlError> {
    recs.sort_by_key(|r| id_of(r));
    for (expected, r) in recs.iter().enumerate() {
        if id_of(r) as usize != expected {
            return Err(XmlError::format(format!(
                "<{what}> ids must be dense 0..{}: found {}, expected {expected}",
                recs.len(),
                id_of(r)
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn sample() -> Experiment {
        let mut b = ExperimentBuilder::new("xml sample");
        let time = b.def_metric("time", Unit::Seconds, "total", None);
        let mpi = b.def_metric("mpi", Unit::Seconds, "MPI", Some(time));
        let visits = b.def_metric("visits", Unit::Occurrences, "visits", None);
        let m = b.def_module("a.c", "/src/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 90);
        let solve_r = b.def_region("solve", m, RegionKind::Function, 10, 80);
        let cs0 = b.def_call_site("a.c", 1, main_r);
        let cs1 = b.def_call_site("a.c", 30, solve_r);
        let root = b.def_call_node(cs0, None);
        let solve = b.def_call_node(cs1, Some(root));
        let ts = single_threaded_system(&mut b, 3);
        for (i, &t) in ts.iter().enumerate() {
            b.set_severity(time, root, t, 1.0 + i as f64 * 0.125);
            b.set_severity(time, solve, t, 2.0);
            b.set_severity(mpi, solve, t, 0.5);
            b.set_severity(visits, root, t, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let e = sample();
        let xml = write_experiment(&e);
        let back = read_experiment(&xml).unwrap();
        assert!(back.approx_eq(&e, 0.0), "severity or metadata changed");
        assert_eq!(back.provenance(), e.provenance());
    }

    #[test]
    fn derived_provenance_roundtrips() {
        let mut e = sample();
        e.set_provenance(Provenance::derived(
            "difference",
            vec!["old".into(), "new".into()],
        ));
        let back = read_experiment(&write_experiment(&e)).unwrap();
        assert_eq!(back.provenance(), e.provenance());
    }

    #[test]
    fn zero_rows_are_omitted() {
        let e = sample();
        let xml = write_experiment(&e);
        // The `mpi` matrix only has the `solve` row; the root row is all
        // zeros and must not appear.
        let mpi_matrix = xml
            .split("<matrix metric=\"1\">")
            .nth(1)
            .unwrap()
            .split("</matrix>")
            .next()
            .unwrap();
        assert!(mpi_matrix.contains("cnode=\"1\""));
        assert!(!mpi_matrix.contains("cnode=\"0\""));
    }

    #[test]
    fn exact_float_roundtrip() {
        let mut e = sample();
        let vals = e.severity_mut().values_mut();
        vals[0] = 0.1 + 0.2; // 0.30000000000000004
        vals[1] = -1e-300;
        vals[2] = 12_345_678_901_234.568;
        let back = read_experiment(&write_experiment(&e)).unwrap();
        assert_eq!(back.severity().values(), e.severity().values());
    }

    #[test]
    fn negative_severities_allowed() {
        let mut e = sample();
        e.severity_mut().values_mut()[0] = -3.25;
        let back = read_experiment(&write_experiment(&e)).unwrap();
        assert_eq!(back.severity().values()[0], -3.25);
    }

    #[test]
    fn special_characters_in_names() {
        let mut b = ExperimentBuilder::new("weird <\"name\"> & co");
        let t = b.def_metric("m<1>", Unit::Seconds, "desc & \"more\"", None);
        let m = b.def_module("a&b.c", "/path/'q'");
        let r = b.def_region("op<>&", m, RegionKind::Loop, 1, 2);
        let cs = b.def_call_site("a&b.c", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, root, ts[0], 1.0);
        let e = b.build().unwrap();
        let back = read_experiment(&write_experiment(&e)).unwrap();
        assert!(back.approx_eq(&e, 0.0));
        assert_eq!(back.provenance().label(), "weird <\"name\"> & co");
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(
            read_experiment("<notcube/>"),
            Err(XmlError::Format { .. })
        ));
    }

    #[test]
    fn missing_sections_rejected() {
        assert!(read_experiment("<cube version=\"1.0\"/>").is_err());
    }

    #[test]
    fn non_dense_ids_rejected() {
        let e = sample();
        let xml = write_experiment(&e).replace("<metric id=\"0\"", "<metric id=\"7\"");
        assert!(read_experiment(&xml).is_err());
    }

    #[test]
    fn out_of_range_matrix_rejected() {
        let e = sample();
        let xml = write_experiment(&e).replace("<matrix metric=\"0\">", "<matrix metric=\"99\">");
        assert!(read_experiment(&xml).is_err());
    }

    #[test]
    fn short_row_rejected() {
        let e = sample();
        let xml = write_experiment(&e);
        // Remove one value from the first row.
        let row_start = xml.find("<row cnode=\"0\">").unwrap();
        let row_end = xml[row_start..].find("</row>").unwrap() + row_start;
        let row = &xml[row_start..row_end];
        let shortened = row.rsplit_once(' ').unwrap().0.to_string();
        let bad = format!("{}{}{}", &xml[..row_start], shortened, &xml[row_end..]);
        assert!(read_experiment(&bad).is_err());
    }

    #[test]
    fn garbage_severity_value_rejected() {
        let e = sample();
        let xml = write_experiment(&e);
        let bad = xml.replacen("2 2 2", "2 fish 2", 1);
        assert!(read_experiment(&bad).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let e = sample();
        let dir = std::env::temp_dir().join("cube_xml_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.cube");
        write_experiment_file(&e, &path).unwrap();
        let back = read_experiment_file(&path).unwrap();
        assert!(back.approx_eq(&e, 0.0));
        std::fs::remove_file(path).ok();
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cube_xml_test").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn written_file_carries_valid_footer() {
        let e = sample();
        let dir = tmp_dir("footer");
        let path = dir.join("footer.cube");
        write_experiment_file(&e, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(check_footer(&text), FooterStatus::Valid);
        // Old readers must still parse: the DOM path ignores the
        // trailing comment.
        assert!(read_experiment_dom(&text).unwrap().approx_eq(&e, 0.0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn no_checksum_option_omits_footer() {
        let e = sample();
        let dir = tmp_dir("nofooter");
        let path = dir.join("plain.cube");
        write_experiment_file_with(
            &e,
            &path,
            WriteOptions {
                durable: false,
                checksum: false,
            },
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(check_footer(&text), FooterStatus::Absent);
        assert_eq!(text, write_experiment(&e));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_checksummed_file_is_refused() {
        let e = sample();
        let dir = tmp_dir("corrupt");
        let path = dir.join("bad.cube");
        write_experiment_file(&e, &path).unwrap();
        // Flip one severity digit: the document still parses, only the
        // checksum can tell.
        let text = std::fs::read_to_string(&path).unwrap();
        let bad = text.replacen("2 2 2", "2 9 2", 1);
        assert_ne!(bad, text);
        let err = read_experiment(&bad).unwrap_err();
        assert!(matches!(err, XmlError::Checksum { .. }), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn failed_write_leaves_existing_target_untouched() {
        let e = sample();
        let dir = tmp_dir("atomic");
        let path = dir.join("target.cube");
        std::fs::write(&path, b"precious bytes").unwrap();
        // Writing into a directory that does not exist fails while
        // staging; the target must be byte-identical afterwards.
        let missing = dir.join("no_such_subdir").join("x.cube");
        assert!(write_experiment_file(&e, &missing).is_err());
        // A same-directory failure: make the temp location collide with
        // a directory so File::create fails.
        let tmp_collision = dir.join(format!(".target.cube.tmp.{}", std::process::id()));
        std::fs::create_dir_all(&tmp_collision).unwrap();
        assert!(write_experiment_file(&e, &path).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"precious bytes");
        std::fs::remove_dir(&tmp_collision).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_errors_carry_the_path() {
        let e = sample();
        let missing = Path::new("/nonexistent/definitely/not/here.cube");
        let err = write_experiment_file(&e, missing).unwrap_err();
        assert!(err.to_string().contains("here.cube"), "{err}");
        let err = read_experiment_file(missing).unwrap_err();
        assert!(err.to_string().contains("here.cube"), "{err}");
    }

    #[test]
    fn salvage_of_intact_document_is_complete() {
        let e = sample();
        let xml = write_experiment(&e);
        let (back, report) = read_experiment_salvage(&xml).unwrap();
        assert!(report.complete, "{report:?}");
        assert!(back.approx_eq(&e, 0.0));
        assert_eq!(back.provenance(), e.provenance());
        assert_eq!(report.checksum, FooterStatus::Absent);
    }

    #[test]
    fn salvage_of_truncated_document_recovers_prefix() {
        let e = sample();
        let xml = write_experiment(&e);
        let cut = xml.rfind("<row").unwrap() + 4;
        let (back, report) = read_experiment_salvage(&xml[..cut]).unwrap();
        assert!(!report.complete);
        assert!(report.loss.is_some());
        assert!(back.provenance().is_recovered(), "{:?}", back.provenance());
        assert_eq!(back.metadata(), e.metadata());
        // The recovered experiment must itself round-trip and lint.
        let rexml = write_experiment(&back);
        let again = read_experiment(&rexml).unwrap();
        assert_eq!(again.provenance(), back.provenance());
    }

    #[test]
    fn salvage_flags_checksum_mismatch_as_incomplete() {
        let e = sample();
        let dir = tmp_dir("salvage_crc");
        let path = dir.join("s.cube");
        write_experiment_file(&e, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let bad = text.replacen("2 2 2", "2 9 2", 1);
        let (back, report) = read_experiment_salvage(&bad).unwrap();
        assert!(!report.complete);
        assert!(report.checksum.is_mismatch());
        assert!(back.provenance().is_recovered());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn salvage_fails_without_complete_metadata() {
        let e = sample();
        let xml = write_experiment(&e);
        let cut = xml.find("<system>").unwrap();
        assert!(read_experiment_salvage(&xml[..cut]).is_err());
    }

    #[test]
    fn missing_provenance_defaults() {
        let e = sample();
        let xml = write_experiment(&e);
        // Strip the provenance element entirely.
        let start = xml.find("<provenance").unwrap();
        let end = xml[start..].find("/>").unwrap() + start + 2;
        let stripped = format!("{}{}", &xml[..start], &xml[end..]);
        let back = read_experiment(&stripped).unwrap();
        assert!(!back.provenance().is_derived());
    }
}
