//! Streaming `.cube` writer: model straight to bytes.
//!
//! [`CubeWriter`] walks an [`Experiment`] and emits the `.cube` XML
//! dialect directly into any [`io::Write`], without building
//! [`Element`](crate::dom::Element) trees or intermediate strings. Its
//! output is byte-identical to serializing the DOM built by
//! [`write_experiment_dom`](crate::format::write_experiment_dom) — the
//! golden-bytes test in `tests/format_stability.rs` pins that.
//!
//! Severity rows are formatted into one reused scratch buffer, so the
//! writer's transient memory is bounded by the longest row regardless
//! of experiment size. Wrap the sink in a [`std::io::BufWriter`] when
//! writing to a file; the writer issues many small `write_all` calls.

use std::io;

use cube_model::{Experiment, MachineId, Metadata, MetricId, Provenance};

use crate::error::XmlError;
use crate::escape::{escape_attr_cow, escape_text_cow};
use crate::format::FORMAT_VERSION;

/// Event-based writer producing the `.cube` format.
///
/// ```
/// use cube_model::builder::single_threaded_system;
/// use cube_model::{ExperimentBuilder, RegionKind, Unit};
/// use cube_xml::writer::CubeWriter;
///
/// let mut b = ExperimentBuilder::new("demo");
/// let t = b.def_metric("time", Unit::Seconds, "", None);
/// let m = b.def_module("a.c", "/a.c");
/// let r = b.def_region("main", m, RegionKind::Function, 1, 2);
/// let cs = b.def_call_site("a.c", 1, r);
/// let root = b.def_call_node(cs, None);
/// let ts = single_threaded_system(&mut b, 1);
/// b.set_severity(t, root, ts[0], 1.5);
/// let exp = b.build().unwrap();
///
/// let mut out = Vec::new();
/// CubeWriter::new(&mut out).write(&exp).unwrap();
/// assert!(out.starts_with(b"<?xml"));
/// ```
pub struct CubeWriter<W: io::Write> {
    out: W,
    /// Reused buffer for severity-row text; numbers never need
    /// escaping, so rows go straight from here to the sink.
    scratch: String,
}

impl<W: io::Write> CubeWriter<W> {
    /// Creates a writer over any byte sink.
    pub fn new(out: W) -> Self {
        Self {
            out,
            scratch: String::new(),
        }
    }

    /// Serializes a whole experiment, XML declaration included.
    pub fn write(mut self, exp: &Experiment) -> Result<W, XmlError> {
        self.write_inner(exp)?;
        Ok(self.out)
    }

    fn write_inner(&mut self, exp: &Experiment) -> io::Result<()> {
        let md = exp.metadata();
        self.out
            .write_all(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")?;
        writeln!(self.out, "<cube version=\"{FORMAT_VERSION}\">")?;
        self.provenance(exp.provenance())?;
        self.metrics(md)?;
        self.program(md)?;
        self.system(md)?;
        if !md.topologies().is_empty() {
            self.topologies(md)?;
        }
        self.severity(exp)?;
        self.out.write_all(b"</cube>\n")
    }

    // -- low-level tag emission --------------------------------------------

    fn indent(&mut self, depth: usize) -> io::Result<()> {
        const SPACES: &[u8] = b"                                ";
        let mut n = depth * 2;
        while n > SPACES.len() {
            self.out.write_all(SPACES)?;
            n -= SPACES.len();
        }
        self.out.write_all(&SPACES[..n])
    }

    /// Emits `<name` plus attributes, leaving the tag open.
    fn open_tag(&mut self, depth: usize, name: &str, attrs: &[(&str, &str)]) -> io::Result<()> {
        self.indent(depth)?;
        write!(self.out, "<{name}")?;
        for (k, v) in attrs {
            write!(self.out, " {k}=\"{}\"", escape_attr_cow(v))?;
        }
        Ok(())
    }

    /// Emits a childless element: `<name a="v"/>`.
    fn empty(&mut self, depth: usize, name: &str, attrs: &[(&str, &str)]) -> io::Result<()> {
        self.open_tag(depth, name, attrs)?;
        self.out.write_all(b"/>\n")
    }

    /// Emits an element whose only content is text, on one line.
    fn text_element(
        &mut self,
        depth: usize,
        name: &str,
        attrs: &[(&str, &str)],
        text: &str,
    ) -> io::Result<()> {
        self.open_tag(depth, name, attrs)?;
        write!(self.out, ">{}</{name}>", escape_text_cow(text))?;
        self.out.write_all(b"\n")
    }

    /// Closes an `open_tag` that will have element children.
    fn children_follow(&mut self) -> io::Result<()> {
        self.out.write_all(b">\n")
    }

    fn close(&mut self, depth: usize, name: &str) -> io::Result<()> {
        self.indent(depth)?;
        writeln!(self.out, "</{name}>")
    }

    // -- sections ----------------------------------------------------------

    fn provenance(&mut self, p: &Provenance) -> io::Result<()> {
        match p {
            Provenance::Original { name } => {
                self.empty(1, "provenance", &[("kind", "original"), ("label", name)])
            }
            Provenance::Derived { operator, operands } => {
                let attrs = [("kind", "derived"), ("operator", operator.as_str())];
                if operands.is_empty() {
                    return self.empty(1, "provenance", &attrs);
                }
                self.open_tag(1, "provenance", &attrs)?;
                self.children_follow()?;
                for op in operands {
                    self.text_element(2, "operand", &[], op)?;
                }
                self.close(1, "provenance")
            }
            Provenance::Recovered { source, note } => self.empty(
                1,
                "provenance",
                &[("kind", "recovered"), ("label", source), ("note", note)],
            ),
        }
    }

    fn metrics(&mut self, md: &Metadata) -> io::Result<()> {
        if md.metric_roots().is_empty() {
            return self.empty(1, "metrics", &[]);
        }
        self.open_tag(1, "metrics", &[])?;
        self.children_follow()?;
        for &root in md.metric_roots() {
            self.metric_tree(md, root, 2)?;
        }
        self.close(1, "metrics")
    }

    fn metric_tree(&mut self, md: &Metadata, id: MetricId, depth: usize) -> io::Result<()> {
        let m = md.metric(id);
        let id_str = id.raw().to_string();
        let attrs = [
            ("id", id_str.as_str()),
            ("name", m.name.as_str()),
            ("uom", m.unit.as_str()),
            ("descr", m.description.as_str()),
        ];
        let children = md.metric_children(id);
        if children.is_empty() {
            return self.empty(depth, "metric", &attrs);
        }
        self.open_tag(depth, "metric", &attrs)?;
        self.children_follow()?;
        for &child in children {
            self.metric_tree(md, child, depth + 1)?;
        }
        self.close(depth, "metric")
    }

    fn program(&mut self, md: &Metadata) -> io::Result<()> {
        let empty = md.modules().is_empty()
            && md.regions().is_empty()
            && md.call_sites().is_empty()
            && md.call_roots().is_empty();
        if empty {
            return self.empty(1, "program", &[]);
        }
        self.open_tag(1, "program", &[])?;
        self.children_follow()?;
        for (i, m) in md.modules().iter().enumerate() {
            self.empty(
                2,
                "module",
                &[
                    ("id", &i.to_string()),
                    ("name", m.name.as_str()),
                    ("path", m.path.as_str()),
                ],
            )?;
        }
        for (i, r) in md.regions().iter().enumerate() {
            self.empty(
                2,
                "region",
                &[
                    ("id", &i.to_string()),
                    ("mod", &r.module.raw().to_string()),
                    ("name", r.name.as_str()),
                    ("kind", r.kind.as_str()),
                    ("begin", &r.begin_line.to_string()),
                    ("end", &r.end_line.to_string()),
                ],
            )?;
        }
        for (i, cs) in md.call_sites().iter().enumerate() {
            self.empty(
                2,
                "csite",
                &[
                    ("id", &i.to_string()),
                    ("file", cs.file.as_str()),
                    ("line", &cs.line.to_string()),
                    ("callee", &cs.callee.raw().to_string()),
                ],
            )?;
        }
        for &root in md.call_roots() {
            self.cnode_tree(md, root, 2)?;
        }
        self.close(1, "program")
    }

    fn cnode_tree(
        &mut self,
        md: &Metadata,
        id: cube_model::CallNodeId,
        depth: usize,
    ) -> io::Result<()> {
        let n = md.call_node(id);
        let attrs = [
            ("id", id.raw().to_string()),
            ("csite", n.call_site.raw().to_string()),
        ];
        let attrs: Vec<(&str, &str)> = attrs.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let children = md.call_node_children(id);
        if children.is_empty() {
            return self.empty(depth, "cnode", &attrs);
        }
        self.open_tag(depth, "cnode", &attrs)?;
        self.children_follow()?;
        for &child in children {
            self.cnode_tree(md, child, depth + 1)?;
        }
        self.close(depth, "cnode")
    }

    fn system(&mut self, md: &Metadata) -> io::Result<()> {
        if md.machines().is_empty() {
            return self.empty(1, "system", &[]);
        }
        self.open_tag(1, "system", &[])?;
        self.children_follow()?;
        for (mi, machine) in md.machines().iter().enumerate() {
            let mid = MachineId::from_index(mi);
            let m_attrs = [("id", mi.to_string()), ("name", machine.name.clone())];
            let m_attrs: Vec<(&str, &str)> =
                m_attrs.iter().map(|(k, v)| (*k, v.as_str())).collect();
            let nodes = md.nodes_of_machine(mid);
            if nodes.is_empty() {
                self.empty(2, "machine", &m_attrs)?;
                continue;
            }
            self.open_tag(2, "machine", &m_attrs)?;
            self.children_follow()?;
            for &nid in nodes {
                let node = md.node(nid);
                let n_attrs = [("id", nid.raw().to_string()), ("name", node.name.clone())];
                let n_attrs: Vec<(&str, &str)> =
                    n_attrs.iter().map(|(k, v)| (*k, v.as_str())).collect();
                let procs = md.processes_of_node(nid);
                if procs.is_empty() {
                    self.empty(3, "node", &n_attrs)?;
                    continue;
                }
                self.open_tag(3, "node", &n_attrs)?;
                self.children_follow()?;
                for &pid in procs {
                    let process = md.process(pid);
                    let p_attrs = [
                        ("id", pid.raw().to_string()),
                        ("rank", process.rank.to_string()),
                        ("name", process.name.clone()),
                    ];
                    let p_attrs: Vec<(&str, &str)> =
                        p_attrs.iter().map(|(k, v)| (*k, v.as_str())).collect();
                    let threads = md.threads_of_process(pid);
                    if threads.is_empty() {
                        self.empty(4, "process", &p_attrs)?;
                        continue;
                    }
                    self.open_tag(4, "process", &p_attrs)?;
                    self.children_follow()?;
                    for &tid in threads {
                        let thread = md.thread(tid);
                        self.empty(
                            5,
                            "thread",
                            &[
                                ("id", &tid.raw().to_string()),
                                ("num", &thread.number.to_string()),
                                ("name", thread.name.as_str()),
                            ],
                        )?;
                    }
                    self.close(4, "process")?;
                }
                self.close(3, "node")?;
            }
            self.close(2, "machine")?;
        }
        self.close(1, "system")
    }

    fn topologies(&mut self, md: &Metadata) -> io::Result<()> {
        self.open_tag(1, "topologies", &[])?;
        self.children_follow()?;
        for t in md.topologies() {
            let dims = join_u32(&t.dims);
            let periodic = t
                .periodic
                .iter()
                .map(|&p| if p { "1" } else { "0" })
                .collect::<Vec<_>>()
                .join(" ");
            let attrs = [
                ("name", t.name.as_str()),
                ("dims", dims.as_str()),
                ("periodic", periodic.as_str()),
            ];
            if t.coords.is_empty() {
                self.empty(2, "cart", &attrs)?;
                continue;
            }
            self.open_tag(2, "cart", &attrs)?;
            self.children_follow()?;
            for (p, c) in &t.coords {
                self.text_element(
                    3,
                    "coord",
                    &[("proc", p.raw().to_string().as_str())],
                    &join_u32(c),
                )?;
            }
            self.close(2, "cart")?;
        }
        self.close(1, "topologies")
    }

    fn severity(&mut self, exp: &Experiment) -> io::Result<()> {
        let md = exp.metadata();
        let sev = exp.severity();
        // <severity> and each <matrix> open lazily on their first
        // non-zero row, so all-zero matrices (and an all-zero
        // experiment) collapse to self-closing tags, exactly like the
        // DOM writer's skip-empty-children rule.
        let mut severity_open = false;
        for m in md.metric_ids() {
            let mut matrix_open = false;
            for c in md.call_node_ids() {
                let row = sev.row(m, c);
                if row.iter().all(|&v| v == 0.0) {
                    continue;
                }
                if !severity_open {
                    severity_open = true;
                    self.open_tag(1, "severity", &[])?;
                    self.children_follow()?;
                }
                if !matrix_open {
                    matrix_open = true;
                    self.open_tag(2, "matrix", &[("metric", &m.raw().to_string())])?;
                    self.children_follow()?;
                }
                self.scratch.clear();
                for (i, v) in row.iter().enumerate() {
                    if i > 0 {
                        self.scratch.push(' ');
                    }
                    // Shortest representation, byte-identical to `{}`,
                    // keeps the f64 round-trip exact.
                    crate::fmt64::push_f64(&mut self.scratch, *v);
                }
                self.indent(3)?;
                write!(
                    self.out,
                    "<row cnode=\"{}\">{}</row>",
                    c.raw(),
                    self.scratch
                )?;
                self.out.write_all(b"\n")?;
            }
            if matrix_open {
                self.close(2, "matrix")?;
            }
        }
        if severity_open {
            self.close(1, "severity")
        } else {
            self.empty(1, "severity", &[])
        }
    }
}

fn join_u32(values: &[u32]) -> String {
    values
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn tiny() -> Experiment {
        let mut b = ExperimentBuilder::new("writer test");
        let t = b.def_metric("time", Unit::Seconds, "total", None);
        let m = b.def_module("a.c", "/a.c");
        let r = b.def_region("main", m, RegionKind::Function, 1, 2);
        let cs = b.def_call_site("a.c", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 2);
        b.set_severity(t, root, ts[0], 1.5);
        b.build().unwrap()
    }

    #[test]
    fn matches_dom_writer_bytes() {
        let e = tiny();
        let dom = crate::format::write_experiment_dom(&e);
        let streamed = CubeWriter::new(Vec::new()).write(&e).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), dom);
    }

    #[test]
    fn all_zero_severity_self_closes() {
        let mut e = tiny();
        e.severity_mut().values_mut().fill(0.0);
        let out = CubeWriter::new(Vec::new()).write(&e).unwrap();
        let xml = String::from_utf8(out).unwrap();
        assert!(xml.contains("<severity/>"));
        assert!(!xml.contains("<matrix"));
        assert_eq!(xml, crate::format::write_experiment_dom(&e));
    }

    #[test]
    fn io_errors_surface() {
        struct Fail;
        impl io::Write for Fail {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("sink full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let e = tiny();
        assert!(matches!(
            CubeWriter::new(Fail).write(&e),
            Err(XmlError::Io { .. })
        ));
    }

    #[test]
    fn recovered_provenance_writes_and_reads_back() {
        let mut e = tiny();
        e.set_provenance(Provenance::recovered(
            "run 1",
            "damaged at 3:1; 0 rows recovered",
        ));
        let out = CubeWriter::new(Vec::new()).write(&e).unwrap();
        let xml = String::from_utf8(out).unwrap();
        assert!(xml.contains("kind=\"recovered\""), "{xml}");
        assert_eq!(xml, crate::format::write_experiment_dom(&e));
        let back = crate::format::read_experiment(&xml).unwrap();
        assert_eq!(back.provenance(), e.provenance());
        let dom_back = crate::format::read_experiment_dom(&xml).unwrap();
        assert_eq!(dom_back.provenance(), e.provenance());
    }
}
