//! # cube-xml — XML substrate and the CUBE experiment file format
//!
//! The CUBE algebra stores experiments in an XML format so that derived
//! and original experiments are interchangeable files. The original
//! implementation used libxml2; this crate ships its own self-contained
//! substrate:
//!
//! * [`escape`] — entity escaping/unescaping for text and attributes;
//! * [`lexer`] — a streaming tokenizer for the XML subset the format
//!   needs (declaration, elements, attributes, text, comments, CDATA);
//! * [`dom`] — a small document tree with well-formedness checks and a
//!   pretty-printing writer;
//! * [`reader`] — the streaming [`reader::CubeReader`]: lexer events
//!   assembled directly into a [`cube_model::Experiment`], with
//!   severity rows parsed straight into the dense buffer;
//! * [`writer`] — the streaming [`writer::CubeWriter`]: an experiment
//!   emitted to any [`std::io::Write`] without an element tree;
//! * [`format`](mod@format) — the CUBE format layer: [`format::write_experiment`]
//!   and [`format::read_experiment`] convert between
//!   [`cube_model::Experiment`] and `.cube` files on top of the
//!   streaming pair (the DOM pipeline stays available as
//!   [`format::read_experiment_dom`] / [`format::write_experiment_dom`]).
//!
//! The format itself — element inventory, dense-id rules, the
//! zero-omission convention, topologies, provenance — is specified
//! normatively in `docs/FORMAT.md` at the repository root.
//!
//! ## File layout
//!
//! ```xml
//! <?xml version="1.0" encoding="UTF-8"?>
//! <cube version="1.0">
//!   <provenance kind="original" label="pescan run 1"/>
//!   <metrics>
//!     <metric id="0" name="time" uom="sec" descr="total time">
//!       <metric id="1" name="mpi" uom="sec" descr="MPI time"/>
//!     </metric>
//!   </metrics>
//!   <program>
//!     <module id="0" name="main.c" path="/src/main.c"/>
//!     <region id="0" mod="0" name="main" kind="function" begin="1" end="42"/>
//!     <csite id="0" file="main.c" line="1" callee="0"/>
//!     <cnode id="0" csite="0"/>
//!   </program>
//!   <system>
//!     <machine id="0" name="cluster">
//!       <node id="0" name="node0">
//!         <process id="0" rank="0" name="rank 0">
//!           <thread id="0" num="0" name="thread 0"/>
//!         </process>
//!       </node>
//!     </machine>
//!   </system>
//!   <severity>
//!     <matrix metric="0">
//!       <row cnode="0">1.5</row>
//!     </matrix>
//!   </severity>
//! </cube>
//! ```
//!
//! Rows and matrices that contain only zeros are omitted; absent tuples
//! read back as zero severity, mirroring the zero-extension rule of the
//! algebra.

pub mod dom;
pub mod error;
pub mod escape;
pub mod faults;
mod fmt64;
pub mod footer;
pub mod format;
pub mod lexer;
pub mod lint;
pub mod reader;
pub mod writer;

pub use dom::{Document, Element, XmlNode};
pub use error::{LimitKind, XmlError};
pub use footer::FooterStatus;
pub use format::{
    read_experiment, read_experiment_file, read_experiment_salvage, read_experiment_salvage_as,
    read_experiment_salvage_file, read_experiment_salvage_file_as, read_experiment_salvage_with,
    write_experiment, write_experiment_file, write_experiment_file_with, SalvageReport,
    WriteOptions,
};
pub use lint::{lint_file, lint_read, lint_str, read_experiment_strict};
pub use reader::{CubeReader, ReadLimits};
pub use writer::CubeWriter;
