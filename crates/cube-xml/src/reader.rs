//! Streaming `.cube` reader: lexer events straight into the model.
//!
//! [`CubeReader`] pulls [`XmlEvent`]s from the [`Lexer`]
//! and assembles a [`cube_model::Experiment`] without ever building a
//! DOM tree. Metadata sections are collected into small per-entity
//! records (names borrow from the input until the final insertion),
//! then severity `<row>` values are parsed directly into the dense
//! [`Severity`] buffer. The only transient allocations proportional to
//! the file are one scratch string bounded by the longest severity row
//! — transient memory is O(row), not O(document).
//!
//! The streaming pass requires the metadata sections (`<metrics>`,
//! `<program>`, `<system>`) to precede `<severity>`, which every file
//! this crate writes satisfies. A foreign file that orders them
//! differently is still read correctly: [`CubeReader::read`] falls
//! back to the DOM reader for that rare shape.

use std::borrow::Cow;
use std::str::FromStr;

use cube_model::{
    CallNode, CallNodeId, CallSite, CallSiteId, CartTopology, Experiment, Machine, MachineId,
    Metadata, Metric, MetricId, Module, ModuleId, NodeId, Process, ProcessId, Provenance, Region,
    RegionId, RegionKind, Severity, SystemNode, Thread, Unit,
};

use crate::error::{LimitKind, Position, XmlError};
use crate::lexer::{Lexer, XmlEvent};

/// Resource limits enforced while parsing untrusted documents.
///
/// The defaults are generous — far beyond anything a real measurement
/// produces — but finite, so an adversarial file cannot drive the
/// reader into unbounded recursion or allocation. Each limit maps to
/// one `E2xx` lint code when exceeded (see `docs/FORMAT.md` §9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadLimits {
    /// Maximum total input size in bytes (`E200`). Default 1 GiB.
    pub max_input_bytes: usize,
    /// Maximum element nesting depth (`E201`). Bounds both malicious
    /// nesting and the parser's own recursion (metric and call-node
    /// trees recurse once per level). Default 256.
    pub max_depth: usize,
    /// Maximum entities defined in any one metadata dimension —
    /// metrics, modules, regions, call sites, call nodes, machines,
    /// nodes, processes, threads, topology coordinates (`E202`).
    /// Default 4 194 304.
    pub max_entities: usize,
    /// Maximum byte length of one severity row's text (`E203`).
    /// Default 64 MiB.
    pub max_row_bytes: usize,
}

impl Default for ReadLimits {
    fn default() -> Self {
        Self {
            max_input_bytes: 1 << 30,
            max_depth: 256,
            max_entities: 1 << 22,
            max_row_bytes: 64 << 20,
        }
    }
}

impl ReadLimits {
    /// No limits at all — the pre-limits behavior, for trusted inputs.
    pub fn unlimited() -> Self {
        Self {
            max_input_bytes: usize::MAX,
            max_depth: usize::MAX,
            max_entities: usize::MAX,
            max_row_bytes: usize::MAX,
        }
    }
}

/// Pull-based reader that streams a `.cube` document into an
/// [`Experiment`].
///
/// ```
/// use cube_xml::reader::CubeReader;
///
/// let xml = r#"<cube version="1.0">
///   <metrics><metric id="0" name="time" uom="sec" descr="t"/></metrics>
///   <program>
///     <module id="0" name="a.c" path="/a.c"/>
///     <region id="0" mod="0" name="main" kind="function" begin="1" end="9"/>
///     <csite id="0" file="a.c" line="1" callee="0"/>
///     <cnode id="0" csite="0"/>
///   </program>
///   <system>
///     <machine id="0" name="m"><node id="0" name="n">
///       <process id="0" rank="0" name="r0"><thread id="0" num="0" name="t0"/></process>
///     </node></machine>
///   </system>
///   <severity><matrix metric="0"><row cnode="0">2.5</row></matrix></severity>
/// </cube>"#;
/// let exp = CubeReader::new(xml).read().unwrap();
/// assert_eq!(exp.severity().values(), &[2.5]);
/// ```
pub struct CubeReader<'a> {
    input: &'a str,
    limits: ReadLimits,
}

impl<'a> CubeReader<'a> {
    /// Creates a reader over an in-memory document with the default
    /// [`ReadLimits`].
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            limits: ReadLimits::default(),
        }
    }

    /// Creates a reader with explicit resource limits.
    pub fn with_limits(input: &'a str, limits: ReadLimits) -> Self {
        Self { input, limits }
    }

    /// Parses the document into an experiment.
    ///
    /// Uses the single-pass streaming parser; if the file stores
    /// `<severity>` before its metadata sections, re-reads through the
    /// DOM parser instead (the severity shape is unknowable until the
    /// metadata is complete).
    pub fn read(self) -> Result<Experiment, XmlError> {
        match read_streaming_limited(self.input, self.limits)? {
            Some(exp) => Ok(exp),
            None => crate::format::read_experiment_dom(self.input),
        }
    }
}

/// Streaming parse with default limits. `Ok(None)` means the file is
/// readable but stores severity before the metadata sections — the
/// caller should use the DOM reader.
#[cfg(test)]
pub(crate) fn read_streaming(input: &str) -> Result<Option<Experiment>, XmlError> {
    read_streaming_limited(input, ReadLimits::default())
}

pub(crate) fn read_streaming_limited(
    input: &str,
    limits: ReadLimits,
) -> Result<Option<Experiment>, XmlError> {
    match read_streaming_parts_limited(input, limits)? {
        Some((md, sev, provenance)) => Experiment::new(md, sev, provenance)
            .map(Some)
            .map_err(Into::into),
        None => Ok(None),
    }
}

/// Like [`read_streaming`], but returns the raw parts without the final
/// [`Experiment::new`] validation, so a linter can diagnose *all* model
/// violations of a well-formed file instead of the first one.
pub(crate) fn read_streaming_parts(
    input: &str,
) -> Result<Option<(Metadata, Severity, Provenance)>, XmlError> {
    read_streaming_parts_limited(input, ReadLimits::default())
}

pub(crate) fn read_streaming_parts_limited(
    input: &str,
    limits: ReadLimits,
) -> Result<Option<(Metadata, Severity, Provenance)>, XmlError> {
    check_input_size(input, &limits)?;
    let mut parser = Parser::new(input, limits);
    parser.read_document_parts()
}

/// What the salvage pass could not recover, alongside what it could.
#[derive(Clone, Debug, Default)]
pub(crate) struct SalvageInfo {
    /// Severity rows committed to the buffer (each parsed completely
    /// before being stored, so a torn row is never half-applied).
    pub rows_recovered: usize,
    /// Description of the first unrecoverable defect, when the document
    /// could not be read to the end.
    pub loss: Option<String>,
    /// Position of that defect, when known.
    pub position: Option<Position>,
    /// The structure being parsed when the defect hit, e.g.
    /// `severity matrix for metric 'time' (id 0), cnode 3` — byte
    /// offsets say *where*, this says *what*.
    pub context: Option<String>,
}

/// Salvage parse: reads the longest valid prefix of a damaged document.
///
/// Strict until the three metadata sections are complete (without them
/// there is no experiment to recover); after that, the first error
/// stops the scan and everything already assembled — complete metadata
/// plus every intact severity row, the rest zero-extended — is
/// returned with the loss recorded in [`SalvageInfo`]. `Ok(None)` has
/// the same meaning as in [`read_streaming`]: severity stored before
/// metadata, caller should fall back to the DOM reader (full parses
/// only — salvage cannot size the matrix either).
pub(crate) fn read_streaming_salvage(
    input: &str,
    limits: ReadLimits,
) -> Result<Option<(Metadata, Severity, Provenance, SalvageInfo)>, XmlError> {
    check_input_size(input, &limits)?;
    let mut parser = Parser::new(input, limits);
    parser.read_document_salvage()
}

fn check_input_size(input: &str, limits: &ReadLimits) -> Result<(), XmlError> {
    if input.len() > limits.max_input_bytes {
        return Err(XmlError::limit(
            LimitKind::InputBytes,
            format!(
                "document is {} bytes, limit is {}",
                input.len(),
                limits.max_input_bytes
            ),
        ));
    }
    Ok(())
}

/// One metadata record collected before the dense-id sort. Names keep
/// borrowing from the document until the final `Metadata` insertion.
struct MetricRec<'a> {
    id: u32,
    parent: Option<u32>,
    name: Cow<'a, str>,
    unit: Unit,
    descr: Cow<'a, str>,
}

struct CnodeRec {
    id: u32,
    parent: Option<u32>,
    csite: u32,
}

#[derive(Default)]
struct Sections<'a> {
    provenance: Option<Provenance>,
    metrics_seen: bool,
    program_seen: bool,
    system_seen: bool,
    topologies_seen: bool,
    severity_seen: bool,
    metric_recs: Vec<MetricRec<'a>>,
    modules: Vec<(Cow<'a, str>, Cow<'a, str>)>,
    regions: Vec<Region>,
    csites: Vec<CallSite>,
    cnode_recs: Vec<CnodeRec>,
    machines: Vec<(u32, Cow<'a, str>)>,
    nodes: Vec<(u32, u32, Cow<'a, str>)>,
    processes: Vec<(u32, u32, i32, Cow<'a, str>)>,
    threads: Vec<(u32, u32, u32, Cow<'a, str>)>,
    topologies: Vec<CartTopology>,
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    /// Reused buffer for severity rows split across several text
    /// events (entity references, interleaved comments).
    scratch: String,
    /// Position of the most recent event from [`Parser::next_required`];
    /// stamped onto [`Attrs`] so attribute errors can point at the
    /// element's start tag.
    last_at: Position,
    /// Resource limits enforced during the parse.
    limits: ReadLimits,
    /// Current element nesting depth; every in-root event flows through
    /// [`Parser::next_required`], which keeps this current. Bounding it
    /// also bounds the parser's own recursion (metric/cnode trees and
    /// [`Parser::skip_children`] recurse or stack per level).
    depth: usize,
}

/// Attributes of one start tag, consumed by name.
struct Attrs<'a> {
    tag: &'a str,
    /// Position of the start tag in the source document.
    at: Position,
    list: Vec<(&'a str, Cow<'a, str>)>,
}

impl<'a> Attrs<'a> {
    fn take(&mut self, key: &str) -> Option<Cow<'a, str>> {
        self.list
            .iter()
            .position(|(k, _)| *k == key)
            .map(|i| self.list.swap_remove(i).1)
    }

    fn require(&mut self, key: &str) -> Result<Cow<'a, str>, XmlError> {
        self.take(key).ok_or_else(|| {
            XmlError::format_at(
                self.at,
                format!(
                    "element <{}> is missing required attribute '{key}'",
                    self.tag
                ),
            )
        })
    }

    fn parse<T: FromStr>(&mut self, key: &str) -> Result<T, XmlError> {
        let raw = self.require(key)?;
        raw.parse().map_err(|_| {
            XmlError::value_at(
                self.at,
                format!(
                    "attribute '{key}'=\"{raw}\" of <{}> does not parse as {}",
                    self.tag,
                    std::any::type_name::<T>()
                ),
            )
        })
    }
}

/// A consumed start tag: its attributes plus whether children follow.
struct Open<'a> {
    attrs: Attrs<'a>,
    has_children: bool,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, limits: ReadLimits) -> Self {
        Self {
            lexer: Lexer::new(input),
            scratch: String::new(),
            last_at: Position { line: 1, column: 1 },
            limits,
            depth: 0,
        }
    }

    fn read_document_parts(
        &mut self,
    ) -> Result<Option<(Metadata, Severity, Provenance)>, XmlError> {
        let root = self.read_prolog()?;
        let XmlEvent::StartTag {
            name,
            attributes,
            self_closing,
        } = root
        else {
            unreachable!("read_prolog only returns start tags");
        };
        if name != "cube" {
            return Err(XmlError::format(format!(
                "root element is <{name}>, expected <cube>"
            )));
        }
        // Root attributes (version, foreign extras) are ignored, like
        // the DOM reader.
        let _ = attributes;
        let mut sections = Sections::default();
        let mut finalized: Option<(Metadata, Severity)> = None;

        if !self_closing {
            self.depth = 1;
            loop {
                let at = self.lexer.position();
                match self.next_required("cube")? {
                    ev @ XmlEvent::StartTag { .. } => {
                        let open = self.reopen(ev)?;
                        match open.attrs.tag {
                            "provenance" if sections.provenance.is_none() => {
                                sections.provenance = Some(self.parse_provenance(open)?);
                            }
                            "metrics" if !sections.metrics_seen => {
                                sections.metrics_seen = true;
                                self.parse_metrics(open, &mut sections)?;
                            }
                            "program" if !sections.program_seen => {
                                sections.program_seen = true;
                                self.parse_program(open, &mut sections)?;
                            }
                            "system" if !sections.system_seen => {
                                sections.system_seen = true;
                                self.parse_system(open, &mut sections)?;
                            }
                            "topologies" if !sections.topologies_seen => {
                                sections.topologies_seen = true;
                                self.parse_topologies(open, &mut sections)?;
                            }
                            "severity" if !sections.severity_seen => {
                                if !(sections.metrics_seen
                                    && sections.program_seen
                                    && sections.system_seen)
                                {
                                    // Shape unknown — hand over to the
                                    // DOM reader.
                                    return Ok(None);
                                }
                                sections.severity_seen = true;
                                let (md, mut sev) = finalize_metadata(&mut sections)?;
                                self.parse_severity(open, &md, &mut sev)?;
                                finalized = Some((md, sev));
                            }
                            _ => self.skip_element(open)?,
                        }
                    }
                    XmlEvent::EndTag { name: "cube" } => break,
                    XmlEvent::EndTag { name } => {
                        return Err(XmlError::malformed(
                            at,
                            format!("<cube> closed by </{name}>"),
                        ));
                    }
                    XmlEvent::Text(_)
                    | XmlEvent::CData(_)
                    | XmlEvent::Comment(_)
                    | XmlEvent::Declaration => {}
                }
            }
        }
        self.read_epilog()?;

        if !sections.metrics_seen {
            return Err(missing_section("metrics"));
        }
        if !sections.program_seen {
            return Err(missing_section("program"));
        }
        if !sections.system_seen {
            return Err(missing_section("system"));
        }
        let (mut md, sev) = match finalized {
            Some(pair) => pair,
            None => finalize_metadata(&mut sections)?,
        };
        // A <topologies> section after <severity> lands here instead of
        // in finalize_metadata — topology order is shape-independent.
        for topo in sections.topologies.drain(..) {
            md.add_topology(topo);
        }
        let provenance = sections.provenance.take().unwrap_or_default();
        Ok(Some((md, sev, provenance)))
    }

    /// Consumes declaration/comments/whitespace before the root and
    /// returns the root start tag.
    fn read_prolog(&mut self) -> Result<XmlEvent<'a>, XmlError> {
        loop {
            let at = self.lexer.position();
            match self.lexer.next_event()? {
                None => {
                    return Err(XmlError::malformed(at, "document has no root element"));
                }
                Some(XmlEvent::Declaration | XmlEvent::Comment(_)) => {}
                Some(XmlEvent::Text(t)) if t.trim().is_empty() => {}
                Some(XmlEvent::Text(_)) => {
                    return Err(XmlError::malformed(at, "text outside the root element"));
                }
                Some(XmlEvent::CData(_)) => {
                    return Err(XmlError::malformed(at, "CDATA outside the root element"));
                }
                Some(XmlEvent::EndTag { name }) => {
                    return Err(XmlError::malformed(
                        at,
                        format!("unexpected closing tag </{name}>"),
                    ));
                }
                Some(ev @ XmlEvent::StartTag { .. }) => return Ok(ev),
            }
        }
    }

    /// Verifies nothing but comments and whitespace follows the root.
    fn read_epilog(&mut self) -> Result<(), XmlError> {
        loop {
            let at = self.lexer.position();
            match self.lexer.next_event()? {
                None => return Ok(()),
                Some(XmlEvent::Declaration | XmlEvent::Comment(_)) => {}
                Some(XmlEvent::Text(t)) if t.trim().is_empty() => {}
                Some(XmlEvent::StartTag { .. }) => {
                    return Err(XmlError::malformed(
                        at,
                        "content after the document's root element",
                    ));
                }
                Some(XmlEvent::EndTag { name }) => {
                    return Err(XmlError::malformed(
                        at,
                        format!("unexpected closing tag </{name}>"),
                    ));
                }
                Some(XmlEvent::Text(_) | XmlEvent::CData(_)) => {
                    return Err(XmlError::malformed(at, "text outside the root element"));
                }
            }
        }
    }

    /// Next event inside `parent`, or a malformedness error at EOF.
    /// Records the event's start position for [`Parser::reopen`] and
    /// tracks nesting depth against [`ReadLimits::max_depth`].
    fn next_required(&mut self, parent: &str) -> Result<XmlEvent<'a>, XmlError> {
        let at = self.lexer.position();
        self.last_at = at;
        let ev = self
            .lexer
            .next_event()?
            .ok_or_else(|| XmlError::malformed(at, format!("unclosed element <{parent}>")))?;
        match &ev {
            XmlEvent::StartTag {
                self_closing: false,
                ..
            } => {
                self.depth += 1;
                if self.depth > self.limits.max_depth {
                    return Err(XmlError::limit_at(
                        at,
                        LimitKind::Depth,
                        format!(
                            "element nesting depth {} exceeds the limit of {}",
                            self.depth, self.limits.max_depth
                        ),
                    ));
                }
            }
            XmlEvent::EndTag { .. } => self.depth = self.depth.saturating_sub(1),
            _ => {}
        }
        Ok(ev)
    }

    /// Fails with an `E202` limit error when a metadata dimension has
    /// collected more than [`ReadLimits::max_entities`] records.
    fn check_entity_cap(&self, len: usize, what: &str, at: Position) -> Result<(), XmlError> {
        if len > self.limits.max_entities {
            return Err(XmlError::limit_at(
                at,
                LimitKind::Entities,
                format!(
                    "more than {} <{what}> entities defined",
                    self.limits.max_entities
                ),
            ));
        }
        Ok(())
    }

    /// Converts a just-read start-tag event into an [`Open`].
    fn reopen(&mut self, ev: XmlEvent<'a>) -> Result<Open<'a>, XmlError> {
        match ev {
            XmlEvent::StartTag {
                name,
                attributes,
                self_closing,
            } => Ok(Open {
                attrs: Attrs {
                    tag: name,
                    at: self.last_at,
                    list: attributes,
                },
                has_children: !self_closing,
            }),
            _ => unreachable!("reopen is only called on start tags"),
        }
    }

    /// Consumes an element's entire subtree (the start tag has already
    /// been read), validating tag nesting along the way.
    fn skip_element(&mut self, open: Open<'a>) -> Result<(), XmlError> {
        if !open.has_children {
            return Ok(());
        }
        self.skip_children(open.attrs.tag)
    }

    /// Consumes events until the end tag of `name`, whose start tag was
    /// already consumed.
    fn skip_children(&mut self, name: &'a str) -> Result<(), XmlError> {
        let mut stack: Vec<&str> = vec![name];
        while let Some(&top) = stack.last() {
            let at = self.lexer.position();
            match self.next_required(top)? {
                XmlEvent::StartTag {
                    name,
                    self_closing: false,
                    ..
                } => stack.push(name),
                XmlEvent::EndTag { name } => {
                    if name != top {
                        return Err(XmlError::malformed(
                            at,
                            format!("<{top}> closed by </{name}>"),
                        ));
                    }
                    stack.pop();
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Parses each direct child element of an already-open parent,
    /// dispatching on its tag; other children (text, comments, unknown
    /// elements) are skipped, mirroring the DOM reader's tolerance.
    fn each_child<F>(&mut self, open: Open<'a>, mut on_child: F) -> Result<(), XmlError>
    where
        F: FnMut(&mut Self, Open<'a>) -> Result<(), XmlError>,
    {
        if !open.has_children {
            return Ok(());
        }
        let parent = open.attrs.tag;
        loop {
            let at = self.lexer.position();
            match self.next_required(parent)? {
                ev @ XmlEvent::StartTag { .. } => {
                    let child = self.reopen(ev)?;
                    on_child(self, child)?;
                }
                XmlEvent::EndTag { name } if name == parent => return Ok(()),
                XmlEvent::EndTag { name } => {
                    return Err(XmlError::malformed(
                        at,
                        format!("<{parent}> closed by </{name}>"),
                    ));
                }
                _ => {}
            }
        }
    }

    /// Collects the direct text content of an already-open element into
    /// `out` while consuming its subtree (nested elements are skipped,
    /// like [`crate::dom::Element::text_content`]).
    fn text_content(&mut self, open: Open<'a>, out: &mut String) -> Result<(), XmlError> {
        if !open.has_children {
            return Ok(());
        }
        let parent = open.attrs.tag;
        loop {
            let at = self.lexer.position();
            match self.next_required(parent)? {
                XmlEvent::Text(t) => {
                    // The DOM drops whitespace-only text nodes; match
                    // that so indentation never reaches the content.
                    if !t.trim().is_empty() {
                        out.push_str(&t);
                    }
                }
                XmlEvent::CData(t) => out.push_str(t),
                ev @ XmlEvent::StartTag { .. } => {
                    let child = self.reopen(ev)?;
                    self.skip_element(child)?;
                }
                XmlEvent::EndTag { name } if name == parent => return Ok(()),
                XmlEvent::EndTag { name } => {
                    return Err(XmlError::malformed(
                        at,
                        format!("<{parent}> closed by </{name}>"),
                    ));
                }
                XmlEvent::Comment(_) | XmlEvent::Declaration => {}
            }
        }
    }

    // -- sections ----------------------------------------------------------

    fn parse_provenance(&mut self, mut open: Open<'a>) -> Result<Provenance, XmlError> {
        let kind = open.attrs.take("kind");
        let label = open.attrs.take("label");
        let operator = open.attrs.take("operator");
        let note = open.attrs.take("note");
        let mut operands: Vec<String> = Vec::new();
        self.each_child(open, |p, child| {
            if child.attrs.tag == "operand" {
                let mut text = String::new();
                p.text_content(child, &mut text)?;
                operands.push(text);
            } else {
                p.skip_element(child)?;
            }
            Ok(())
        })?;
        match kind.as_deref() {
            Some("original") | None => Ok(Provenance::original(
                label.as_deref().unwrap_or("unnamed experiment"),
            )),
            Some("derived") => Ok(Provenance::derived(
                operator.as_deref().unwrap_or("unknown"),
                operands,
            )),
            Some("recovered") => Ok(Provenance::recovered(
                label.as_deref().unwrap_or("unnamed experiment"),
                note.as_deref().unwrap_or(""),
            )),
            Some(other) => Err(XmlError::value(format!(
                "unknown provenance kind '{other}'"
            ))),
        }
    }

    fn parse_metrics(
        &mut self,
        open: Open<'a>,
        sections: &mut Sections<'a>,
    ) -> Result<(), XmlError> {
        self.each_child(open, |p, child| {
            if child.attrs.tag == "metric" {
                p.parse_metric_tree(child, None, &mut sections.metric_recs)
            } else {
                p.skip_element(child)
            }
        })
    }

    fn parse_metric_tree(
        &mut self,
        mut open: Open<'a>,
        parent: Option<u32>,
        out: &mut Vec<MetricRec<'a>>,
    ) -> Result<(), XmlError> {
        let id: u32 = open.attrs.parse("id")?;
        let uom = open.attrs.require("uom")?;
        let unit = Unit::from_str_opt(&uom).ok_or_else(|| {
            XmlError::value_at(
                open.attrs.at,
                format!("unknown unit of measurement '{uom}'"),
            )
        })?;
        out.push(MetricRec {
            id,
            parent,
            name: open.attrs.require("name")?,
            unit,
            descr: open.attrs.take("descr").unwrap_or(Cow::Borrowed("")),
        });
        self.check_entity_cap(out.len(), "metric", open.attrs.at)?;
        self.each_child(open, |p, child| {
            if child.attrs.tag == "metric" {
                p.parse_metric_tree(child, Some(id), out)
            } else {
                p.skip_element(child)
            }
        })
    }

    fn parse_program(
        &mut self,
        open: Open<'a>,
        sections: &mut Sections<'a>,
    ) -> Result<(), XmlError> {
        self.each_child(open, |p, mut child| match child.attrs.tag {
            "module" => {
                check_dense_id(&mut child.attrs, sections.modules.len())?;
                let name = child.attrs.require("name")?;
                let path = child.attrs.take("path").unwrap_or(Cow::Borrowed(""));
                sections.modules.push((name, path));
                p.check_entity_cap(sections.modules.len(), "module", child.attrs.at)?;
                p.skip_element(child)
            }
            "region" => {
                check_dense_id(&mut child.attrs, sections.regions.len())?;
                let kind_raw = child.attrs.require("kind")?;
                let kind = RegionKind::from_str_opt(&kind_raw).ok_or_else(|| {
                    XmlError::value_at(child.attrs.at, format!("unknown region kind '{kind_raw}'"))
                })?;
                sections.regions.push(Region {
                    name: child.attrs.require("name")?.into_owned(),
                    module: ModuleId::new(child.attrs.parse("mod")?),
                    kind,
                    begin_line: child.attrs.parse("begin")?,
                    end_line: child.attrs.parse("end")?,
                });
                p.check_entity_cap(sections.regions.len(), "region", child.attrs.at)?;
                p.skip_element(child)
            }
            "csite" => {
                check_dense_id(&mut child.attrs, sections.csites.len())?;
                sections.csites.push(CallSite {
                    file: child.attrs.require("file")?.into_owned(),
                    line: child.attrs.parse("line")?,
                    callee: RegionId::new(child.attrs.parse("callee")?),
                });
                p.check_entity_cap(sections.csites.len(), "csite", child.attrs.at)?;
                p.skip_element(child)
            }
            "cnode" => p.parse_cnode_tree(child, None, &mut sections.cnode_recs),
            _ => p.skip_element(child),
        })
    }

    fn parse_cnode_tree(
        &mut self,
        mut open: Open<'a>,
        parent: Option<u32>,
        out: &mut Vec<CnodeRec>,
    ) -> Result<(), XmlError> {
        let id: u32 = open.attrs.parse("id")?;
        out.push(CnodeRec {
            id,
            parent,
            csite: open.attrs.parse("csite")?,
        });
        self.check_entity_cap(out.len(), "cnode", open.attrs.at)?;
        self.each_child(open, |p, child| {
            if child.attrs.tag == "cnode" {
                p.parse_cnode_tree(child, Some(id), out)
            } else {
                p.skip_element(child)
            }
        })
    }

    fn parse_system(
        &mut self,
        open: Open<'a>,
        sections: &mut Sections<'a>,
    ) -> Result<(), XmlError> {
        self.each_child(open, |p, mut machine| {
            if machine.attrs.tag != "machine" {
                return p.skip_element(machine);
            }
            let mid: u32 = machine.attrs.parse("id")?;
            sections
                .machines
                .push((mid, machine.attrs.require("name")?));
            p.check_entity_cap(sections.machines.len(), "machine", machine.attrs.at)?;
            p.each_child(machine, |p, mut node| {
                if node.attrs.tag != "node" {
                    return p.skip_element(node);
                }
                let nid: u32 = node.attrs.parse("id")?;
                sections.nodes.push((nid, mid, node.attrs.require("name")?));
                p.check_entity_cap(sections.nodes.len(), "node", node.attrs.at)?;
                p.each_child(node, |p, mut process| {
                    if process.attrs.tag != "process" {
                        return p.skip_element(process);
                    }
                    let pid: u32 = process.attrs.parse("id")?;
                    sections.processes.push((
                        pid,
                        nid,
                        process.attrs.parse("rank")?,
                        process.attrs.require("name")?,
                    ));
                    p.check_entity_cap(sections.processes.len(), "process", process.attrs.at)?;
                    p.each_child(process, |p, mut thread| {
                        if thread.attrs.tag != "thread" {
                            return p.skip_element(thread);
                        }
                        sections.threads.push((
                            thread.attrs.parse("id")?,
                            pid,
                            thread.attrs.parse("num")?,
                            thread.attrs.require("name")?,
                        ));
                        p.check_entity_cap(sections.threads.len(), "thread", thread.attrs.at)?;
                        p.skip_element(thread)
                    })
                })
            })
        })
    }

    fn parse_topologies(
        &mut self,
        open: Open<'a>,
        sections: &mut Sections<'a>,
    ) -> Result<(), XmlError> {
        self.each_child(open, |p, mut cart| {
            if cart.attrs.tag != "cart" {
                return p.skip_element(cart);
            }
            let parse_list = |raw: &str, key: &str| -> Result<Vec<u32>, XmlError> {
                raw.split_ascii_whitespace()
                    .map(|tok| {
                        tok.parse::<u32>().map_err(|_| {
                            XmlError::value(format!("bad topology {key} entry '{tok}'"))
                        })
                    })
                    .collect()
            };
            let name = cart.attrs.require("name")?;
            let dims = parse_list(&cart.attrs.require("dims")?, "dims")?;
            let periodic: Vec<bool> = parse_list(&cart.attrs.require("periodic")?, "periodic")?
                .into_iter()
                .map(|v| v != 0)
                .collect();
            let mut topo = CartTopology::new(name, dims, periodic);
            p.each_child(cart, |p, mut coord| {
                if coord.attrs.tag != "coord" {
                    return p.skip_element(coord);
                }
                let proc_id: u32 = coord.attrs.parse("proc")?;
                let coord_at = coord.attrs.at;
                let mut text = String::new();
                p.text_content(coord, &mut text)?;
                let c: Vec<u32> = text
                    .split_ascii_whitespace()
                    .map(|tok| {
                        tok.parse::<u32>()
                            .map_err(|_| XmlError::value(format!("bad coordinate entry '{tok}'")))
                    })
                    .collect::<Result<_, _>>()?;
                topo.coords.push((ProcessId::new(proc_id), c));
                p.check_entity_cap(topo.coords.len(), "coord", coord_at)?;
                Ok(())
            })?;
            sections.topologies.push(topo);
            Ok(())
        })
    }

    fn parse_severity(
        &mut self,
        open: Open<'a>,
        md: &Metadata,
        sev: &mut Severity,
    ) -> Result<(), XmlError> {
        let (nm, nc, _) = md.shape();
        self.each_child(open, |p, mut matrix| {
            if matrix.attrs.tag != "matrix" {
                return p.skip_element(matrix);
            }
            let m: u32 = matrix.attrs.parse("metric")?;
            if m as usize >= nm {
                return Err(XmlError::value_at(
                    matrix.attrs.at,
                    format!("matrix metric id {m} out of range"),
                ));
            }
            p.each_child(matrix, |p, mut row| {
                if row.attrs.tag != "row" {
                    return p.skip_element(row);
                }
                let c: u32 = row.attrs.parse("cnode")?;
                if c as usize >= nc {
                    return Err(XmlError::value_at(
                        row.attrs.at,
                        format!("row cnode id {c} out of range"),
                    ));
                }
                p.parse_row(row, m, c, sev)
            })
        })
    }

    /// Parses one `<row>`'s numbers straight into the severity buffer.
    ///
    /// The common case — one borrowed text event covering the whole
    /// row — is parsed without copying; rows fragmented by entity
    /// references or comments are first gathered into the reused
    /// scratch buffer.
    fn parse_row(
        &mut self,
        open: Open<'a>,
        m: u32,
        c: u32,
        sev: &mut Severity,
    ) -> Result<(), XmlError> {
        let row_at = open.attrs.at;
        let first = self.gather_row_text(open)?;
        let text: &str = match &first {
            Some(f) => f,
            None => &self.scratch,
        };
        let dest = sev.row_mut(MetricId::new(m), CallNodeId::new(c));
        parse_row_values(text, dest, m, c, row_at)
    }

    /// Gathers one `<row>`'s direct text, consuming its subtree.
    ///
    /// Returns `Some(text)` when a single text event covered the whole
    /// row (the fast, borrowed path); `None` when the text was
    /// fragmented and assembled in `self.scratch`. Enforces
    /// [`ReadLimits::max_row_bytes`].
    fn gather_row_text(&mut self, open: Open<'a>) -> Result<Option<Cow<'a, str>>, XmlError> {
        let parent = open.attrs.tag;
        let row_at = open.attrs.at;
        let mut first: Option<Cow<'a, str>> = None;
        self.scratch.clear();
        if open.has_children {
            loop {
                let at = self.lexer.position();
                match self.next_required(parent)? {
                    XmlEvent::Text(t) => match (&first, self.scratch.is_empty()) {
                        (None, true) => first = Some(t),
                        _ => {
                            if let Some(f) = first.take() {
                                self.scratch.push_str(&f);
                            }
                            self.scratch.push_str(&t);
                        }
                    },
                    XmlEvent::CData(t) => {
                        if let Some(f) = first.take() {
                            self.scratch.push_str(&f);
                        }
                        self.scratch.push_str(t);
                    }
                    ev @ XmlEvent::StartTag { .. } => {
                        let child = self.reopen(ev)?;
                        self.skip_element(child)?;
                    }
                    XmlEvent::EndTag { name } if name == parent => break,
                    XmlEvent::EndTag { name } => {
                        return Err(XmlError::malformed(
                            at,
                            format!("<{parent}> closed by </{name}>"),
                        ));
                    }
                    XmlEvent::Comment(_) | XmlEvent::Declaration => {}
                }
                let gathered = first.as_deref().map_or(0, str::len) + self.scratch.len();
                if gathered > self.limits.max_row_bytes {
                    return Err(XmlError::limit_at(
                        row_at,
                        LimitKind::RowBytes,
                        format!(
                            "severity row text exceeds the limit of {} bytes",
                            self.limits.max_row_bytes
                        ),
                    ));
                }
            }
        }
        Ok(first)
    }

    // -- salvage ------------------------------------------------------------

    /// Like [`Parser::read_document_parts`], but recovers the longest
    /// valid prefix once the metadata sections are complete. See
    /// [`read_streaming_salvage`].
    fn read_document_salvage(
        &mut self,
    ) -> Result<Option<(Metadata, Severity, Provenance, SalvageInfo)>, XmlError> {
        let root = self.read_prolog()?;
        let XmlEvent::StartTag {
            name,
            attributes: _,
            self_closing,
        } = root
        else {
            unreachable!("read_prolog only returns start tags");
        };
        if name != "cube" {
            return Err(XmlError::format(format!(
                "root element is <{name}>, expected <cube>"
            )));
        }
        let mut sections = Sections::default();
        let mut finalized: Option<(Metadata, Severity)> = None;
        let mut info = SalvageInfo::default();
        let mut rowbuf: Vec<f64> = Vec::new();

        if !self_closing {
            self.depth = 1;
            loop {
                // Computed *before* the step so an error inside, say,
                // <system> (whose seen-flag is set before its body is
                // parsed) still counts as unrecoverable.
                let recoverable =
                    sections.metrics_seen && sections.program_seen && sections.system_seen;
                match self.salvage_step(&mut sections, &mut finalized, &mut info, &mut rowbuf) {
                    Ok(SalvageStep::Continue) => {}
                    Ok(SalvageStep::Done) => break,
                    Ok(SalvageStep::DomFallback) => return Ok(None),
                    Err(e) if recoverable => {
                        info.position = e.position().or(Some(self.last_at));
                        info.loss = Some(e.to_string());
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        if info.loss.is_none() {
            if let Err(e) = self.read_epilog() {
                info.position = e.position();
                info.loss = Some(e.to_string());
            }
        }

        if !sections.metrics_seen {
            return Err(missing_section("metrics"));
        }
        if !sections.program_seen {
            return Err(missing_section("program"));
        }
        if !sections.system_seen {
            return Err(missing_section("system"));
        }
        let (mut md, sev) = match finalized {
            Some(pair) => pair,
            None => finalize_metadata(&mut sections)?,
        };
        for topo in sections.topologies.drain(..) {
            md.add_topology(topo);
        }
        let provenance = sections.provenance.take().unwrap_or_default();
        Ok(Some((md, sev, provenance, info)))
    }

    /// One iteration of the salvage loop: reads and dispatches a single
    /// top-level event under `<cube>`.
    fn salvage_step(
        &mut self,
        sections: &mut Sections<'a>,
        finalized: &mut Option<(Metadata, Severity)>,
        info: &mut SalvageInfo,
        rowbuf: &mut Vec<f64>,
    ) -> Result<SalvageStep, XmlError> {
        let at = self.lexer.position();
        match self.next_required("cube")? {
            ev @ XmlEvent::StartTag { .. } => {
                let open = self.reopen(ev)?;
                // Record which structure is being parsed so the report
                // can name it when this step's error propagates;
                // cleared again once the section completes.
                info.context = Some(format!("{} section", open.attrs.tag));
                match open.attrs.tag {
                    "provenance" if sections.provenance.is_none() => {
                        sections.provenance = Some(self.parse_provenance(open)?);
                    }
                    "metrics" if !sections.metrics_seen => {
                        sections.metrics_seen = true;
                        self.parse_metrics(open, sections)?;
                    }
                    "program" if !sections.program_seen => {
                        sections.program_seen = true;
                        self.parse_program(open, sections)?;
                    }
                    "system" if !sections.system_seen => {
                        sections.system_seen = true;
                        self.parse_system(open, sections)?;
                    }
                    "topologies" if !sections.topologies_seen => {
                        sections.topologies_seen = true;
                        self.parse_topologies(open, sections)?;
                    }
                    "severity" if !sections.severity_seen => {
                        if !(sections.metrics_seen && sections.program_seen && sections.system_seen)
                        {
                            return Ok(SalvageStep::DomFallback);
                        }
                        sections.severity_seen = true;
                        let (md, mut sev) = finalize_metadata(sections)?;
                        // Commit the partially-filled buffer *before*
                        // propagating a mid-severity error: every row
                        // already copied in is intact.
                        let res = self.parse_severity_salvage(open, &md, &mut sev, info, rowbuf);
                        *finalized = Some((md, sev));
                        res?;
                    }
                    _ => self.skip_element(open)?,
                }
                info.context = None;
                Ok(SalvageStep::Continue)
            }
            XmlEvent::EndTag { name: "cube" } => Ok(SalvageStep::Done),
            XmlEvent::EndTag { name } => Err(XmlError::malformed(
                at,
                format!("<cube> closed by </{name}>"),
            )),
            XmlEvent::Text(_)
            | XmlEvent::CData(_)
            | XmlEvent::Comment(_)
            | XmlEvent::Declaration => Ok(SalvageStep::Continue),
        }
    }

    /// Severity parsing with per-row atomic commit: each `<row>` is
    /// parsed into a temporary buffer and only copied into `sev` when
    /// complete, so a row torn by truncation never half-applies.
    fn parse_severity_salvage(
        &mut self,
        open: Open<'a>,
        md: &Metadata,
        sev: &mut Severity,
        info: &mut SalvageInfo,
        rowbuf: &mut Vec<f64>,
    ) -> Result<(), XmlError> {
        let (nm, nc, nt) = md.shape();
        self.each_child(open, |p, mut matrix| {
            if matrix.attrs.tag != "matrix" {
                return p.skip_element(matrix);
            }
            let m: u32 = matrix.attrs.parse("metric")?;
            if m as usize >= nm {
                return Err(XmlError::value_at(
                    matrix.attrs.at,
                    format!("matrix metric id {m} out of range"),
                ));
            }
            let metric_name = md.metric(MetricId::new(m)).name.clone();
            info.context = Some(format!(
                "severity matrix for metric '{metric_name}' (id {m})"
            ));
            p.each_child(matrix, |p, mut row| {
                if row.attrs.tag != "row" {
                    return p.skip_element(row);
                }
                let c: u32 = row.attrs.parse("cnode")?;
                if c as usize >= nc {
                    return Err(XmlError::value_at(
                        row.attrs.at,
                        format!("row cnode id {c} out of range"),
                    ));
                }
                info.context = Some(format!(
                    "severity matrix for metric '{metric_name}' (id {m}), cnode {c}"
                ));
                let row_at = row.attrs.at;
                let first = p.gather_row_text(row)?;
                rowbuf.clear();
                rowbuf.resize(nt, 0.0);
                {
                    let text: &str = match &first {
                        Some(f) => f,
                        None => &p.scratch,
                    };
                    parse_row_values(text, rowbuf, m, c, row_at)?;
                }
                sev.row_mut(MetricId::new(m), CallNodeId::new(c))
                    .copy_from_slice(rowbuf);
                info.rows_recovered += 1;
                Ok(())
            })
        })
    }
}

/// Outcome of one [`Parser::salvage_step`].
enum SalvageStep {
    Continue,
    Done,
    DomFallback,
}

/// Parses a row's whitespace-separated numbers into `dest`, requiring
/// exactly `dest.len()` values.
fn parse_row_values(
    text: &str,
    dest: &mut [f64],
    m: u32,
    c: u32,
    row_at: Position,
) -> Result<(), XmlError> {
    let mut count = 0usize;
    for (i, tok) in text.split_ascii_whitespace().enumerate() {
        if i >= dest.len() {
            return Err(XmlError::value_at(
                row_at,
                format!(
                    "row (metric {m}, cnode {c}) has more than {} values",
                    dest.len()
                ),
            ));
        }
        dest[i] = match parse_f64_fixed(tok) {
            Some(v) => v,
            None => tok.parse().map_err(|_| {
                XmlError::value_at(
                    row_at,
                    format!(
                        "severity value '{tok}' in row (metric {m}, cnode {c}) is not a number"
                    ),
                )
            })?,
        };
        count += 1;
    }
    if count != dest.len() {
        return Err(XmlError::value_at(
            row_at,
            format!(
                "row (metric {m}, cnode {c}) has {count} values, expected {}",
                dest.len()
            ),
        ));
    }
    Ok(())
}

/// Fast exact parse for plain fixed-notation tokens — an optional
/// sign, at most 15 digits, at most one decimal point. The digits fit
/// a `u64` below 2⁵³ and the scale is an exact power of ten, so one
/// IEEE division yields the correctly rounded value: bit-identical to
/// `str::parse::<f64>`, which is what almost every severity token in a
/// `.cube` file needs. Returns `None` for everything else (exponents,
/// specials, long or malformed tokens); the caller falls back to the
/// general parser.
fn parse_f64_fixed(tok: &str) -> Option<f64> {
    let b = tok.as_bytes();
    let (neg, rest) = match b.split_first()? {
        (b'-', rest) => (true, rest),
        _ => (false, b),
    };
    let mut n: u64 = 0;
    let mut digits = 0usize;
    let mut frac: Option<usize> = None;
    for (i, &c) in rest.iter().enumerate() {
        if c.is_ascii_digit() {
            n = n * 10 + u64::from(c - b'0');
            digits += 1;
        } else if c == b'.' && frac.is_none() {
            frac = Some(rest.len() - i - 1);
        } else {
            return None;
        }
    }
    if digits == 0 || digits > 15 {
        return None;
    }
    const POW10: [f64; 16] = [
        1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15,
    ];
    let mut v = n as f64;
    if let Some(f) = frac {
        v /= POW10[f];
    }
    Some(if neg { -v } else { v })
}

fn missing_section(name: &str) -> XmlError {
    XmlError::format(format!("element <cube> is missing required child <{name}>"))
}

fn check_dense_id(attrs: &mut Attrs<'_>, expected: usize) -> Result<(), XmlError> {
    let id: usize = attrs.parse("id")?;
    if id != expected {
        return Err(XmlError::format_at(
            attrs.at,
            format!(
                "<{}> ids must be dense and in document order: found {id}, expected {expected}",
                attrs.tag
            ),
        ));
    }
    Ok(())
}

/// Sorts records by id, verifies the ids are exactly `0..n`, and
/// checks parents precede children.
fn sort_dense_tree<T>(
    what: &str,
    recs: &mut [T],
    id_of: impl Fn(&T) -> u32,
    parent_of: impl Fn(&T) -> Option<u32>,
) -> Result<(), XmlError> {
    recs.sort_by_key(&id_of);
    for (expected, rec) in recs.iter().enumerate() {
        let id = id_of(rec);
        if id as usize != expected {
            return Err(XmlError::format(format!(
                "<{what}> ids must be dense 0..{}: found {id}, expected {expected}",
                recs.len()
            )));
        }
        if let Some(p) = parent_of(rec) {
            if p >= id {
                return Err(XmlError::format(format!(
                    "{what} {id} appears before its parent {p}"
                )));
            }
        }
    }
    Ok(())
}

/// Sorts flat records by id and verifies density.
fn sort_dense_flat<T>(
    what: &str,
    recs: &mut [T],
    id_of: impl Fn(&T) -> u32,
) -> Result<(), XmlError> {
    recs.sort_by_key(&id_of);
    for (expected, rec) in recs.iter().enumerate() {
        if id_of(rec) as usize != expected {
            return Err(XmlError::format(format!(
                "<{what}> ids must be dense 0..{}: found {}, expected {expected}",
                recs.len(),
                id_of(rec)
            )));
        }
    }
    Ok(())
}

/// Turns the collected section records into `Metadata` plus an all-zero
/// severity of the right shape.
fn finalize_metadata(sections: &mut Sections<'_>) -> Result<(Metadata, Severity), XmlError> {
    let mut md = Metadata::new();

    sort_dense_tree("metric", &mut sections.metric_recs, |r| r.id, |r| r.parent)?;
    for rec in sections.metric_recs.drain(..) {
        md.add_metric(Metric {
            name: rec.name.into_owned(),
            unit: rec.unit,
            description: rec.descr.into_owned(),
            parent: rec.parent.map(MetricId::new),
        });
    }

    for (name, path) in sections.modules.drain(..) {
        md.add_module(Module::new(name, path));
    }
    for region in sections.regions.drain(..) {
        md.add_region(region);
    }
    for csite in sections.csites.drain(..) {
        md.add_call_site(csite);
    }
    sort_dense_tree("cnode", &mut sections.cnode_recs, |r| r.id, |r| r.parent)?;
    for rec in sections.cnode_recs.drain(..) {
        md.add_call_node(CallNode {
            call_site: CallSiteId::new(rec.csite),
            parent: rec.parent.map(CallNodeId::new),
        });
    }

    sort_dense_flat("machine", &mut sections.machines, |m| m.0)?;
    sort_dense_flat("node", &mut sections.nodes, |n| n.0)?;
    sort_dense_flat("process", &mut sections.processes, |p| p.0)?;
    sort_dense_flat("thread", &mut sections.threads, |t| t.0)?;
    for (_, name) in sections.machines.drain(..) {
        md.add_machine(Machine::new(name));
    }
    for (_, mid, name) in sections.nodes.drain(..) {
        md.add_node(SystemNode::new(name, MachineId::new(mid)));
    }
    for (_, nid, rank, name) in sections.processes.drain(..) {
        md.add_process(Process::new(name, rank, NodeId::new(nid)));
    }
    for (_, pid, num, name) in sections.threads.drain(..) {
        md.add_thread(Thread::new(name, num, ProcessId::new(pid)));
    }

    for topo in sections.topologies.drain(..) {
        md.add_topology(topo);
    }

    let (nm, nc, nt) = md.shape();
    let sev = Severity::zeros(nm, nc, nt);
    Ok((md, sev))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_parse_matches_std() {
        // Accepted tokens must agree with `str::parse` bit for bit.
        let mut toks: Vec<String> = [
            "0",
            "-0",
            "1",
            "-1",
            "1.",
            ".5",
            "-.5",
            "0.1",
            "0.000001",
            "999999999999999",
            "999999999999.999",
            "123456.654321",
            "-8.125",
            "3.0",
            "0.3333333333333",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut state = 7u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
            toks.push(format!("{}", ((unit * 10.0 - 2.0) * 1e6).round() / 1e6));
            toks.push(format!("{}", unit * 10.0 - 2.0));
        }
        for t in &toks {
            if let Some(v) = parse_f64_fixed(t) {
                assert_eq!(
                    v.to_bits(),
                    t.parse::<f64>().unwrap().to_bits(),
                    "token {t:?}"
                );
            }
        }
        // Everything outside the class defers to the general parser.
        for t in [
            "",
            "-",
            ".",
            "1e3",
            "inf",
            "NaN",
            "+1",
            "1.2.3",
            "1234567890123456",
            "0x10",
        ] {
            assert_eq!(parse_f64_fixed(t), None, "token {t:?}");
        }
    }

    #[test]
    fn rejects_text_outside_root() {
        assert!(matches!(
            read_streaming("stray <cube/>"),
            Err(XmlError::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_second_root() {
        let err = read_streaming("<cube><metrics/><program/><system/></cube><cube/>").unwrap_err();
        assert!(err.to_string().contains("after the document's root"));
    }

    #[test]
    fn severity_before_metadata_requests_dom_fallback() {
        let xml = "<cube><severity/><metrics/><program/><system/></cube>";
        assert!(read_streaming(xml).unwrap().is_none());
    }

    #[test]
    fn empty_sections_give_empty_experiment_error() {
        // No threads at all violates the data model, like the DOM path.
        let err = read_streaming("<cube><metrics/><program/><system/></cube>").unwrap_err();
        assert!(matches!(err, XmlError::Model(_)));
    }

    #[test]
    fn unclosed_root_rejected() {
        assert!(matches!(
            read_streaming("<cube><metrics/>"),
            Err(XmlError::Malformed { .. })
        ));
    }

    #[test]
    fn mismatched_nesting_rejected_in_skipped_subtrees() {
        let xml = "<cube><unknown><a><b></a></b></unknown><metrics/><program/><system/></cube>";
        assert!(matches!(
            read_streaming(xml),
            Err(XmlError::Malformed { .. })
        ));
    }

    fn sample_doc() -> String {
        use cube_model::{ExperimentBuilder, Unit};
        let mut b = ExperimentBuilder::new("salvage sample");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let visits = b.def_metric("visits", Unit::Occurrences, "", None);
        let m = b.def_module("a.c", "/a.c");
        let r = b.def_region("main", m, cube_model::RegionKind::Function, 1, 9);
        let cs = b.def_call_site("a.c", 1, r);
        let root = b.def_call_node(cs, None);
        let cs2 = b.def_call_site("a.c", 3, r);
        let inner = b.def_call_node(cs2, Some(root));
        let ts = cube_model::builder::single_threaded_system(&mut b, 2);
        for (i, &t) in ts.iter().enumerate() {
            b.set_severity(time, root, t, 1.5 + i as f64);
            b.set_severity(time, inner, t, 0.5);
            b.set_severity(visits, inner, t, 3.0);
        }
        crate::format::write_experiment(&b.build().unwrap())
    }

    #[test]
    fn depth_limit_is_enforced() {
        let xml = "<cube><a><b><c><d><e/></d></c></b></a><metrics/><program/><system/></cube>";
        let limits = ReadLimits {
            max_depth: 3,
            ..ReadLimits::default()
        };
        let err = read_streaming_limited(xml, limits).unwrap_err();
        assert!(
            matches!(
                err,
                XmlError::Limit {
                    kind: LimitKind::Depth,
                    ..
                }
            ),
            "{err}"
        );
        // The same document passes with the default limits.
        assert!(matches!(read_streaming(xml), Err(XmlError::Model(_))));
    }

    #[test]
    fn entity_limit_is_enforced() {
        let doc = sample_doc();
        let limits = ReadLimits {
            max_entities: 1,
            ..ReadLimits::default()
        };
        let err = read_streaming_limited(&doc, limits).unwrap_err();
        assert!(
            matches!(
                err,
                XmlError::Limit {
                    kind: LimitKind::Entities,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn input_size_limit_is_enforced() {
        let doc = sample_doc();
        let limits = ReadLimits {
            max_input_bytes: 16,
            ..ReadLimits::default()
        };
        let err = read_streaming_limited(&doc, limits).unwrap_err();
        assert!(
            matches!(
                err,
                XmlError::Limit {
                    kind: LimitKind::InputBytes,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn row_byte_limit_is_enforced() {
        let doc = sample_doc();
        let limits = ReadLimits {
            max_row_bytes: 2,
            ..ReadLimits::default()
        };
        let err = read_streaming_limited(&doc, limits).unwrap_err();
        assert!(
            matches!(
                err,
                XmlError::Limit {
                    kind: LimitKind::RowBytes,
                    ..
                }
            ),
            "{err}"
        );
        assert!(read_streaming(&doc).unwrap().is_some());
    }

    #[test]
    fn salvage_of_intact_document_is_lossless() {
        let doc = sample_doc();
        let (md, sev, _prov, info) = read_streaming_salvage(&doc, ReadLimits::default())
            .unwrap()
            .unwrap();
        assert!(info.loss.is_none(), "{info:?}");
        assert!(info.rows_recovered > 0);
        let strict = read_streaming(&doc).unwrap().unwrap();
        assert_eq!(md, *strict.metadata());
        assert_eq!(sev.values(), strict.severity().values());
    }

    #[test]
    fn salvage_recovers_prefix_of_truncated_document() {
        let doc = sample_doc();
        // Cut inside the last <row>: metadata and the earlier rows must
        // survive, the torn row must not half-apply.
        let cut = doc.rfind("<row").unwrap() + 6;
        let (md, sev, _prov, info) = read_streaming_salvage(&doc[..cut], ReadLimits::default())
            .unwrap()
            .unwrap();
        assert!(info.loss.is_some(), "{info:?}");
        let strict = read_streaming(&doc).unwrap().unwrap();
        assert_eq!(md, *strict.metadata());
        // Every recovered value is either the original or zero.
        let full = strict.severity().values();
        let got = sev.values();
        assert_eq!(got.len(), full.len());
        for (g, f) in got.iter().zip(full) {
            assert!(*g == *f || *g == 0.0, "recovered {g}, original {f}");
        }
        assert!(info.rows_recovered >= 1);
    }

    #[test]
    fn salvage_without_complete_metadata_is_fatal() {
        let doc = sample_doc();
        let cut = doc.find("<system>").unwrap() + 10;
        assert!(read_streaming_salvage(&doc[..cut], ReadLimits::default()).is_err());
    }
}
