//! A streaming tokenizer for the XML subset used by the CUBE format.
//!
//! Supported: the XML declaration, start/end/self-closing tags with
//! attributes (either quote kind), text content, comments, and CDATA
//! sections. Not supported (not needed by the format, rejected cleanly):
//! DOCTYPE declarations and processing instructions other than the
//! declaration.
//!
//! Two APIs share one lexing core:
//!
//! * [`Lexer::next_event`] yields borrowed [`XmlEvent`]s whose names
//!   and bodies are slices of the input; attribute values and text are
//!   [`Cow`]s that only allocate when entity references must be
//!   resolved. This is the zero-copy path the streaming CUBE reader is
//!   built on.
//! * [`Lexer::next_token`] yields owned [`XmlToken`]s, converting the
//!   borrowed events; the DOM parser uses this form.
//!
//! Events borrow from the input string, not from the lexer, so an
//! event may be held across subsequent `next_event` calls.

use std::borrow::Cow;

use crate::error::{Position, XmlError};
use crate::escape::unescape_cow;

/// One lexical event, borrowing from the input document.
#[derive(Clone, Debug, PartialEq)]
pub enum XmlEvent<'a> {
    /// `<?xml ...?>` — contents are not interpreted.
    Declaration,
    /// `<name attr="v" ...>` or `<name ... />`.
    StartTag {
        name: &'a str,
        attributes: Vec<(&'a str, Cow<'a, str>)>,
        self_closing: bool,
    },
    /// `</name>`.
    EndTag { name: &'a str },
    /// Unescaped character data (entity references resolved; borrowed
    /// when the raw text contains none).
    Text(Cow<'a, str>),
    /// `<!-- ... -->` — preserved so tools may inspect it; the DOM drops it.
    Comment(&'a str),
    /// `<![CDATA[ ... ]]>` — delivered as literal text.
    CData(&'a str),
}

impl<'a> XmlEvent<'a> {
    /// Looks up an attribute value on a start tag.
    pub fn attr(&self, key: &str) -> Option<&str> {
        match self {
            XmlEvent::StartTag { attributes, .. } => attributes
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.as_ref()),
            _ => None,
        }
    }
}

/// One lexical token of the document, with owned contents.
#[derive(Clone, Debug, PartialEq)]
pub enum XmlToken {
    /// `<?xml ...?>` — contents are not interpreted.
    Declaration,
    /// `<name attr="v" ...>` or `<name ... />`.
    StartTag {
        name: String,
        attributes: Vec<(String, String)>,
        self_closing: bool,
    },
    /// `</name>`.
    EndTag { name: String },
    /// Unescaped character data (entity references resolved).
    Text(String),
    /// `<!-- ... -->` — preserved so tools may inspect it; the DOM drops it.
    Comment(String),
    /// `<![CDATA[ ... ]]>` — delivered as literal text.
    CData(String),
}

impl From<XmlEvent<'_>> for XmlToken {
    fn from(ev: XmlEvent<'_>) -> Self {
        match ev {
            XmlEvent::Declaration => XmlToken::Declaration,
            XmlEvent::StartTag {
                name,
                attributes,
                self_closing,
            } => XmlToken::StartTag {
                name: name.to_string(),
                attributes: attributes
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v.into_owned()))
                    .collect(),
                self_closing,
            },
            XmlEvent::EndTag { name } => XmlToken::EndTag {
                name: name.to_string(),
            },
            XmlEvent::Text(t) => XmlToken::Text(t.into_owned()),
            XmlEvent::Comment(c) => XmlToken::Comment(c.to_string()),
            XmlEvent::CData(c) => XmlToken::CData(c.to_string()),
        }
    }
}

/// Tokenizer over an in-memory document.
pub struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    /// Current position, for error messages.
    pub fn position(&self) -> Position {
        Position {
            line: self.line,
            column: (self.pos - self.line_start + 1) as u32,
        }
    }

    fn advance_over(&mut self, n: usize) {
        for i in self.pos..self.pos + n {
            if self.bytes[i] == b'\n' {
                self.line += 1;
                self.line_start = i + 1;
            }
        }
        self.pos += n;
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn find_from(&self, needle: &str) -> Option<usize> {
        self.input[self.pos..].find(needle).map(|i| self.pos + i)
    }

    /// Returns the next borrowed event, or `None` at end of input.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent<'a>>, XmlError> {
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        if self.bytes[self.pos] == b'<' {
            self.lex_markup().map(Some)
        } else {
            self.lex_text().map(Some)
        }
    }

    /// Returns the next owned token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<XmlToken>, XmlError> {
        Ok(self.next_event()?.map(XmlToken::from))
    }

    fn lex_text(&mut self) -> Result<XmlEvent<'a>, XmlError> {
        let at = self.position();
        let end = self.find_from("<").unwrap_or(self.bytes.len());
        let raw = &self.input[self.pos..end];
        self.advance_over(end - self.pos);
        Ok(XmlEvent::Text(unescape_cow(raw, at)?))
    }

    fn lex_markup(&mut self) -> Result<XmlEvent<'a>, XmlError> {
        let at = self.position();
        if self.starts_with("<!--") {
            let close = self.input[self.pos + 4..]
                .find("-->")
                .map(|i| self.pos + 4 + i)
                .ok_or_else(|| XmlError::syntax(at, "unterminated comment"))?;
            let body = &self.input[self.pos + 4..close];
            self.advance_over(close + 3 - self.pos);
            return Ok(XmlEvent::Comment(body));
        }
        if self.starts_with("<![CDATA[") {
            let close = self.input[self.pos + 9..]
                .find("]]>")
                .map(|i| self.pos + 9 + i)
                .ok_or_else(|| XmlError::syntax(at, "unterminated CDATA section"))?;
            let body = &self.input[self.pos + 9..close];
            self.advance_over(close + 3 - self.pos);
            return Ok(XmlEvent::CData(body));
        }
        if self.starts_with("<?") {
            let close = self
                .find_from("?>")
                .ok_or_else(|| XmlError::syntax(at, "unterminated processing instruction"))?;
            let is_decl = self.starts_with("<?xml");
            self.advance_over(close + 2 - self.pos);
            if is_decl {
                return Ok(XmlEvent::Declaration);
            }
            return Err(XmlError::syntax(
                at,
                "processing instructions are not supported by the CUBE format",
            ));
        }
        if self.starts_with("<!") {
            return Err(XmlError::syntax(
                at,
                "DOCTYPE and other declarations are not supported by the CUBE format",
            ));
        }
        if self.starts_with("</") {
            let close = self
                .find_from(">")
                .ok_or_else(|| XmlError::syntax(at, "unterminated end tag"))?;
            let name = self.input[self.pos + 2..close].trim();
            if name.is_empty() {
                return Err(XmlError::syntax(at, "end tag without a name"));
            }
            self.advance_over(close + 1 - self.pos);
            return Ok(XmlEvent::EndTag { name });
        }
        self.lex_start_tag(at)
    }

    fn lex_start_tag(&mut self, at: Position) -> Result<XmlEvent<'a>, XmlError> {
        // Skip '<'.
        self.advance_over(1);
        let name = self.lex_name(at)?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            if self.pos >= self.bytes.len() {
                return Err(XmlError::syntax(at, "unterminated start tag"));
            }
            match self.bytes[self.pos] {
                b'>' => {
                    self.advance_over(1);
                    return Ok(XmlEvent::StartTag {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                b'/' => {
                    if !self.starts_with("/>") {
                        return Err(XmlError::syntax(self.position(), "expected '/>'"));
                    }
                    self.advance_over(2);
                    return Ok(XmlEvent::StartTag {
                        name,
                        attributes,
                        self_closing: true,
                    });
                }
                _ => {
                    let attr_at = self.position();
                    let key = self.lex_name(attr_at)?;
                    self.skip_whitespace();
                    if self.pos >= self.bytes.len() || self.bytes[self.pos] != b'=' {
                        return Err(XmlError::syntax(
                            attr_at,
                            format!("attribute '{key}' must be followed by '='"),
                        ));
                    }
                    self.advance_over(1);
                    self.skip_whitespace();
                    let value = self.lex_attr_value(attr_at)?;
                    attributes.push((key, value));
                }
            }
        }
    }

    fn lex_name(&mut self, at: Position) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1; // names never contain newlines
        }
        if self.pos == start {
            return Err(XmlError::syntax(at, "expected a name"));
        }
        let name = &self.input[start..self.pos];
        if name.as_bytes()[0].is_ascii_digit() {
            return Err(XmlError::syntax(
                at,
                format!("name '{name}' starts with a digit"),
            ));
        }
        Ok(name)
    }

    fn lex_attr_value(&mut self, at: Position) -> Result<Cow<'a, str>, XmlError> {
        if self.pos >= self.bytes.len() {
            return Err(XmlError::syntax(at, "missing attribute value"));
        }
        let quote = self.bytes[self.pos];
        if quote != b'"' && quote != b'\'' {
            return Err(XmlError::syntax(
                self.position(),
                "attribute value must be quoted",
            ));
        }
        self.advance_over(1);
        let q = quote as char;
        let close = self.input[self.pos..]
            .find(q)
            .map(|i| self.pos + i)
            .ok_or_else(|| XmlError::syntax(at, "unterminated attribute value"))?;
        let raw = &self.input[self.pos..close];
        let value = unescape_cow(raw, at)?;
        self.advance_over(close + 1 - self.pos);
        Ok(value)
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.advance_over(1);
        }
    }
}

/// Tokenizes a whole document into a vector.
pub fn tokenize(input: &str) -> Result<Vec<XmlToken>, XmlError> {
    let mut lexer = Lexer::new(input);
    let mut out = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        out.push(tok);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_document() {
        let toks = tokenize(r#"<?xml version="1.0"?><a x="1"><b/>hi</a>"#).unwrap();
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[0], XmlToken::Declaration);
        assert_eq!(
            toks[1],
            XmlToken::StartTag {
                name: "a".into(),
                attributes: vec![("x".into(), "1".into())],
                self_closing: false
            }
        );
        assert_eq!(
            toks[2],
            XmlToken::StartTag {
                name: "b".into(),
                attributes: vec![],
                self_closing: true
            }
        );
        assert_eq!(toks[3], XmlToken::Text("hi".into()));
        assert_eq!(toks[4], XmlToken::EndTag { name: "a".into() });
    }

    #[test]
    fn attributes_both_quote_kinds_and_entities() {
        let toks = tokenize(r#"<m name='a &amp; b' descr="q&quot;q"/>"#).unwrap();
        match &toks[0] {
            XmlToken::StartTag { attributes, .. } => {
                assert_eq!(attributes[0], ("name".into(), "a & b".into()));
                assert_eq!(attributes[1], ("descr".into(), "q\"q".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_cdata() {
        let toks = tokenize("<a><!-- note --><![CDATA[1 < 2 && 3]]></a>").unwrap();
        assert_eq!(toks[1], XmlToken::Comment(" note ".into()));
        assert_eq!(toks[2], XmlToken::CData("1 < 2 && 3".into()));
    }

    #[test]
    fn text_entities_resolved() {
        let toks = tokenize("<a>x &lt; y</a>").unwrap();
        assert_eq!(toks[1], XmlToken::Text("x < y".into()));
    }

    #[test]
    fn error_positions_track_lines() {
        let err = tokenize("<a>\n  <b attr></b>\n</a>").unwrap_err();
        match err {
            XmlError::Syntax { position, .. } => {
                assert_eq!(position.line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_doctype_and_pi() {
        assert!(tokenize("<!DOCTYPE cube><cube/>").is_err());
        assert!(tokenize("<?php echo ?><cube/>").is_err());
    }

    #[test]
    fn rejects_unterminated_constructs() {
        assert!(tokenize("<a").is_err());
        assert!(tokenize("<!-- never closed").is_err());
        assert!(tokenize("<a x=\"1>").is_err());
        assert!(tokenize("<![CDATA[ oops").is_err());
    }

    #[test]
    fn whitespace_inside_tags() {
        let toks = tokenize("<a  x = \"1\"   y='2' ></a>").unwrap();
        match &toks[0] {
            XmlToken::StartTag { attributes, .. } => assert_eq!(attributes.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn name_rules() {
        assert!(tokenize("<1abc/>").is_err());
        assert!(tokenize("<a-b.c:d/>").is_ok());
    }

    #[test]
    fn events_borrow_from_input() {
        use std::borrow::Cow;
        let input = r#"<a name="plain" descr="x &amp; y">text &lt;z</a>"#;
        let mut lexer = Lexer::new(input);
        let Some(XmlEvent::StartTag {
            name, attributes, ..
        }) = lexer.next_event().unwrap()
        else {
            panic!("expected a start tag");
        };
        assert_eq!(name, "a");
        // Clean attribute values borrow; escaped ones allocate.
        assert!(matches!(&attributes[0].1, Cow::Borrowed(_)));
        assert_eq!(attributes[1], ("descr", Cow::Owned::<str>("x & y".into())));
        let Some(XmlEvent::Text(t)) = lexer.next_event().unwrap() else {
            panic!("expected text");
        };
        assert!(matches!(t, Cow::Owned(_)));
        assert_eq!(t, "text <z");
        assert_eq!(
            lexer.next_event().unwrap(),
            Some(XmlEvent::EndTag { name: "a" })
        );
        assert_eq!(lexer.next_event().unwrap(), None);
    }

    #[test]
    fn events_outlive_later_calls() {
        let input = "<a x='1'/><b/>";
        let mut lexer = Lexer::new(input);
        let first = lexer.next_event().unwrap().unwrap();
        let second = lexer.next_event().unwrap().unwrap();
        // `first` is still usable here: it borrows from `input`, not
        // from the lexer.
        assert_eq!(first.attr("x"), Some("1"));
        assert!(matches!(second, XmlEvent::StartTag { name: "b", .. }));
    }
}
