//! Process-wide fault-injection hook for the I/O layers.
//!
//! Crash-safety machinery is only trustworthy when its failure paths
//! actually run; real disks fail too rarely to exercise them. This
//! module is the seam a test harness (or `cube serve --faults`, see
//! `docs/FAULTS.md`) uses to make reads fail *on demand*: the format
//! readers in `cube-xml` and `cube-store` pass every buffer they pull
//! off disk through [`inject`], and an installed hook may mutate the
//! bytes (torn reads, checksum flips — caught downstream by the *real*
//! CRC machinery) or synthesize an [`std::io::Error`] outright.
//!
//! The hook is process-global and installed at most once
//! ([`install`]); whether it currently does anything is the
//! installer's business (the server's fault plan can be activated and
//! deactivated around a chaos run). When nothing was ever installed,
//! [`inject`] is a single relaxed atomic load — the production read
//! path pays one branch per *file read*, nothing per value.

use std::sync::OnceLock;

/// A fault hook: called with the *site* label of the read (e.g.
/// `store.severity`, see `docs/FAULTS.md` for the vocabulary) and the
/// freshly read bytes. It may mutate the buffer in place and/or return
/// an error the reader must surface instead of the bytes.
pub type FaultHook = Box<dyn Fn(&str, &mut [u8]) -> Option<std::io::Error> + Send + Sync>;

static HOOK: OnceLock<FaultHook> = OnceLock::new();

/// Installs the process-wide fault hook. Returns `false` (and drops
/// `hook`) if one is already installed — the first installer wins,
/// which lets a long-lived server own the seam for its whole life.
pub fn install(hook: FaultHook) -> bool {
    HOOK.set(hook).is_ok()
}

/// True once a hook has been installed (it can never be removed, only
/// made inert by its owner).
pub fn installed() -> bool {
    HOOK.get().is_some()
}

/// Offers the bytes just read at `site` to the installed hook.
///
/// Returns `Some(error)` when the hook injects an I/O failure; the
/// caller must propagate it exactly as it would a real read error.
/// The hook may also corrupt `buf` in place and return `None`, leaving
/// the caller's own integrity checks to notice.
#[inline]
pub fn inject(site: &str, buf: &mut [u8]) -> Option<std::io::Error> {
    match HOOK.get() {
        None => None,
        Some(hook) => hook(site, buf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstalled_hook_is_inert() {
        // This test must not install anything: other tests in this
        // binary rely on the read path staying clean. It only checks
        // the fast path.
        let mut buf = [1u8, 2, 3];
        if !installed() {
            assert!(inject("test.site", &mut buf).is_none());
            assert_eq!(buf, [1, 2, 3]);
        }
    }
}
