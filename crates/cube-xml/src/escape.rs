//! Entity escaping and unescaping.
//!
//! The writer escapes the five predefined XML entities; the reader
//! additionally accepts decimal (`&#10;`) and hexadecimal (`&#x1F;`)
//! character references, which other CUBE producers may emit.

use crate::error::{Position, XmlError};

/// Escapes text content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escapes an attribute value (text entities plus both quote kinds, and
/// the whitespace characters that attribute-value normalization would
/// otherwise fold into spaces).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Resolves entity and character references in raw text.
pub fn unescape(s: &str, at: Position) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after
            .find(';')
            .ok_or_else(|| XmlError::syntax(at, "unterminated entity reference"))?;
        let name = &after[..semi];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16).map_err(|_| {
                    XmlError::syntax(at, format!("bad hex character reference &{name};"))
                })?;
                out.push(char::from_u32(cp).ok_or_else(|| {
                    XmlError::syntax(at, format!("character reference &{name}; is not a char"))
                })?);
            }
            _ if name.starts_with('#') => {
                let cp: u32 = name[1..].parse().map_err(|_| {
                    XmlError::syntax(at, format!("bad character reference &{name};"))
                })?;
                out.push(char::from_u32(cp).ok_or_else(|| {
                    XmlError::syntax(at, format!("character reference &{name}; is not a char"))
                })?);
            }
            _ => {
                return Err(XmlError::syntax(
                    at,
                    format!("unknown entity reference &{name};"),
                ))
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const AT: Position = Position { line: 1, column: 1 };

    #[test]
    fn escape_text_basics() {
        assert_eq!(escape_text("a < b && c > d"), "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn escape_attr_quotes_and_whitespace() {
        assert_eq!(escape_attr(r#"say "hi"'"#), "say &quot;hi&quot;&apos;");
        assert_eq!(escape_attr("a\nb\tc\r"), "a&#10;b&#9;c&#13;");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("a &lt; b &amp;&amp; c &gt; &quot;d&quot; &apos;", AT).unwrap(),
            "a < b && c > \"d\" '"
        );
    }

    #[test]
    fn unescape_character_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", AT).unwrap(), "ABc");
        assert_eq!(unescape("newline:&#10;", AT).unwrap(), "newline:\n");
    }

    #[test]
    fn unescape_rejects_bad_references() {
        assert!(unescape("&unknown;", AT).is_err());
        assert!(unescape("&#xZZ;", AT).is_err());
        assert!(unescape("&#1114112;", AT).is_err()); // beyond char::MAX
        assert!(unescape("&amp", AT).is_err()); // unterminated
    }

    #[test]
    fn roundtrip_text() {
        let samples = ["", "x", "<&>", "a&amp;b", "tab\there", "quote\"'", "ünïcødé 🚀"];
        for s in samples {
            assert_eq!(unescape(&escape_text(s), AT).unwrap(), s, "text: {s:?}");
            assert_eq!(unescape(&escape_attr(s), AT).unwrap(), s, "attr: {s:?}");
        }
    }
}
