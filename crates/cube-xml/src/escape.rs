//! Entity escaping and unescaping.
//!
//! The writer escapes the five predefined XML entities; the reader
//! additionally accepts decimal (`&#10;`) and hexadecimal (`&#x1F;`)
//! character references, which other CUBE producers may emit.
//!
//! Each operation comes in two flavors: the `String`-returning
//! functions always allocate, while the `_cow` variants return the
//! input slice unchanged when nothing needs rewriting — the common
//! case for CUBE files, whose names and severity rows rarely contain
//! markup characters. The streaming reader and writer are built on the
//! `_cow` variants so untouched data is never copied.

use std::borrow::Cow;

use crate::error::{Position, XmlError};

/// Escapes text content (`&`, `<`, `>`), borrowing when clean.
pub fn escape_text_cow(s: &str) -> Cow<'_, str> {
    if !s.contains(['&', '<', '>']) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    Cow::Owned(out)
}

/// Escapes text content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    escape_text_cow(s).into_owned()
}

/// Escapes an attribute value (text entities plus both quote kinds, and
/// the whitespace characters that attribute-value normalization would
/// otherwise fold into spaces), borrowing when clean.
pub fn escape_attr_cow(s: &str) -> Cow<'_, str> {
    if !s.contains(['&', '<', '>', '"', '\'', '\n', '\r', '\t']) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(ch),
        }
    }
    Cow::Owned(out)
}

/// Escapes an attribute value (text entities plus both quote kinds, and
/// the whitespace characters that attribute-value normalization would
/// otherwise fold into spaces).
pub fn escape_attr(s: &str) -> String {
    escape_attr_cow(s).into_owned()
}

/// Resolves entity and character references in raw text, borrowing the
/// input when it contains no references.
pub fn unescape_cow(s: &str, at: Position) -> Result<Cow<'_, str>, XmlError> {
    if !s.contains('&') {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after
            .find(';')
            .ok_or_else(|| XmlError::syntax(at, "unterminated entity reference"))?;
        let name = &after[..semi];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16).map_err(|_| {
                    XmlError::syntax(at, format!("bad hex character reference &{name};"))
                })?;
                out.push(char::from_u32(cp).ok_or_else(|| {
                    XmlError::syntax(at, format!("character reference &{name}; is not a char"))
                })?);
            }
            _ if name.starts_with('#') => {
                let cp: u32 = name[1..].parse().map_err(|_| {
                    XmlError::syntax(at, format!("bad character reference &{name};"))
                })?;
                out.push(char::from_u32(cp).ok_or_else(|| {
                    XmlError::syntax(at, format!("character reference &{name}; is not a char"))
                })?);
            }
            _ => {
                return Err(XmlError::syntax(
                    at,
                    format!("unknown entity reference &{name};"),
                ))
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

/// Resolves entity and character references in raw text.
pub fn unescape(s: &str, at: Position) -> Result<String, XmlError> {
    unescape_cow(s, at).map(Cow::into_owned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    const AT: Position = Position { line: 1, column: 1 };

    #[test]
    fn escape_text_basics() {
        assert_eq!(
            escape_text("a < b && c > d"),
            "a &lt; b &amp;&amp; c &gt; d"
        );
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn escape_attr_quotes_and_whitespace() {
        assert_eq!(escape_attr(r#"say "hi"'"#), "say &quot;hi&quot;&apos;");
        assert_eq!(escape_attr("a\nb\tc\r"), "a&#10;b&#9;c&#13;");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("a &lt; b &amp;&amp; c &gt; &quot;d&quot; &apos;", AT).unwrap(),
            "a < b && c > \"d\" '"
        );
    }

    #[test]
    fn unescape_character_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", AT).unwrap(), "ABc");
        assert_eq!(unescape("newline:&#10;", AT).unwrap(), "newline:\n");
    }

    #[test]
    fn unescape_rejects_bad_references() {
        assert!(unescape("&unknown;", AT).is_err());
        assert!(unescape("&#xZZ;", AT).is_err());
        assert!(unescape("&#1114112;", AT).is_err()); // beyond char::MAX
        assert!(unescape("&amp", AT).is_err()); // unterminated
    }

    #[test]
    fn cow_variants_borrow_clean_input() {
        assert!(matches!(escape_text_cow("1.5 2.25 -3"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr_cow("plain name"), Cow::Borrowed(_)));
        assert!(matches!(
            unescape_cow("no entities", AT).unwrap(),
            Cow::Borrowed(_)
        ));
        assert!(matches!(escape_text_cow("a<b"), Cow::Owned(_)));
        assert!(matches!(escape_attr_cow("a\"b"), Cow::Owned(_)));
        assert!(matches!(
            unescape_cow("a&amp;b", AT).unwrap(),
            Cow::Owned(_)
        ));
    }

    #[test]
    fn roundtrip_text() {
        let samples = [
            "",
            "x",
            "<&>",
            "a&amp;b",
            "tab\there",
            "quote\"'",
            "ünïcødé 🚀",
        ];
        for s in samples {
            assert_eq!(unescape(&escape_text(s), AT).unwrap(), s, "text: {s:?}");
            assert_eq!(unescape(&escape_attr(s), AT).unwrap(), s, "attr: {s:?}");
        }
    }
}
