//! Tolerance tests: `.cube` files written by *other* tools may carry
//! extra attributes, unknown elements, different attribute order, and
//! unusual whitespace. The reader must accept all of that (the paper's
//! interoperability goal) while still rejecting structural garbage.

use cube_xml::read_experiment;

/// A hand-written file exercising every tolerance at once.
const FOREIGN: &str = r#"<?xml version='1.0' encoding='UTF-8' standalone='yes'?>
<cube version="1.0" writer="someothertool-2.3">
  <!-- written by a third-party exporter -->
  <provenance label="foreign run" kind="original" host="node17"/>
  <unknown-section><whatever/></unknown-section>
  <metrics>
    <metric name="time" id="0" uom="sec">
      <annotation>not part of the format</annotation>
      <metric uom="sec" descr="mpi time" name="mpi" id="1"/>
    </metric>
  </metrics>
  <program>
    <module path="/src/app.c" id="0" name="app.c"/>
    <region end="99" begin="1" kind="function" name="main" mod="0" id="0" checksum="0xdead"/>
    <csite callee="0" line="1" file="app.c" id="0"/>
    <cnode csite="0" id="0">
       <comment>vendor extension</comment>
    </cnode>
  </program>
  <system>
    <machine name="weird cluster" id="0" vendor="ACME">
      <node id="0" name="n0" cores="64">
        <process rank="0" id="0" name="rank 0" pid="4242">
          <thread num="0" id="0" name="t0" tid="77"/>
        </process>
      </node>
    </machine>
  </system>
  <severity>
    <matrix metric="0">
      <row cnode="0">
         2.5
      </row>
    </matrix>
  </severity>
</cube>
"#;

#[test]
fn foreign_file_reads() {
    let e = read_experiment(FOREIGN).unwrap();
    e.validate().unwrap();
    assert_eq!(e.provenance().label(), "foreign run");
    let md = e.metadata();
    assert_eq!(md.num_metrics(), 2);
    assert_eq!(md.metric(cube_model::MetricId::new(1)).name, "mpi");
    assert_eq!(md.num_call_nodes(), 1);
    assert_eq!(md.machines()[0].name, "weird cluster");
    assert_eq!(e.severity().values(), &[2.5, 0.0]);
}

#[test]
fn missing_optional_attributes_default() {
    // descr on metrics and path on modules are optional.
    let text = r#"<cube version="1.0">
      <metrics><metric id="0" name="t" uom="occ"/></metrics>
      <program>
        <module id="0" name="m"/>
        <region id="0" mod="0" name="r" kind="user" begin="0" end="0"/>
        <csite id="0" file="m" line="0" callee="0"/>
        <cnode id="0" csite="0"/>
      </program>
      <system>
        <machine id="0" name="M"><node id="0" name="N">
          <process id="0" rank="0" name="p"><thread id="0" num="0" name="t"/></process>
        </node></machine>
      </system>
    </cube>"#;
    let e = read_experiment(text).unwrap();
    assert_eq!(
        e.metadata()
            .metric(cube_model::MetricId::new(0))
            .description,
        ""
    );
    // No <severity> section at all: everything is zero.
    assert!(e.severity().values().iter().all(|&v| v == 0.0));
}

#[test]
fn structural_garbage_still_rejected() {
    // Unknown unit.
    let bad_unit = FOREIGN.replace("uom=\"sec\"", "uom=\"lightyears\"");
    assert!(read_experiment(&bad_unit).is_err());
    // Region kind that does not exist.
    let bad_kind = FOREIGN.replace("kind=\"function\"", "kind=\"blob\"");
    assert!(read_experiment(&bad_kind).is_err());
    // Dangling callee.
    let bad_callee = FOREIGN.replace("callee=\"0\"", "callee=\"9\"");
    assert!(read_experiment(&bad_callee).is_err());
    // Severity row wider than the thread table.
    let bad_row = FOREIGN.replace("2.5", "2.5 1.0 3.0");
    assert!(read_experiment(&bad_row).is_err());
}

#[test]
fn single_quotes_and_crlf_line_endings() {
    let crlf = FOREIGN.replace('\n', "\r\n");
    let e = read_experiment(&crlf).unwrap();
    assert_eq!(e.metadata().num_metrics(), 2);
}
