//! Deterministic fuzzing of the strict-read/lint path.
//!
//! The linter is the component that gets pointed at *untrusted* files,
//! so it must never panic: every malformed input has to come back as a
//! `Report` (or a clean parse, if the mutation happened to be benign).
//! A seeded LCG drives byte mutations, splices, and truncations of a
//! valid document — reproducible without any external fuzzing engine.

use cube_model::{ExperimentBuilder, RegionKind, Unit};
use cube_xml::{lint_str, read_experiment_salvage, write_experiment};

/// Minimal linear congruential generator (Numerical Recipes constants);
/// deterministic so every failure is a stable regression test.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn seed_document() -> String {
    let mut b = ExperimentBuilder::new("fuzz seed");
    let time = b.def_metric("time", Unit::Seconds, "", None);
    let mpi = b.def_metric("mpi", Unit::Seconds, "", Some(time));
    let visits = b.def_metric("visits", Unit::Occurrences, "", None);
    let m = b.def_module("main.c", "/src/main.c");
    let r_main = b.def_region("main", m, RegionKind::Function, 1, 40);
    let r_solve = b.def_region("solve", m, RegionKind::Loop, 10, 30);
    let cs_main = b.def_call_site("main.c", 1, r_main);
    let cs_solve = b.def_call_site("main.c", 12, r_solve);
    let root = b.def_call_node(cs_main, None);
    let inner = b.def_call_node(cs_solve, Some(root));
    let ts = cube_model::builder::single_threaded_system(&mut b, 2);
    for (i, &t) in ts.iter().enumerate() {
        b.set_severity(time, root, t, 1.5 + i as f64);
        b.set_severity(mpi, inner, t, 0.25 * i as f64);
        b.set_severity(visits, inner, t, 3.0);
    }
    write_experiment(&b.build().unwrap())
}

/// Fragments spliced into the document: tag soup, stray closers,
/// attribute fragments, huge ids, control bytes.
const SPLICES: &[&str] = &[
    "<metric id=\"99\">",
    "</severity>",
    "id=\"18446744073709551616\"",
    "<row cnode=\"7\">NaN inf -inf 1e400</row>",
    "<!-- -->",
    "<cart dims=\"0\">",
    "&#x0;&bogus;",
    "<<<>>>",
    "\u{0}\u{1}\u{fffd}",
    "proc=\"-1\"",
];

#[test]
fn mutated_documents_never_panic_the_linter() {
    let seed_doc = seed_document();
    let bytes = seed_doc.as_bytes();
    let mut rng = Lcg(0x5eed_cafe);
    for _ in 0..400 {
        let mut cur = bytes.to_vec();
        for _ in 0..=rng.below(3) {
            match rng.below(4) {
                // Flip one byte to a printable character.
                0 => {
                    if !cur.is_empty() {
                        let i = rng.below(cur.len());
                        cur[i] = b' ' + (rng.below(94) as u8);
                    }
                }
                // Truncate.
                1 => cur.truncate(rng.below(cur.len())),
                // Splice a fragment at a random point.
                2 => {
                    let i = rng.below(cur.len());
                    let frag = SPLICES[rng.below(SPLICES.len())];
                    cur.splice(i..i, frag.bytes());
                }
                // Delete a random span.
                _ => {
                    let i = rng.below(cur.len());
                    let j = (i + 1 + rng.below(24)).min(cur.len());
                    cur.drain(i..j);
                }
            }
        }
        let input = String::from_utf8_lossy(&cur).into_owned();
        // Must return a report, never panic; a dirty report implies a
        // non-empty diagnostic list with well-formed display output.
        let report = lint_str(&input);
        if !report.is_clean() {
            assert!(!report.diagnostics().is_empty());
            let _ = report.to_string();
        }
    }
}

#[test]
fn truncation_at_every_char_boundary_never_panics() {
    let doc = seed_document();
    for (i, _) in doc.char_indices() {
        let report = lint_str(&doc[..i]);
        // An empty prefix is "no document"; everything else must lint.
        let _ = report.is_clean();
    }
}

/// The salvage reader's contract over the whole truncation space: it
/// never panics, and whenever it does recover an experiment, that
/// prefix experiment is lint-clean — salvage must not manufacture
/// inconsistent metadata or severity.
#[test]
fn salvage_at_every_truncation_point_never_panics_and_recovers_clean_prefixes() {
    let doc = seed_document();
    let mut recovered = 0usize;
    for (i, _) in doc.char_indices() {
        // Before the metadata completes, salvage is fatal — only the
        // Ok cases carry obligations.
        if let Ok((exp, report)) = read_experiment_salvage(&doc[..i]) {
            recovered += 1;
            exp.validate().unwrap_or_else(|e| {
                panic!("salvage at byte {i} returned an invalid experiment: {e}")
            });
            let relint = exp.lint();
            assert!(
                relint.num_errors() == 0,
                "salvage at byte {i} is not lint-clean: {relint}"
            );
            // A "complete" claim must coincide with the strict reader
            // accepting the same bytes (e.g. a cut that only dropped
            // trailing whitespace).
            if report.complete {
                assert!(
                    cube_xml::read_experiment(&doc[..i]).is_ok(),
                    "byte {i} claimed complete but the strict reader refuses it"
                );
            }
        }
    }
    // The metadata of the seed completes well before the end, so a
    // healthy share of truncation points must be recoverable.
    assert!(recovered > 0, "no truncation point was recoverable");
    // The untruncated document is a complete, lossless recovery.
    let (full, report) = read_experiment_salvage(&doc).unwrap();
    assert!(report.complete);
    assert!(full.provenance().is_original());
}

/// Salvage under the byte-mutation fuzzer: arbitrary corruption may be
/// unrecoverable, but it must never panic, and recovered experiments
/// must always validate.
#[test]
fn mutated_documents_never_panic_the_salvage_reader() {
    let seed_doc = seed_document();
    let bytes = seed_doc.as_bytes();
    let mut rng = Lcg(0xdead_50f7);
    for _ in 0..400 {
        let mut cur = bytes.to_vec();
        for _ in 0..=rng.below(3) {
            match rng.below(4) {
                0 => {
                    if !cur.is_empty() {
                        let i = rng.below(cur.len());
                        cur[i] = b' ' + (rng.below(94) as u8);
                    }
                }
                1 => cur.truncate(rng.below(cur.len())),
                2 => {
                    let i = rng.below(cur.len());
                    let frag = SPLICES[rng.below(SPLICES.len())];
                    cur.splice(i..i, frag.bytes());
                }
                _ => {
                    let i = rng.below(cur.len());
                    let j = (i + 1 + rng.below(24)).min(cur.len());
                    cur.drain(i..j);
                }
            }
        }
        let input = String::from_utf8_lossy(&cur).into_owned();
        if let Ok((exp, _report)) = read_experiment_salvage(&input) {
            exp.validate().expect("salvaged experiment must validate");
        }
    }
}
