//! Crash injection for the atomic write path.
//!
//! A child process (this test binary re-executed with a marker
//! environment variable) writes a large experiment to a target file in
//! a tight loop; the parent kills it after a randomized delay and then
//! checks the target. The durability contract of
//! [`write_experiment_file`]: at every instant the target is either
//! the previous complete file or the new complete file — never a torn
//! intermediate — because the write goes to a same-directory temp file
//! that is fsynced and renamed over the target.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

use cube_model::builder::single_threaded_system;
use cube_model::{Experiment, ExperimentBuilder, RegionKind, Unit};
use cube_xml::{read_experiment, write_experiment_file};

const CHILD_ENV: &str = "CUBE_CRASH_WRITER_TARGET";

/// Deterministic LCG for the kill delays (reproducible schedule).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A few-megabyte experiment so a single write takes long enough that
/// kills land mid-write with high probability.
fn large_experiment() -> Experiment {
    let mut b = ExperimentBuilder::new("crash target");
    let time = b.def_metric("time", Unit::Seconds, "", None);
    let visits = b.def_metric("visits", Unit::Occurrences, "", None);
    let m = b.def_module("main.c", "/src/main.c");
    let mut parent = None;
    let mut calls = Vec::new();
    for i in 0..200 {
        let r = b.def_region(format!("f{i}"), m, RegionKind::Function, 1, 2);
        let cs = b.def_call_site("main.c", i as u32 + 1, r);
        let c = b.def_call_node(cs, parent);
        parent = Some(c);
        calls.push(c);
    }
    let ts = single_threaded_system(&mut b, 64);
    for (ci, &c) in calls.iter().enumerate() {
        for (ti, &t) in ts.iter().enumerate() {
            b.set_severity(time, c, t, (ci * 64 + ti) as f64 * 0.5);
            b.set_severity(visits, c, t, 1.0);
        }
    }
    b.build().unwrap()
}

/// Child mode: loop-write the experiment to the target until killed.
fn run_child(target: &str) -> ! {
    let exp = large_experiment();
    loop {
        // Failures are expected once the parent starts killing us
        // mid-syscall on some platforms; only tearing would be a bug,
        // and the parent checks for that.
        let _ = write_experiment_file(&exp, target);
    }
}

#[test]
fn killing_the_writer_never_tears_the_target() {
    if let Ok(target) = std::env::var(CHILD_ENV) {
        run_child(&target);
    }

    let dir = std::env::temp_dir().join(format!("cube_crash_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let target: PathBuf = dir.join("victim.cube");

    // Seed the target with a *different* valid experiment so "old
    // complete file" and "new complete file" are distinguishable.
    let mut b = ExperimentBuilder::new("previous generation");
    let t = b.def_metric("time", Unit::Seconds, "", None);
    let m = b.def_module("a.c", "/a.c");
    let r = b.def_region("main", m, RegionKind::Function, 1, 1);
    let cs = b.def_call_site("a.c", 1, r);
    let root = b.def_call_node(cs, None);
    let ts = single_threaded_system(&mut b, 1);
    b.set_severity(t, root, ts[0], 42.0);
    let seed = b.build().unwrap();
    write_experiment_file(&seed, &target).unwrap();
    let seed_bytes = std::fs::read(&target).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut rng = Lcg(0xc4a5_4b17);

    for round in 0..6 {
        let mut child = Command::new(&exe)
            .arg("--exact")
            .arg("killing_the_writer_never_tears_the_target")
            .env(CHILD_ENV, &target)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(5 + rng.next() % 120));
        child.kill().unwrap();
        child.wait().unwrap();

        let bytes = std::fs::read(&target).unwrap();
        if bytes != seed_bytes {
            // Not the old file, so it must be a *new complete* file:
            // the target only ever changes by an atomic rename of a
            // fully written, fsynced, checksummed temp — a kill can
            // therefore never expose a torn intermediate.
            let text = String::from_utf8(bytes).unwrap_or_else(|_| {
                panic!("round {round}: target is not valid UTF-8 — torn write")
            });
            assert!(
                text.contains("cube:crc32"),
                "round {round}: replaced target lacks the checksum footer"
            );
            read_experiment(&text)
                .unwrap_or_else(|e| panic!("round {round}: target is unreadable after kill: {e}"));
        }

        // A SIGKILLed writer cannot unlink its in-flight temp file;
        // what matters is that every leftover *is* a temp file (the
        // documented `.NAME.tmp.PID` convention) and the target is
        // never one of them. Clean them like a crash-recovery sweep.
        for entry in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name != "victim.cube" {
                assert!(
                    name.starts_with(".victim.cube.tmp."),
                    "round {round}: unexpected stray file {name}"
                );
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
