//! Differential property tests for the streaming `.cube` pipelines.
//!
//! The DOM reader/writer pair is the oracle: for randomly generated
//! experiments — nested metric and call forests, processes placed
//! round-robin over nodes (so document order differs from id order),
//! multi-threaded processes, Cartesian topologies, negative severities,
//! and all-zero rows that the writer must omit — the streaming pair
//! must agree with it in both directions, and both writers must emit
//! identical bytes.

use proptest::prelude::*;

use cube_model::{CartTopology, Experiment, ExperimentBuilder, RegionKind, Unit};
use cube_xml::format::{read_experiment_dom, write_experiment_dom};
use cube_xml::{read_experiment, write_experiment};

// ---------------------------------------------------------------------------
// generator
// ---------------------------------------------------------------------------

/// Compact description of an experiment, drawn by proptest.
#[derive(Clone, Debug)]
struct Spec {
    /// Metric name index + parent index into the prefix (None = root).
    metrics: Vec<(u8, Option<u8>)>,
    /// Call nodes: region name index + parent index into prefix.
    calls: Vec<(u8, Option<u8>)>,
    /// Processes, placed round-robin over `nodes` SMP nodes.
    ranks: u8,
    nodes: u8,
    threads_per_rank: u8,
    /// Severity values cycled over all tuples; zeros leave whole rows
    /// empty, which exercises the zero-omission rule.
    values: Vec<i32>,
    /// Whether to attach a Cartesian topology over the processes.
    topology: bool,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let metric = (0u8..6, proptest::option::of(0u8..4));
    let call = (0u8..6, proptest::option::of(0u8..4));
    (
        proptest::collection::vec(metric, 1..5),
        proptest::collection::vec(call, 1..6),
        1u8..5,
        1u8..3,
        1u8..3,
        proptest::collection::vec(-50i32..50, 1..20),
        any::<bool>(),
    )
        .prop_map(
            |(metrics, calls, ranks, nodes, threads_per_rank, values, topology)| Spec {
                metrics,
                calls,
                ranks,
                nodes,
                threads_per_rank,
                values,
                topology,
            },
        )
}

fn build(spec: &Spec) -> Experiment {
    let mut b = ExperimentBuilder::new("streaming roundtrip <spec> & \"friends\"");
    let mut metric_ids = Vec::new();
    for (name_idx, parent) in &spec.metrics {
        let parent_id = parent.and_then(|p| metric_ids.get(p as usize).copied());
        let id = b.def_metric(format!("metric{name_idx}"), Unit::Seconds, "", parent_id);
        metric_ids.push(id);
    }

    let module = b.def_module("gen&meta.rs", "/src/gen.rs");
    let mut region_of_name = std::collections::HashMap::new();
    let mut call_ids = Vec::new();
    for (name_idx, parent) in &spec.calls {
        let region = *region_of_name.entry(*name_idx).or_insert_with(|| {
            b.def_region(
                format!("region<{name_idx}>"),
                module,
                RegionKind::Function,
                u32::from(*name_idx) + 1,
                u32::from(*name_idx) + 1,
            )
        });
        let cs = b.def_call_site("gen&meta.rs", u32::from(*name_idx) + 1, region);
        let parent_id = parent.and_then(|p| call_ids.get(p as usize).copied());
        call_ids.push(b.def_call_node(cs, parent_id));
    }

    // Round-robin rank placement interleaves process ids between node
    // subtrees, so the file stores system ids out of document order —
    // the permutation case both readers must sort back.
    let machine = b.def_machine("cluster");
    let node_ids: Vec<_> = (0..spec.nodes)
        .map(|n| b.def_node(format!("node{n}"), machine))
        .collect();
    let mut thread_ids = Vec::new();
    let mut process_ids = Vec::new();
    for r in 0..spec.ranks {
        let node = node_ids[r as usize % node_ids.len()];
        let p = b.def_process(format!("rank {r}"), i32::from(r), node);
        process_ids.push(p);
        for t in 0..spec.threads_per_rank {
            thread_ids.push(b.def_thread(format!("thread {r}.{t}"), u32::from(t), p));
        }
    }

    if spec.topology {
        let mut topo = CartTopology::new("gen grid", vec![u32::from(spec.ranks)], vec![false]);
        for (i, &p) in process_ids.iter().enumerate() {
            topo.coords.push((p, vec![i as u32]));
        }
        b.def_topology(topo);
    }

    let mut vi = 0usize;
    for &m in &metric_ids {
        for &c in &call_ids {
            for &t in &thread_ids {
                let v = spec.values[vi % spec.values.len()];
                vi += 1;
                if v != 0 {
                    b.set_severity(m, c, t, f64::from(v) * 0.125);
                }
            }
        }
    }
    b.build().unwrap()
}

// ---------------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------------

proptest! {
    /// Both writers emit identical bytes for any experiment.
    #[test]
    fn writers_agree_byte_for_byte(spec in spec_strategy()) {
        let e = build(&spec);
        prop_assert_eq!(write_experiment(&e), write_experiment_dom(&e));
    }

    /// DOM reader accepts and inverts the streaming writer.
    #[test]
    fn dom_read_of_streaming_write_is_identity(spec in spec_strategy()) {
        let e = build(&spec);
        let back = read_experiment_dom(&write_experiment(&e)).unwrap();
        prop_assert!(back.approx_eq(&e, 0.0), "metadata or severity changed");
        prop_assert_eq!(back.provenance(), e.provenance());
    }

    /// Streaming reader accepts and inverts the DOM writer.
    #[test]
    fn streaming_read_of_dom_write_is_identity(spec in spec_strategy()) {
        let e = build(&spec);
        let back = read_experiment(&write_experiment_dom(&e)).unwrap();
        prop_assert!(back.approx_eq(&e, 0.0), "metadata or severity changed");
        prop_assert_eq!(back.provenance(), e.provenance());
    }

    /// Both readers agree on every document the writer produces.
    #[test]
    fn readers_agree(spec in spec_strategy()) {
        let e = build(&spec);
        let xml = write_experiment(&e);
        let a = read_experiment(&xml).unwrap();
        let b = read_experiment_dom(&xml).unwrap();
        prop_assert!(a.approx_eq(&b, 0.0));
    }
}

// ---------------------------------------------------------------------------
// directed cases the generator can't hit
// ---------------------------------------------------------------------------

/// A file with `<severity>` ahead of the metadata sections: the
/// streaming reader's DOM fallback must make both entry points agree.
#[test]
fn severity_before_metadata_falls_back_to_dom() {
    let e = build(&Spec {
        metrics: vec![(0, None), (1, Some(0))],
        calls: vec![(0, None), (1, Some(0))],
        ranks: 2,
        nodes: 2,
        threads_per_rank: 1,
        values: vec![3, -1, 0, 7],
        topology: true,
    });
    let xml = write_experiment(&e);

    // Move the whole <severity> section to the front of <cube>.
    let sev_start = xml.find("  <severity").unwrap();
    let sev_end = xml.rfind("</severity>").unwrap() + "</severity>\n".len();
    let section = &xml[sev_start..sev_end];
    // End of the `<cube version="1.0">` line (the declaration's `?>`
    // does not match `">`).
    let open_end = xml.find("\">\n").unwrap() + "\">\n".len();
    let reordered = format!(
        "{}{}{}{}",
        &xml[..open_end],
        section,
        &xml[open_end..sev_start],
        &xml[sev_end..]
    );

    let streamed = read_experiment(&reordered).unwrap();
    let dom = read_experiment_dom(&reordered).unwrap();
    assert!(streamed.approx_eq(&e, 0.0));
    assert!(streamed.approx_eq(&dom, 0.0));
}

/// An experiment whose severity is identically zero writes as
/// `<severity/>` and reads back as all zeros through both pipelines.
#[test]
fn all_zero_experiment_roundtrips() {
    let e = build(&Spec {
        metrics: vec![(0, None)],
        calls: vec![(0, None)],
        ranks: 1,
        nodes: 1,
        threads_per_rank: 2,
        values: vec![0],
        topology: false,
    });
    let xml = write_experiment(&e);
    assert!(xml.contains("<severity/>"));
    assert_eq!(xml, write_experiment_dom(&e));
    for parsed in [
        read_experiment(&xml).unwrap(),
        read_experiment_dom(&xml).unwrap(),
    ] {
        assert!(parsed.approx_eq(&e, 0.0));
        assert!(parsed.severity().values().iter().all(|&v| v == 0.0));
    }
}
