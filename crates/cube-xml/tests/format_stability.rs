//! Format-stability guard: the exact bytes the writer produces for a
//! reference experiment, and the ability to read a frozen historical
//! file. If either test breaks, the `.cube` format changed — bump
//! `FORMAT_VERSION` and provide migration instead of silently breaking
//! interoperability.

use cube_model::builder::single_threaded_system;
use cube_model::{CartTopology, ExperimentBuilder, ProcessId, RegionKind, Unit};

fn reference_experiment() -> cube_model::Experiment {
    let mut b = ExperimentBuilder::new("format reference");
    let time = b.def_metric("time", Unit::Seconds, "total", None);
    let mpi = b.def_metric("mpi", Unit::Seconds, "MPI", Some(time));
    let m = b.def_module("app.c", "/src/app.c");
    let main_r = b.def_region("main", m, RegionKind::Function, 1, 40);
    let kernel_r = b.def_region("kernel", m, RegionKind::Loop, 10, 30);
    let cs0 = b.def_call_site("app.c", 1, main_r);
    let cs1 = b.def_call_site("app.c", 12, kernel_r);
    let root = b.def_call_node(cs0, None);
    let kernel = b.def_call_node(cs1, Some(root));
    let ts = single_threaded_system(&mut b, 2);
    b.set_severity(time, root, ts[0], 1.5);
    b.set_severity(time, kernel, ts[0], 2.25);
    b.set_severity(time, kernel, ts[1], 0.5);
    b.set_severity(mpi, kernel, ts[1], 0.125);
    let mut topo = CartTopology::new("line", vec![2], vec![true]);
    topo.coords.push((ProcessId::new(0), vec![0]));
    topo.coords.push((ProcessId::new(1), vec![1]));
    b.def_topology(topo);
    b.build().unwrap()
}

/// The frozen serialization of [`reference_experiment`].
const GOLDEN: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<cube version="1.0">
  <provenance kind="original" label="format reference"/>
  <metrics>
    <metric id="0" name="time" uom="sec" descr="total">
      <metric id="1" name="mpi" uom="sec" descr="MPI"/>
    </metric>
  </metrics>
  <program>
    <module id="0" name="app.c" path="/src/app.c"/>
    <region id="0" mod="0" name="main" kind="function" begin="1" end="40"/>
    <region id="1" mod="0" name="kernel" kind="loop" begin="10" end="30"/>
    <csite id="0" file="app.c" line="1" callee="0"/>
    <csite id="1" file="app.c" line="12" callee="1"/>
    <cnode id="0" csite="0">
      <cnode id="1" csite="1"/>
    </cnode>
  </program>
  <system>
    <machine id="0" name="virtual machine">
      <node id="0" name="virtual node">
        <process id="0" rank="0" name="rank 0">
          <thread id="0" num="0" name="rank 0 thread 0"/>
        </process>
        <process id="1" rank="1" name="rank 1">
          <thread id="1" num="0" name="rank 1 thread 0"/>
        </process>
      </node>
    </machine>
  </system>
  <topologies>
    <cart name="line" dims="2" periodic="1">
      <coord proc="0">0</coord>
      <coord proc="1">1</coord>
    </cart>
  </topologies>
  <severity>
    <matrix metric="0">
      <row cnode="0">1.5 0</row>
      <row cnode="1">2.25 0.5</row>
    </matrix>
    <matrix metric="1">
      <row cnode="1">0 0.125</row>
    </matrix>
  </severity>
</cube>
"#;

#[test]
fn writer_output_is_frozen() {
    let written = cube_xml::write_experiment(&reference_experiment());
    assert_eq!(
        written, GOLDEN,
        "the .cube serialization changed; bump FORMAT_VERSION and update the golden"
    );
}

#[test]
fn frozen_file_still_reads() {
    let e = cube_xml::read_experiment(GOLDEN).unwrap();
    assert!(e.approx_eq(&reference_experiment(), 0.0));
    assert_eq!(e.metadata().topologies().len(), 1);
}
