//! Just enough JSON for the API: string escaping for responses, and a
//! scanner that pulls one string field out of a flat request object
//! (`{"expr": "..."}`). The server never needs a general JSON parser,
//! and not having one keeps the request path free of recursion.

/// Renders `s` as a JSON string literal with the escapes the grammar
/// requires (quote, backslash, control characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts the string value of `field` from a flat JSON object,
/// decoding the standard escapes. Returns `None` when the field is
/// absent, not a string, or the object is malformed.
pub fn extract_string_field(body: &str, field: &str) -> Option<String> {
    let mut rest = body.trim_start();
    rest = rest.strip_prefix('{')?;
    loop {
        rest = rest.trim_start();
        if rest.starts_with('}') {
            return None;
        }
        let (key, after_key) = read_string(rest)?;
        rest = after_key.trim_start().strip_prefix(':')?.trim_start();
        if rest.starts_with('"') {
            let (value, after_value) = read_string(rest)?;
            if key == field {
                return Some(value);
            }
            rest = after_value;
        } else {
            // skip a non-string scalar (number, true/false/null)
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest = &rest[end..];
        }
        rest = rest.trim_start();
        match rest.chars().next() {
            Some(',') => rest = &rest[1..],
            Some('}') => return None,
            _ => return None,
        }
    }
}

/// Reads a JSON string literal at the start of `s`, returning the
/// decoded value and the remainder after the closing quote.
fn read_string(s: &str) -> Option<(String, &str)> {
    let mut chars = s.strip_prefix('"')?.char_indices();
    let inner = &s[1..];
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &inner[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip() {
        let s = "a \"quoted\"\\ line\nwith\ttabs\u{1}";
        let lit = json_string(s);
        let (back, rest) = read_string(&lit).unwrap();
        assert_eq!(back, s);
        assert!(rest.is_empty());
    }

    #[test]
    fn extracts_the_named_field() {
        let body = r#"{ "label": "x", "expr": "diff(mean(a,b),c)", "n": 3 }"#;
        assert_eq!(
            extract_string_field(body, "expr").as_deref(),
            Some("diff(mean(a,b),c)")
        );
        assert_eq!(extract_string_field(body, "label").as_deref(), Some("x"));
        assert_eq!(extract_string_field(body, "missing"), None);
        assert_eq!(extract_string_field("not json", "expr"), None);
        assert_eq!(extract_string_field(r#"{"expr": 5}"#, "expr"), None);
    }

    #[test]
    fn decodes_escaped_values() {
        let body = "{\"expr\": \"scale(a,\\t2)\", \"u\": \"\\u0041\"}";
        assert_eq!(
            extract_string_field(body, "expr").as_deref(),
            Some("scale(a,\t2)")
        );
        assert_eq!(extract_string_field(body, "u").as_deref(), Some("A"));
    }
}
