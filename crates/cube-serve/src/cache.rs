//! A small, deterministic LRU cache behind a caller-owned lock.
//!
//! Both server caches — derived-result bytes keyed by canonical
//! expression, and [`cube_algebra::PlanTables`] keyed by the ordered
//! operand-id list — share this one implementation. Recency is a
//! monotone tick, not wall-clock time, so cache behavior is identical
//! run to run; that and the engine's byte-determinism (docs/THREADS.md)
//! are what make serving cached derived experiments safe: a hit returns
//! exactly the bytes a fresh evaluation would produce.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Acquires one of the server's shared mutexes, recovering the guard
/// if a previous holder panicked mid-critical-section.
///
/// Recovery is sound here because every critical section in this
/// server is a single self-contained call into a std collection (or a
/// `VecDeque` push/pop): a panicking holder cannot leave the guarded
/// value structurally inconsistent, and propagating the poison would
/// take down a worker thread and strand its queued connections —
/// strictly worse than serving from an intact cache.
///
/// LOCK ORDER: every mutex in cube-serve is a *leaf* lock. The three
/// caches (`Shared::results`, `Shared::plans`, `Repository::handles`)
/// and the admission queue (`Shared::queue`) are each acquired with no
/// other lock held, and every guard is dropped before the next lock is
/// taken — so no lock-order relation exists and deadlock is impossible
/// by construction. `ci/lint_source.sh` (rule SL005) rejects code that
/// acquires two locks in one expression; keep critical sections
/// statement-scoped so that stays true.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

/// Least-recently-used map with a fixed capacity and hit/miss counters.
///
/// A capacity of zero disables the cache entirely: every `get` is a
/// miss and `insert` is a no-op. Eviction scans for the stalest entry
/// (the caches are small, tens of entries, so O(n) eviction is cheaper
/// than an intrusive list and has no unsafe code).
pub struct LruCache<K, V> {
    cap: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    map: HashMap<K, Entry<V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            tick: 0,
            hits: 0,
            misses: 0,
            map: HashMap::new(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key`, evicting the least-recently-used entry if the
    /// cache is full. No-op when the capacity is zero.
    pub fn insert(&mut self, key: K, value: V) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some(stalest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&stalest);
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // refresh a; b is now stalest
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"b"), Some(2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        let cache = std::sync::Arc::new(Mutex::new(LruCache::new(2)));
        {
            let cache = std::sync::Arc::clone(&cache);
            let _ = std::thread::spawn(move || {
                let mut c = lock_recover(&cache);
                c.insert("a", 1);
                panic!("poison the lock on purpose");
            })
            .join();
        }
        // The mutex is now poisoned; recovery still sees the insert.
        let mut c = lock_recover(&cache);
        assert_eq!(c.get(&"a"), Some(1));
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut c = LruCache::new(4);
        c.insert("a", 1);
        c.get(&"a");
        c.get(&"a");
        c.get(&"z");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }
}
