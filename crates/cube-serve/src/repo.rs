//! Content-addressed, hash-sharded experiment repository.
//!
//! Every ingested experiment — whether uploaded as `.cube` XML or as a
//! `.cubec` binary container — is re-encoded to its canonical `.cubec`
//! bytes and stored under the FNV-1a 64-bit hash of those bytes:
//!
//! ```text
//! <root>/CUBEREPO               # marker: "this directory is a repository"
//! <root>/objects/<hh>/<16 hex>.cubec
//! ```
//!
//! where `<hh>` is the first two hex digits of the id. Canonicalizing
//! before hashing means the same experiment uploaded in either format
//! (or twice) lands on the same object exactly once, and the id doubles
//! as an integrity check: the bytes on disk hash to their own name.
//!
//! The marker file lets tools that are handed a bare object path —
//! `cube repair` in particular — recognize the repository above it and
//! report the stable repository-relative path (`objects/ab/….cubec`)
//! in recovery provenance instead of whatever absolute or temporary
//! path the file happened to be read from.

use crate::cache::{lock_recover, LruCache};
use crate::error::ServeError;
use cube_store::{read_store, write_store, ColumnarExperiment};
use cube_xml::footer::check_footer;
use cube_xml::{CubeReader, ReadLimits};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Name of the marker file that identifies a repository root.
pub const REPO_MARKER: &str = "CUBEREPO";

/// Magic prefix of a `.cubec` container, re-exported for sniffing.
const STORE_MAGIC: [u8; 8] = [0x89, b'C', b'U', b'B', b'E', b'C', 0x0D, 0x0A];

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// FNV-1a 64-bit content id of canonical `.cubec` bytes, rendered as
/// 16 lowercase hex digits.
pub fn content_id(canonical: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in canonical {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("{hash:016x}")
}

fn valid_id(id: &str) -> bool {
    id.len() == 16
        && id
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// What [`Repository::ingest`] did with an upload.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Content id the experiment is stored under.
    pub id: String,
    /// `true` when the object was new, `false` when it already existed.
    pub created: bool,
    /// Provenance label of the ingested experiment.
    pub label: String,
}

/// An on-disk experiment repository plus a shared cache of open
/// [`ColumnarExperiment`] handles.
///
/// The handle cache is the server's third cache (besides derived
/// results and plan tables): opening a `.cubec` lazily decodes only
/// metadata, but even that is worth sharing across the requests that
/// hit the same operands. Handles are `Arc`-shared; severity pages
/// load on first touch and are then reused by every holder.
pub struct Repository {
    root: PathBuf,
    limits: ReadLimits,
    handles: Mutex<LruCache<String, Arc<ColumnarExperiment>>>,
}

impl Repository {
    /// Opens `root` as a repository, creating the directory layout and
    /// `CUBEREPO` marker if needed. Refuses a non-empty directory that
    /// is not already a repository, so a typo cannot scribble objects
    /// into an unrelated tree.
    pub fn open_or_init(
        root: impl Into<PathBuf>,
        limits: ReadLimits,
        handle_cache: usize,
    ) -> Result<Self, ServeError> {
        let root = root.into();
        let marker = root.join(REPO_MARKER);
        if root.exists() && !marker.exists() {
            let occupied = std::fs::read_dir(&root)
                .map_err(|e| ServeError::internal(format!("{}: {e}", root.display())))?
                .next()
                .is_some();
            if occupied {
                return Err(ServeError::bad_request(
                    "not_a_repository",
                    format!(
                        "{} is non-empty and has no {REPO_MARKER} marker",
                        root.display()
                    ),
                ));
            }
        }
        std::fs::create_dir_all(root.join("objects"))
            .map_err(|e| ServeError::internal(format!("{}: {e}", root.display())))?;
        if !marker.exists() {
            std::fs::write(&marker, "cube experiment repository v1\n")
                .map_err(|e| ServeError::internal(format!("{}: {e}", marker.display())))?;
        }
        Ok(Self {
            root,
            limits,
            handles: Mutex::new(LruCache::new(handle_cache)),
        })
    }

    /// The repository root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path of the object `id` would be stored at.
    pub fn object_path(&self, id: &str) -> PathBuf {
        self.root.join(Self::relative_object_path(id))
    }

    /// Repository-relative object path with `/` separators — the
    /// stable name used in recovery provenance.
    pub fn relative_object_path(id: &str) -> String {
        format!("objects/{}/{id}.cubec", &id[..2])
    }

    /// Ingests an uploaded experiment in either wire format, returning
    /// its content id. Uploads are parsed under the repository's
    /// [`ReadLimits`], canonicalized to `.cubec` bytes, and committed
    /// atomically (write-temp, rename) so a crashed upload can never
    /// leave a half-written object under a valid name.
    pub fn ingest(&self, bytes: &[u8]) -> Result<IngestOutcome, ServeError> {
        let exp = if bytes.starts_with(&STORE_MAGIC) {
            read_store(bytes, &self.limits)?
        } else {
            let text = std::str::from_utf8(bytes).map_err(|_| {
                ServeError::bad_request(
                    "bad_encoding",
                    "upload is neither a .cubec container nor UTF-8 XML",
                )
            })?;
            if check_footer(text).is_mismatch() {
                return Err(ServeError::bad_request(
                    "footer_mismatch",
                    "checksum footer does not match the document bytes",
                ));
            }
            CubeReader::with_limits(text, self.limits).read()?
        };
        let canonical = write_store(&exp);
        let id = content_id(&canonical);
        let label = exp.provenance().label();
        let path = self.object_path(&id);
        if path.exists() {
            return Ok(IngestOutcome {
                id,
                created: false,
                label,
            });
        }
        // object_path always nests objects/<hh>/ under the root, but a
        // worker must not die on the impossible case either.
        let Some(shard) = path.parent() else {
            return Err(ServeError::internal(format!(
                "object path {} has no parent directory",
                path.display()
            )));
        };
        std::fs::create_dir_all(shard)
            .map_err(|e| ServeError::internal(format!("{}: {e}", shard.display())))?;
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let commit = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&canonical)?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        if let Err(e) = commit {
            let _ = std::fs::remove_file(&tmp);
            return Err(ServeError::internal(format!("{}: {e}", path.display())));
        }
        Ok(IngestOutcome {
            id,
            created: true,
            label,
        })
    }

    /// Opens the experiment stored under `id`, sharing handles through
    /// the LRU cache. Unknown ids are a 404, malformed ids a 400.
    pub fn open(&self, id: &str) -> Result<Arc<ColumnarExperiment>, ServeError> {
        // LOCK ORDER: `handles` is a leaf lock (see cache::lock_recover)
        // — held only across cache bookkeeping, never while another
        // lock is taken. The open_with call below runs with the guard
        // held but touches only the filesystem, no other shared state.
        let mut handles = lock_recover(&self.handles);
        if let Some(handle) = handles.get(&id.to_string()) {
            return Ok(handle);
        }
        let path = self.locate(id)?;
        let handle = Arc::new(ColumnarExperiment::open_with(&path, &self.limits)?);
        handles.insert(id.to_string(), Arc::clone(&handle));
        Ok(handle)
    }

    /// Validates `id` and returns the object's path if it exists —
    /// without opening it, so callers like the lint endpoint can
    /// inspect objects too damaged for [`Repository::open`].
    pub fn locate(&self, id: &str) -> Result<PathBuf, ServeError> {
        if !valid_id(id) {
            return Err(ServeError::bad_request(
                "bad_id",
                format!("'{id}' is not a 16-digit lowercase hex experiment id"),
            ));
        }
        let path = self.object_path(id);
        if !path.exists() {
            return Err(ServeError::not_found(
                "unknown_experiment",
                format!("no experiment {id} in the repository"),
            ));
        }
        Ok(path)
    }

    /// Number of objects currently stored.
    pub fn count(&self) -> usize {
        let mut n = 0;
        let Ok(shards) = std::fs::read_dir(self.root.join("objects")) else {
            return 0;
        };
        for shard in shards.flatten() {
            if let Ok(objects) = std::fs::read_dir(shard.path()) {
                n += objects
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "cubec"))
                    .count();
            }
        }
        n
    }
}

/// If `path` lies inside a repository (an ancestor directory holds the
/// `CUBEREPO` marker), returns its repository-relative path with `/`
/// separators — e.g. `objects/ab/abcd0123….cubec`. `cube repair` uses
/// this as the recovery-provenance origin so salvage notes name the
/// stable object, not the absolute path of whatever mount or temp copy
/// was read.
pub fn repo_relative_origin(path: &Path) -> Option<String> {
    for ancestor in path.ancestors().skip(1) {
        if ancestor.join(REPO_MARKER).is_file() {
            let rel = path.strip_prefix(ancestor).ok()?;
            let parts: Vec<&str> = rel
                .components()
                .map(|c| c.as_os_str().to_str())
                .collect::<Option<_>>()?;
            return Some(parts.join("/"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{Experiment, ExperimentBuilder, RegionKind, Unit};

    fn sample(value: f64) -> Experiment {
        let mut b = ExperimentBuilder::new(format!("sample {value}"));
        let t = b.def_metric("time", Unit::Seconds, "total time", None);
        let m = b.def_module("main.c", "/src/main.c");
        let r = b.def_region("main", m, RegionKind::Function, 1, 9);
        let cs = b.def_call_site("main.c", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, root, ts[0], value);
        b.build().unwrap()
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cube-serve-repo-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ingest_is_content_addressed_across_formats() {
        let root = temp_root("xfmt");
        let repo = Repository::open_or_init(&root, ReadLimits::default(), 8).unwrap();
        let exp = sample(4.0);

        let xml = cube_xml::write_experiment(&exp);
        let a = repo.ingest(xml.as_bytes()).unwrap();
        assert!(a.created);
        assert!(valid_id(&a.id));

        let cubec = write_store(&exp);
        let b = repo.ingest(&cubec).unwrap();
        assert_eq!(a.id, b.id, "same experiment, same id in either format");
        assert!(!b.created);
        assert_eq!(repo.count(), 1);

        // the object's bytes hash to their own name
        let on_disk = std::fs::read(repo.object_path(&a.id)).unwrap();
        assert_eq!(content_id(&on_disk), a.id);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_shares_handles_and_404s_unknown_ids() {
        let root = temp_root("open");
        let repo = Repository::open_or_init(&root, ReadLimits::default(), 8).unwrap();
        let got = repo.ingest(&write_store(&sample(2.0))).unwrap();
        let h1 = repo.open(&got.id).unwrap();
        let h2 = repo.open(&got.id).unwrap();
        assert!(Arc::ptr_eq(&h1, &h2), "second open hits the handle cache");
        assert_eq!(h1.severity().unwrap()[0], 2.0);

        let missing = match repo.open("0123456789abcdef") {
            Ok(_) => panic!("expected a 404"),
            Err(e) => e,
        };
        assert_eq!(missing.status, 404);
        assert_eq!(missing.code, "unknown_experiment");
        let bad = match repo.open("nope") {
            Ok(_) => panic!("expected a 400"),
            Err(e) => e,
        };
        assert_eq!(bad.status, 400);
        assert_eq!(bad.code, "bad_id");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn refuses_non_empty_non_repository_directory() {
        let root = temp_root("busy");
        std::fs::write(root.join("unrelated.txt"), "hands off").unwrap();
        let err = match Repository::open_or_init(&root, ReadLimits::default(), 8) {
            Ok(_) => panic!("expected a refusal"),
            Err(e) => e,
        };
        assert_eq!(err.code, "not_a_repository");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn repo_relative_origin_walks_to_the_marker() {
        let root = temp_root("origin");
        let repo = Repository::open_or_init(&root, ReadLimits::default(), 8).unwrap();
        let got = repo.ingest(&write_store(&sample(7.0))).unwrap();
        let path = repo.object_path(&got.id);
        assert_eq!(
            repo_relative_origin(&path).unwrap(),
            Repository::relative_object_path(&got.id)
        );
        assert_eq!(
            repo_relative_origin(Path::new("/no/marker/here.cubec")),
            None
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
