//! Content-addressed, hash-sharded experiment repository.
//!
//! Every ingested experiment — whether uploaded as `.cube` XML or as a
//! `.cubec` binary container — is re-encoded to its canonical `.cubec`
//! bytes and stored under the FNV-1a 64-bit hash of those bytes:
//!
//! ```text
//! <root>/CUBEREPO               # marker: "this directory is a repository"
//! <root>/objects/<hh>/<16 hex>.cubec
//! ```
//!
//! where `<hh>` is the first two hex digits of the id. Canonicalizing
//! before hashing means the same experiment uploaded in either format
//! (or twice) lands on the same object exactly once, and the id doubles
//! as an integrity check: the bytes on disk hash to their own name.
//!
//! The marker file lets tools that are handed a bare object path —
//! `cube repair` in particular — recognize the repository above it and
//! report the stable repository-relative path (`objects/ab/….cubec`)
//! in recovery provenance instead of whatever absolute or temporary
//! path the file happened to be read from.

use crate::cache::{lock_recover, LruCache};
use crate::error::ServeError;
use crate::faults;
use crate::http::Deadline;
use cube_store::{read_store, write_store, ColumnarExperiment, StoreError};
use cube_xml::footer::check_footer;
use cube_xml::{CubeReader, ReadLimits};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Name of the marker file that identifies a repository root.
pub const REPO_MARKER: &str = "CUBEREPO";

/// Magic prefix of a `.cubec` container, re-exported for sniffing.
const STORE_MAGIC: [u8; 8] = [0x89, b'C', b'U', b'B', b'E', b'C', 0x0D, 0x0A];

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// FNV-1a 64-bit content id of canonical `.cubec` bytes, rendered as
/// 16 lowercase hex digits.
pub fn content_id(canonical: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in canonical {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("{hash:016x}")
}

fn valid_id(id: &str) -> bool {
    id.len() == 16
        && id
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// What [`Repository::ingest`] did with an upload.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Content id the experiment is stored under.
    pub id: String,
    /// `true` when the object was new, `false` when it already existed.
    pub created: bool,
    /// Provenance label of the ingested experiment.
    pub label: String,
}

/// An on-disk experiment repository plus a shared cache of open
/// [`ColumnarExperiment`] handles.
///
/// The handle cache is the server's third cache (besides derived
/// results and plan tables): opening a `.cubec` lazily decodes only
/// metadata, but even that is worth sharing across the requests that
/// hit the same operands. Handles are `Arc`-shared; severity pages
/// load on first touch and are then reused by every holder.
pub struct Repository {
    root: PathBuf,
    limits: ReadLimits,
    handles: Mutex<LruCache<String, Arc<ColumnarExperiment>>>,
    /// Attempts per object read before a transient failure counts as
    /// persistent (1 = no retry).
    retries: u32,
    /// Base of the exponential retry backoff in milliseconds.
    backoff_base_ms: u64,
    /// Consecutive failures before an id is quarantined (0 = off).
    breaker_threshold: u32,
    /// Per-object circuit-breaker state.
    breakers: Mutex<HashMap<String, Breaker>>,
    /// Orphaned ingest temp files removed by the startup sweep.
    swept: u64,
    /// Retry sleeps performed (for `/stats`).
    pub retries_performed: AtomicU64,
    /// Failed object-read attempts, including those later retried
    /// successfully (for `/stats` and `/healthz`).
    pub read_failures: AtomicU64,
}

/// Per-object breaker state: `consecutive` read failures trip the
/// quarantine; while tripped, every [`PROBE_EVERY`]-th arrival is let
/// through as a probe so recovery is detected without wall-clock
/// dependence (which would break deterministic chaos runs).
#[derive(Default)]
struct Breaker {
    consecutive: u32,
    arrivals: u32,
}

/// While an id is quarantined, one arrival in this many probes the
/// object; the rest are rejected `503 quarantined` without touching
/// the disk.
const PROBE_EVERY: u32 = 4;

impl Repository {
    /// Opens `root` as a repository, creating the directory layout and
    /// `CUBEREPO` marker if needed. Refuses a non-empty directory that
    /// is not already a repository, so a typo cannot scribble objects
    /// into an unrelated tree.
    pub fn open_or_init(
        root: impl Into<PathBuf>,
        limits: ReadLimits,
        handle_cache: usize,
    ) -> Result<Self, ServeError> {
        let root = root.into();
        let marker = root.join(REPO_MARKER);
        if root.exists() && !marker.exists() {
            let occupied = std::fs::read_dir(&root)
                .map_err(|e| ServeError::internal(format!("{}: {e}", root.display())))?
                .next()
                .is_some();
            if occupied {
                return Err(ServeError::bad_request(
                    "not_a_repository",
                    format!(
                        "{} is non-empty and has no {REPO_MARKER} marker",
                        root.display()
                    ),
                ));
            }
        }
        std::fs::create_dir_all(root.join("objects"))
            .map_err(|e| ServeError::internal(format!("{}: {e}", root.display())))?;
        if !marker.exists() {
            std::fs::write(&marker, "cube experiment repository v1\n")
                .map_err(|e| ServeError::internal(format!("{}: {e}", marker.display())))?;
        }
        let swept = sweep_temp_files(&root);
        Ok(Self {
            root,
            limits,
            handles: Mutex::new(LruCache::new(handle_cache)),
            retries: 1,
            backoff_base_ms: 0,
            breaker_threshold: 0,
            breakers: Mutex::new(HashMap::new()),
            swept,
            retries_performed: AtomicU64::new(0),
            read_failures: AtomicU64::new(0),
        })
    }

    /// Configures the retry/backoff policy and circuit breaker the
    /// guarded read paths use. The library default (`1, 0, 0`) means
    /// no retries and no breaker — plain PR-7 behavior; the server
    /// applies its [`crate::ServeConfig`] here at startup.
    pub fn set_resilience(&mut self, retries: u32, backoff_base_ms: u64, breaker_threshold: u32) {
        self.retries = retries.max(1);
        self.backoff_base_ms = backoff_base_ms;
        self.breaker_threshold = breaker_threshold;
    }

    /// Orphaned ingest temp files removed by the startup sweep.
    pub fn swept_temp_files(&self) -> u64 {
        self.swept
    }

    /// Number of object ids currently quarantined by the breaker.
    pub fn open_breakers(&self) -> usize {
        if self.breaker_threshold == 0 {
            return 0;
        }
        // LOCK ORDER: `breakers` is a leaf lock — held only across the
        // count, never while another lock is taken.
        lock_recover(&self.breakers)
            .values()
            .filter(|b| b.consecutive >= self.breaker_threshold)
            .count()
    }

    /// The repository root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path of the object `id` would be stored at.
    pub fn object_path(&self, id: &str) -> PathBuf {
        self.root.join(Self::relative_object_path(id))
    }

    /// Repository-relative object path with `/` separators — the
    /// stable name used in recovery provenance.
    pub fn relative_object_path(id: &str) -> String {
        format!("objects/{}/{id}.cubec", &id[..2])
    }

    /// Ingests an uploaded experiment in either wire format, returning
    /// its content id. Uploads are parsed under the repository's
    /// [`ReadLimits`], canonicalized to `.cubec` bytes, and committed
    /// atomically (write-temp, rename) so a crashed upload can never
    /// leave a half-written object under a valid name.
    pub fn ingest(&self, bytes: &[u8]) -> Result<IngestOutcome, ServeError> {
        let exp = if bytes.starts_with(&STORE_MAGIC) {
            read_store(bytes, &self.limits)?
        } else {
            let text = std::str::from_utf8(bytes).map_err(|_| {
                ServeError::bad_request(
                    "bad_encoding",
                    "upload is neither a .cubec container nor UTF-8 XML",
                )
            })?;
            if check_footer(text).is_mismatch() {
                return Err(ServeError::bad_request(
                    "footer_mismatch",
                    "checksum footer does not match the document bytes",
                ));
            }
            CubeReader::with_limits(text, self.limits).read()?
        };
        let canonical = write_store(&exp);
        let id = content_id(&canonical);
        let label = exp.provenance().label();
        let path = self.object_path(&id);
        if path.exists() {
            return Ok(IngestOutcome {
                id,
                created: false,
                label,
            });
        }
        // object_path always nests objects/<hh>/ under the root, but a
        // worker must not die on the impossible case either.
        let Some(shard) = path.parent() else {
            return Err(ServeError::internal(format!(
                "object path {} has no parent directory",
                path.display()
            )));
        };
        std::fs::create_dir_all(shard)
            .map_err(|e| ServeError::internal(format!("{}: {e}", shard.display())))?;
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let commit = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&canonical)?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        if let Err(e) = commit {
            let _ = std::fs::remove_file(&tmp);
            return Err(ServeError::internal(format!("{}: {e}", path.display())));
        }
        Ok(IngestOutcome {
            id,
            created: true,
            label,
        })
    }

    /// Opens the experiment stored under `id`, sharing handles through
    /// the LRU cache. Unknown ids are a 404, malformed ids a 400.
    /// Equivalent to [`Repository::open_within`] with no deadline.
    pub fn open(&self, id: &str) -> Result<Arc<ColumnarExperiment>, ServeError> {
        self.open_within(id, &Deadline::none())
    }

    /// Opens `id` under the repository's resilience policy: a
    /// quarantined id is rejected `503` up front, transient read
    /// failures (I/O errors, checksum mismatches) are retried with
    /// jittered exponential backoff inside `deadline`, and persistent
    /// transient failure maps to `503 object_unreadable` instead of a
    /// one-off `500`.
    pub fn open_within(
        &self,
        id: &str,
        deadline: &Deadline,
    ) -> Result<Arc<ColumnarExperiment>, ServeError> {
        {
            // LOCK ORDER: `handles` is a leaf lock (see
            // cache::lock_recover) — held only across cache
            // bookkeeping, dropped before any disk work or other lock.
            let mut handles = lock_recover(&self.handles);
            if let Some(handle) = handles.get(&id.to_string()) {
                return Ok(handle);
            }
        }
        let path = self.locate(id)?;
        self.admit_read(id)?;
        let handle = self
            .with_retries(id, &format!("opening experiment {id}"), deadline, || {
                ColumnarExperiment::open_with(&path, &self.limits)
            })
            .map(Arc::new)?;
        lock_recover(&self.handles).insert(id.to_string(), Arc::clone(&handle));
        Ok(handle)
    }

    /// Loads (and caches) `handle`'s severity pages under the same
    /// resilience policy as [`Repository::open_within`]. The lazy
    /// severity read is the other disk boundary an `/eval` crosses;
    /// guarding it here keeps the batch engine's infallible
    /// `severity_values()` from ever seeing an unloaded operand.
    pub fn ensure_severity(
        &self,
        id: &str,
        handle: &ColumnarExperiment,
        deadline: &Deadline,
    ) -> Result<(), ServeError> {
        if handle.is_loaded() {
            return Ok(());
        }
        self.admit_read(id)?;
        self.with_retries(id, &format!("reading severity of {id}"), deadline, || {
            handle.severity().map(|_| ())
        })
    }

    /// Breaker admission: lets the read through unless `id` is
    /// quarantined, in which case only every [`PROBE_EVERY`]-th
    /// arrival proceeds (as the probe that can close the breaker).
    fn admit_read(&self, id: &str) -> Result<(), ServeError> {
        if self.breaker_threshold == 0 {
            return Ok(());
        }
        // LOCK ORDER: `breakers` is a leaf lock — bookkeeping only.
        let mut breakers = lock_recover(&self.breakers);
        let state = breakers.entry(id.to_string()).or_default();
        if state.consecutive < self.breaker_threshold {
            return Ok(());
        }
        state.arrivals = state.arrivals.wrapping_add(1);
        if state.arrivals.is_multiple_of(PROBE_EVERY) {
            return Ok(());
        }
        Err(ServeError::unavailable(
            "quarantined",
            format!(
                "experiment {id} is quarantined after {} consecutive read failures; retry later",
                state.consecutive
            ),
        ))
    }

    /// Records a read outcome for the breaker: success closes it,
    /// failure counts toward (or extends) the quarantine.
    fn record_read(&self, id: &str, ok: bool) {
        if self.breaker_threshold == 0 {
            return;
        }
        // LOCK ORDER: `breakers` is a leaf lock — bookkeeping only.
        let mut breakers = lock_recover(&self.breakers);
        let state = breakers.entry(id.to_string()).or_default();
        if ok {
            state.consecutive = 0;
        } else {
            state.consecutive = state.consecutive.saturating_add(1);
        }
    }

    /// Runs `read` with the retry/backoff policy: transient failures
    /// (I/O, checksum) are retried up to the configured attempt count
    /// with exponential backoff plus deterministic jitter, never
    /// sleeping past `deadline`. Outcomes feed the breaker.
    fn with_retries<T>(
        &self,
        id: &str,
        what: &str,
        deadline: &Deadline,
        mut read: impl FnMut() -> Result<T, StoreError>,
    ) -> Result<T, ServeError> {
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let e = match read() {
                Ok(v) => {
                    self.record_read(id, true);
                    return Ok(v);
                }
                Err(e) => e,
            };
            self.read_failures.fetch_add(1, Ordering::Relaxed);
            let transient = matches!(e, StoreError::Io { .. } | StoreError::Checksum { .. });
            if !transient {
                // Structural damage does not heal on retry; surface it
                // with its ordinary mapping (400/413/422).
                self.record_read(id, false);
                return Err(e.into());
            }
            if deadline.expired() {
                self.record_read(id, false);
                return Err(ServeError::deadline(what));
            }
            if attempt >= self.retries {
                self.record_read(id, false);
                return Err(ServeError::unavailable(
                    "object_unreadable",
                    format!("{what} failed after {attempt} attempts: {e}"),
                ));
            }
            self.retries_performed.fetch_add(1, Ordering::Relaxed);
            let base = self
                .backoff_base_ms
                .saturating_mul(1 << (attempt - 1).min(6));
            let mut pause = Duration::from_millis(base + faults::jitter_ms(attempt.into(), base));
            if let Some(remaining) = deadline.remaining() {
                pause = pause.min(remaining);
            }
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
    }

    /// Validates `id` and returns the object's path if it exists —
    /// without opening it, so callers like the lint endpoint can
    /// inspect objects too damaged for [`Repository::open`].
    pub fn locate(&self, id: &str) -> Result<PathBuf, ServeError> {
        if !valid_id(id) {
            return Err(ServeError::bad_request(
                "bad_id",
                format!("'{id}' is not a 16-digit lowercase hex experiment id"),
            ));
        }
        let path = self.object_path(id);
        if !path.exists() {
            return Err(ServeError::not_found(
                "unknown_experiment",
                format!("no experiment {id} in the repository"),
            ));
        }
        Ok(path)
    }

    /// Number of objects currently stored.
    pub fn count(&self) -> usize {
        let mut n = 0;
        let Ok(shards) = std::fs::read_dir(self.root.join("objects")) else {
            return 0;
        };
        for shard in shards.flatten() {
            if let Ok(objects) = std::fs::read_dir(shard.path()) {
                n += objects
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "cubec"))
                    .count();
            }
        }
        n
    }
}

/// Removes `.tmp-*` files under `objects/` — the leftovers of uploads
/// that crashed between temp-write and rename. Runs once at startup
/// (a live server's temps are always renamed or removed by the same
/// request that created them), returns how many were swept.
fn sweep_temp_files(root: &Path) -> u64 {
    let mut swept = 0u64;
    let Ok(shards) = std::fs::read_dir(root.join("objects")) else {
        return 0;
    };
    for shard in shards.flatten() {
        let Ok(entries) = std::fs::read_dir(shard.path()) else {
            continue;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let is_temp = name.to_str().is_some_and(|n| n.starts_with(".tmp-"));
            if is_temp && std::fs::remove_file(entry.path()).is_ok() {
                swept += 1;
            }
        }
    }
    swept
}

/// If `path` lies inside a repository (an ancestor directory holds the
/// `CUBEREPO` marker), returns its repository-relative path with `/`
/// separators — e.g. `objects/ab/abcd0123….cubec`. `cube repair` uses
/// this as the recovery-provenance origin so salvage notes name the
/// stable object, not the absolute path of whatever mount or temp copy
/// was read.
pub fn repo_relative_origin(path: &Path) -> Option<String> {
    for ancestor in path.ancestors().skip(1) {
        if ancestor.join(REPO_MARKER).is_file() {
            let rel = path.strip_prefix(ancestor).ok()?;
            let parts: Vec<&str> = rel
                .components()
                .map(|c| c.as_os_str().to_str())
                .collect::<Option<_>>()?;
            return Some(parts.join("/"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{Experiment, ExperimentBuilder, RegionKind, Unit};

    fn sample(value: f64) -> Experiment {
        let mut b = ExperimentBuilder::new(format!("sample {value}"));
        let t = b.def_metric("time", Unit::Seconds, "total time", None);
        let m = b.def_module("main.c", "/src/main.c");
        let r = b.def_region("main", m, RegionKind::Function, 1, 9);
        let cs = b.def_call_site("main.c", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, root, ts[0], value);
        b.build().unwrap()
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cube-serve-repo-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ingest_is_content_addressed_across_formats() {
        let root = temp_root("xfmt");
        let repo = Repository::open_or_init(&root, ReadLimits::default(), 8).unwrap();
        let exp = sample(4.0);

        let xml = cube_xml::write_experiment(&exp);
        let a = repo.ingest(xml.as_bytes()).unwrap();
        assert!(a.created);
        assert!(valid_id(&a.id));

        let cubec = write_store(&exp);
        let b = repo.ingest(&cubec).unwrap();
        assert_eq!(a.id, b.id, "same experiment, same id in either format");
        assert!(!b.created);
        assert_eq!(repo.count(), 1);

        // the object's bytes hash to their own name
        let on_disk = std::fs::read(repo.object_path(&a.id)).unwrap();
        assert_eq!(content_id(&on_disk), a.id);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_shares_handles_and_404s_unknown_ids() {
        let root = temp_root("open");
        let repo = Repository::open_or_init(&root, ReadLimits::default(), 8).unwrap();
        let got = repo.ingest(&write_store(&sample(2.0))).unwrap();
        let h1 = repo.open(&got.id).unwrap();
        let h2 = repo.open(&got.id).unwrap();
        assert!(Arc::ptr_eq(&h1, &h2), "second open hits the handle cache");
        assert_eq!(h1.severity().unwrap()[0], 2.0);

        let missing = match repo.open("0123456789abcdef") {
            Ok(_) => panic!("expected a 404"),
            Err(e) => e,
        };
        assert_eq!(missing.status, 404);
        assert_eq!(missing.code, "unknown_experiment");
        let bad = match repo.open("nope") {
            Ok(_) => panic!("expected a 400"),
            Err(e) => e,
        };
        assert_eq!(bad.status, 400);
        assert_eq!(bad.code, "bad_id");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn refuses_non_empty_non_repository_directory() {
        let root = temp_root("busy");
        std::fs::write(root.join("unrelated.txt"), "hands off").unwrap();
        let err = match Repository::open_or_init(&root, ReadLimits::default(), 8) {
            Ok(_) => panic!("expected a refusal"),
            Err(e) => e,
        };
        assert_eq!(err.code, "not_a_repository");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn startup_sweep_removes_orphaned_temp_files() {
        let root = temp_root("sweep");
        {
            let repo = Repository::open_or_init(&root, ReadLimits::default(), 8).unwrap();
            assert_eq!(repo.swept_temp_files(), 0);
            repo.ingest(&write_store(&sample(3.0))).unwrap();
        }
        // Simulate two crashed uploads: temps that never got renamed.
        let shard = std::fs::read_dir(root.join("objects"))
            .unwrap()
            .flatten()
            .next()
            .unwrap()
            .path();
        std::fs::write(shard.join(".tmp-999-0"), b"half an upload").unwrap();
        std::fs::write(shard.join(".tmp-999-1"), b"").unwrap();

        let repo = Repository::open_or_init(&root, ReadLimits::default(), 8).unwrap();
        assert_eq!(repo.swept_temp_files(), 2);
        assert!(!shard.join(".tmp-999-0").exists());
        assert_eq!(repo.count(), 1, "real objects are untouched");
        std::fs::remove_dir_all(&root).unwrap();
    }

    fn open_err(repo: &Repository, id: &str) -> ServeError {
        match repo.open(id) {
            Ok(_) => panic!("expected {id} to fail to open"),
            Err(e) => e,
        }
    }

    #[test]
    fn breaker_quarantines_after_consecutive_failures() {
        let root = temp_root("breaker");
        let mut repo = Repository::open_or_init(&root, ReadLimits::default(), 0).unwrap();
        repo.set_resilience(1, 0, 2);
        // A validly named object whose bytes are not a .cubec: every
        // open fails structurally (non-transient, so no retries).
        let id = "00aabbccddeeff00";
        let path = repo.object_path(id);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"not a store file").unwrap();

        for _ in 0..2 {
            assert_eq!(open_err(&repo, id).code, "bad_store");
        }
        assert_eq!(repo.open_breakers(), 1);
        // Tripped: arrivals 1..3 are rejected without touching disk,
        // the 4th probes (and fails structurally again).
        for _ in 0..3 {
            let e = open_err(&repo, id);
            assert_eq!(e.status, 503);
            assert_eq!(e.code, "quarantined");
        }
        assert_eq!(
            open_err(&repo, id).code,
            "bad_store",
            "every 4th arrival probes"
        );

        // Repair the object in place; the next probe closes the
        // breaker and normal service resumes.
        std::fs::write(&path, write_store(&sample(6.0))).unwrap();
        for _ in 0..3 {
            assert_eq!(open_err(&repo, id).code, "quarantined");
        }
        assert!(repo.open(id).is_ok(), "the probe closes the breaker");
        assert_eq!(repo.open_breakers(), 0);
        assert!(repo.open(id).is_ok());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn repo_relative_origin_walks_to_the_marker() {
        let root = temp_root("origin");
        let repo = Repository::open_or_init(&root, ReadLimits::default(), 8).unwrap();
        let got = repo.ingest(&write_store(&sample(7.0))).unwrap();
        let path = repo.object_path(&got.id);
        assert_eq!(
            repo_relative_origin(&path).unwrap(),
            Repository::relative_object_path(&got.id)
        );
        assert_eq!(
            repo_relative_origin(Path::new("/no/marker/here.cubec")),
            None
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
