//! Server-side error type: every failure maps to an HTTP status and a
//! stable machine-readable code, so clients (and the CI serve gate)
//! can assert on behavior without parsing prose.

use cube_algebra::{AlgebraError, ExprParseError};
use cube_store::StoreError;
use cube_xml::XmlError;
use std::fmt;

/// A request- or repository-level failure with its wire representation.
///
/// `code` is stable and machine-checkable; `message` is for humans.
/// Expression-parse failures carry the parser's own `P00x` code so the
/// HTTP surface and the library surface agree on error identity.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// HTTP status the error renders as.
    pub status: u16,
    /// Stable machine-readable code, e.g. `unknown_experiment`, `P004`.
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// Optional pre-rendered JSON fragment appended to the wire body
    /// as a `"diagnostics"` field — the static checker's `A0xx` array
    /// for `/eval` pre-flight rejections. `None` for ordinary errors.
    pub details: Option<String>,
}

impl ServeError {
    /// An error with an explicit status and code.
    pub fn with_status(status: u16, code: &str, message: impl Into<String>) -> Self {
        Self {
            status,
            code: code.to_string(),
            message: message.into(),
            details: None,
        }
    }

    /// A 400 with an explicit code.
    pub fn bad_request(code: &str, message: impl Into<String>) -> Self {
        Self::with_status(400, code, message)
    }

    /// A 404 for a missing experiment or route.
    pub fn not_found(code: &str, message: impl Into<String>) -> Self {
        Self::with_status(404, code, message)
    }

    /// A 500 for repository or I/O failures.
    pub fn internal(message: impl Into<String>) -> Self {
        Self::with_status(500, "internal", message)
    }

    /// A 503 `unavailable`-family error: the object (or the whole
    /// repository) could not be read even after retries, or is
    /// quarantined by the circuit breaker. Clients should back off and
    /// retry later.
    pub fn unavailable(code: &str, message: impl Into<String>) -> Self {
        Self::with_status(503, code, message)
    }

    /// A 504 `deadline_exceeded`: the request's time budget ran out
    /// during the named phase. The work was abandoned, not completed.
    pub fn deadline(phase: &str) -> Self {
        Self::with_status(
            504,
            "deadline_exceeded",
            format!("request deadline expired while {phase}"),
        )
    }

    /// Attaches a pre-rendered JSON `diagnostics` array to the error.
    #[must_use]
    pub fn with_details(mut self, details: String) -> Self {
        self.details = Some(details);
        self
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ({})", self.status, self.message, self.code)
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        let (status, code) = match &e {
            StoreError::Format { .. } => (400, "bad_store"),
            StoreError::Checksum { .. } => (400, "store_checksum"),
            StoreError::Limit { .. } => (413, "limit"),
            StoreError::Model(_) => (422, "model"),
            StoreError::Io { .. } => (500, "io"),
        };
        Self::with_status(status, code, e.to_string())
    }
}

impl From<XmlError> for ServeError {
    fn from(e: XmlError) -> Self {
        let (status, code) = match &e {
            XmlError::Limit { .. } => (413, "limit"),
            XmlError::Model(_) => (422, "model"),
            XmlError::Io { .. } => (500, "io"),
            _ => (400, "bad_xml"),
        };
        Self::with_status(status, code, e.to_string())
    }
}

impl From<ExprParseError> for ServeError {
    fn from(e: ExprParseError) -> Self {
        Self::with_status(400, e.code, e.to_string())
    }
}

impl From<AlgebraError> for ServeError {
    fn from(e: AlgebraError) -> Self {
        Self::with_status(422, "algebra", e.to_string())
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::internal(e.to_string())
    }
}
