//! Deterministic fault schedule driving the [`cube_xml::faults`] seam.
//!
//! A [`FaultPlan`] is parsed from the `CUBE_FAULTS` spec grammar (see
//! `docs/FAULTS.md`):
//!
//! ```text
//! seed=42,read_error=0.05,torn_read=0.05,checksum_flip=0.02,latency=25@0.1
//! ```
//!
//! Every field except `seed` is optional and defaults to off. The plan
//! is *activated* process-wide with [`activate`]; the first activation
//! installs the hook into [`cube_xml::faults`], and [`deactivate`]
//! makes it inert again (the hook itself can never be uninstalled, so
//! tests sharing a binary can take turns). With no plan active the
//! read path costs one relaxed atomic load per file read.
//!
//! Decisions are drawn from a splitmix64 stream over
//! `(seed, draw counter)`, so a fixed seed yields a reproducible fault
//! schedule regardless of wall clock — the property the chaos CI gate
//! relies on. Injected faults are counted per kind; [`counters`]
//! snapshots them for `/stats`.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::cache::lock_recover;

/// A parsed fault schedule: per-read probabilities for each fault kind
/// plus the seed that makes the schedule reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the splitmix64 decision stream.
    pub seed: u64,
    /// Probability in `[0,1]` that a read fails with an injected
    /// `std::io::Error` (a *transient* fault: retried by the server).
    pub read_error: f64,
    /// Probability that the tail half of the read buffer is zeroed,
    /// tripping the reader's own CRC machinery downstream.
    pub torn_read: f64,
    /// Probability that one byte of the buffer is flipped, likewise
    /// caught by the real checksum verification.
    pub checksum_flip: f64,
    /// Artificial latency added to a read when the `latency` draw hits.
    pub latency_ms: u64,
    /// Probability of the latency fault.
    pub latency_p: f64,
}

impl FaultPlan {
    /// An all-off plan with the given seed.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            read_error: 0.0,
            torn_read: 0.0,
            checksum_flip: 0.0,
            latency_ms: 0,
            latency_p: 0.0,
        }
    }

    /// Parses the `CUBE_FAULTS` spec grammar
    /// (`key=value` pairs separated by commas; `latency=MS@P`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::quiet(0);
        let mut saw_seed = false;
        for field in spec.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault spec field `{field}` is not key=value"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = parse_u64(value, "seed")?;
                    saw_seed = true;
                }
                "read_error" => plan.read_error = parse_prob(value, "read_error")?,
                "torn_read" => plan.torn_read = parse_prob(value, "torn_read")?,
                "checksum_flip" => plan.checksum_flip = parse_prob(value, "checksum_flip")?,
                "latency" => {
                    let (ms, p) = value.split_once('@').ok_or_else(|| {
                        format!("latency must be MS@P (milliseconds at probability), got `{value}`")
                    })?;
                    plan.latency_ms = parse_u64(ms, "latency milliseconds")?;
                    plan.latency_p = parse_prob(p, "latency probability")?;
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        if !saw_seed {
            return Err("fault spec must set seed=N (the schedule must be reproducible)".into());
        }
        Ok(plan)
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.trim()
        .parse::<u64>()
        .map_err(|_| format!("{what} must be a non-negative integer, got `{s}`"))
}

fn parse_prob(s: &str, what: &str) -> Result<f64, String> {
    let p: f64 = s
        .trim()
        .parse()
        .map_err(|_| format!("{what} must be a number in [0,1], got `{s}`"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{what} must be in [0,1], got `{s}`"));
    }
    Ok(p)
}

// ---------------------------------------------------------------------------
// process-wide schedule state
// ---------------------------------------------------------------------------

/// Fast-path gate: checked before the plan mutex is ever touched.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// The active plan. Leaf lock: nothing else is acquired while held.
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
/// Monotone draw counter feeding the splitmix64 decision stream.
static DRAWS: AtomicU64 = AtomicU64::new(0);

static INJECTED_IO_ERRORS: AtomicU64 = AtomicU64::new(0);
static INJECTED_TORN_READS: AtomicU64 = AtomicU64::new(0);
static INJECTED_CHECKSUM_FLIPS: AtomicU64 = AtomicU64::new(0);
static INJECTED_LATENCIES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of how many faults of each kind have been injected since
/// the process started (across all activations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Injected `std::io::Error` read failures.
    pub io_errors: u64,
    /// Buffers whose tail was zeroed.
    pub torn_reads: u64,
    /// Buffers with one byte flipped.
    pub checksum_flips: u64,
    /// Reads delayed by artificial latency.
    pub latencies: u64,
}

/// Snapshots the fault-injection counters.
pub fn counters() -> FaultCounters {
    FaultCounters {
        io_errors: INJECTED_IO_ERRORS.load(Ordering::Relaxed),
        torn_reads: INJECTED_TORN_READS.load(Ordering::Relaxed),
        checksum_flips: INJECTED_CHECKSUM_FLIPS.load(Ordering::Relaxed),
        latencies: INJECTED_LATENCIES.load(Ordering::Relaxed),
    }
}

/// Whether a fault plan is currently active.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Activates `plan` process-wide. The first call installs the hook
/// into [`cube_xml::faults`]; later calls just swap the plan. Returns
/// `false` if another component beat this module to the global hook,
/// in which case no faults will fire.
pub fn activate(plan: FaultPlan) -> bool {
    *lock_recover(&PLAN) = Some(plan);
    if !cube_xml::faults::installed() && !cube_xml::faults::install(Box::new(hook)) {
        // Lost an install race with a foreign hook: stay inert.
        *lock_recover(&PLAN) = None;
        return false;
    }
    ACTIVE.store(true, Ordering::SeqCst);
    true
}

/// Deactivates the fault schedule; reads go back to the one-branch
/// fast path. The draw counter and fault counters are left alone so a
/// later activation continues the same decision stream.
pub fn deactivate() {
    ACTIVE.store(false, Ordering::SeqCst);
    *lock_recover(&PLAN) = None;
}

/// The hook body handed to [`cube_xml::faults::install`]: decides,
/// per read, which faults (if any) fire at this `site`.
fn hook(site: &str, buf: &mut [u8]) -> Option<io::Error> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let plan = (*lock_recover(&PLAN))?;
    // Latency first, so a delayed read can still fail afterwards —
    // the order a slow-then-dead disk produces.
    if plan.latency_p > 0.0 && unit_draw(plan.seed) < plan.latency_p {
        INJECTED_LATENCIES.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(plan.latency_ms));
    }
    if plan.read_error > 0.0 && unit_draw(plan.seed) < plan.read_error {
        INJECTED_IO_ERRORS.fetch_add(1, Ordering::Relaxed);
        return Some(io::Error::other(format!("injected read fault at {site}")));
    }
    if plan.torn_read > 0.0 && unit_draw(plan.seed) < plan.torn_read && !buf.is_empty() {
        INJECTED_TORN_READS.fetch_add(1, Ordering::Relaxed);
        let mid = buf.len() / 2;
        for b in &mut buf[mid..] {
            *b = 0;
        }
    }
    if plan.checksum_flip > 0.0 && unit_draw(plan.seed) < plan.checksum_flip && !buf.is_empty() {
        INJECTED_CHECKSUM_FLIPS.fetch_add(1, Ordering::Relaxed);
        let at = (next_draw(plan.seed) as usize) % buf.len();
        buf[at] ^= 0xFF;
    }
    None
}

// ---------------------------------------------------------------------------
// deterministic decision stream
// ---------------------------------------------------------------------------

/// splitmix64 finalizer: a high-quality 64-bit mix of its input.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Next raw 64-bit value of the process-wide decision stream for
/// `seed`. The stream position is a shared atomic, so concurrent
/// readers interleave — the *set* of decisions for a seed is fixed
/// even though their assignment to reads depends on scheduling.
fn next_draw(seed: u64) -> u64 {
    let n = DRAWS.fetch_add(1, Ordering::Relaxed);
    splitmix64(seed ^ n.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// Next decision draw mapped to `[0,1)`.
fn unit_draw(seed: u64) -> f64 {
    (next_draw(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic backoff jitter in `[0,cap_ms]` milliseconds, derived
/// from the active plan's seed (or a fixed constant when no plan is
/// active, keeping retry timing reproducible in tests either way).
pub fn jitter_ms(salt: u64, cap_ms: u64) -> u64 {
    if cap_ms == 0 {
        return 0;
    }
    let seed = match *lock_recover(&PLAN) {
        Some(p) => p.seed,
        None => 0x5EED_0F0F_F00D,
    };
    splitmix64(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % (cap_ms + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "seed=42,read_error=0.05,torn_read=0.1,checksum_flip=0.02,latency=25@0.5",
        )
        .unwrap();
        assert_eq!(p.seed, 42);
        assert!((p.read_error - 0.05).abs() < 1e-12);
        assert!((p.torn_read - 0.1).abs() < 1e-12);
        assert!((p.checksum_flip - 0.02).abs() < 1e-12);
        assert_eq!(p.latency_ms, 25);
        assert!((p.latency_p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parse_requires_seed() {
        assert!(FaultPlan::parse("read_error=0.5").is_err());
    }

    #[test]
    fn parse_rejects_bad_fields() {
        assert!(FaultPlan::parse("seed=1,read_error=1.5").is_err());
        assert!(FaultPlan::parse("seed=1,latency=10").is_err());
        assert!(FaultPlan::parse("seed=1,bogus=1").is_err());
        assert!(FaultPlan::parse("seed=1,torn_read").is_err());
        assert!(FaultPlan::parse("seed=-3").is_err());
    }

    #[test]
    fn parse_seed_only_is_quiet() {
        assert_eq!(FaultPlan::parse("seed=7").unwrap(), FaultPlan::quiet(7));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for salt in 0..64 {
            let a = jitter_ms(salt, 10);
            assert!(a <= 10);
            assert_eq!(a, jitter_ms(salt, 10));
        }
        assert_eq!(jitter_ms(99, 0), 0);
    }

    #[test]
    fn splitmix_stream_is_reproducible() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
    }
}
