//! Minimal HTTP/1.1 framing over a [`std::net::TcpStream`].
//!
//! The server speaks exactly the subset its API needs: one request per
//! connection (`Connection: close` on every response), `Content-Length`
//! bodies only (no chunked encoding), ASCII request lines. Hand-rolling
//! this keeps the dependency count at zero and the attack surface
//! auditable: the parser below is the *entire* network-facing input
//! path ahead of the format readers, which carry their own
//! [`cube_xml::ReadLimits`].

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `PUT`, `POST`).
    pub method: String,
    /// Request path, e.g. `/experiments/0123456789abcdef/stats`.
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed before sending a complete request.
    Closed,
    /// The bytes are not a request this server understands.
    Malformed(String),
    /// The declared body exceeds the configured maximum.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured cap.
        limit: usize,
    },
    /// Transport failure (includes read timeouts).
    Io(std::io::Error),
}

/// Reads one request from `stream`, enforcing [`MAX_HEAD_BYTES`] and
/// the caller's body cap *before* buffering the body.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let body_start = loop {
        if let Some(end) = find_head_end(&head) {
            break end;
        }
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::Malformed(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return if head.is_empty() {
                Err(HttpError::Closed)
            } else {
                Err(HttpError::Malformed("connection closed mid-request".into()))
            };
        }
        head.extend_from_slice(&chunk[..n]);
    };

    let (method, path, headers) = parse_head(&head[..body_start - 4])?;
    let declared = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length '{v}'")))?,
        None => 0,
    };
    if declared > max_body {
        return Err(HttpError::BodyTooLarge {
            declared,
            limit: max_body,
        });
    }

    let mut body = head[body_start..].to_vec();
    if body.len() > declared {
        return Err(HttpError::Malformed(
            "more body bytes than content-length declares".into(),
        ));
    }
    while body.len() < declared {
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > declared {
            return Err(HttpError::Malformed(
                "more body bytes than content-length declares".into(),
            ));
        }
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parsed request line + headers: `(method, path, headers)`.
type Head = (String, String, Vec<(String, String)>);

fn parse_head(head: &[u8]) -> Result<Head, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line '{request_line}'"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("bad version '{version}'")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// A response ready to serialize: status, content type, extra headers,
/// body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Additional headers (e.g. `X-Cache`).
    pub extra: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A response with explicit content type and raw bytes.
    pub fn bytes(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type,
            extra: Vec::new(),
            body,
        }
    }

    /// Adds an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra.push((name, value.into()));
        self
    }
}

/// Serializes `resp` onto `stream` with `Connection: close`.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_method_path_headers() {
        let (m, p, h) =
            parse_head(b"PUT /experiments HTTP/1.1\r\nContent-Length: 3\r\nX-Foo: bar").unwrap();
        assert_eq!(m, "PUT");
        assert_eq!(p, "/experiments");
        assert_eq!(h[0], ("content-length".into(), "3".into()));
        assert_eq!(h[1], ("x-foo".into(), "bar".into()));
    }

    #[test]
    fn rejects_garbage_request_lines() {
        assert!(parse_head(b"nonsense").is_err());
        assert!(parse_head(b"GET HTTP/1.1").is_err());
        assert!(parse_head(b"GET noslash HTTP/1.1").is_err());
        assert!(parse_head(b"GET / SPDY/99").is_err());
    }

    #[test]
    fn finds_head_end_only_on_blank_line() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
