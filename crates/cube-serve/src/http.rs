//! Minimal HTTP/1.1 framing over a [`std::net::TcpStream`].
//!
//! The server speaks exactly the subset its API needs: one request per
//! connection (`Connection: close` on every response), `Content-Length`
//! bodies only (no chunked encoding), ASCII request lines. Hand-rolling
//! this keeps the dependency count at zero and the attack surface
//! auditable: the parser below is the *entire* network-facing input
//! path ahead of the format readers, which carry their own
//! [`cube_xml::ReadLimits`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// An absolute time budget a request must finish within.
///
/// [`Deadline::none`] never expires; everything else is an
/// [`Instant`] after which [`Deadline::expired`] turns true and the
/// server answers `504 deadline_exceeded` instead of working on. The
/// budget is *checked* at phase boundaries (header read, body read,
/// operand open, evaluation) and *enforced* against stalled sockets by
/// re-arming the read timeout to the remaining budget.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now; `0` means unlimited.
    pub fn after_ms(ms: u64) -> Self {
        Self {
            at: (ms > 0).then(|| Instant::now() + Duration::from_millis(ms)),
        }
    }

    /// The deadline that never expires.
    pub fn none() -> Self {
        Self { at: None }
    }

    /// The earlier of the two deadlines.
    pub fn sooner(self, other: Deadline) -> Deadline {
        Self {
            at: match (self.at, other.at) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Budget left: `None` for unlimited, `Some(ZERO)` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Whether the budget is gone.
    pub fn expired(&self) -> bool {
        matches!(self.remaining(), Some(d) if d.is_zero())
    }
}

/// Arms the socket read timeout to the remaining budget (so a stalled
/// peer wakes the worker exactly at expiry) or fails fast when the
/// budget is already gone.
fn arm_read(stream: &TcpStream, d: &Deadline, phase: &'static str) -> Result<(), HttpError> {
    match d.remaining() {
        None => Ok(()),
        Some(rem) if rem.is_zero() => Err(HttpError::Deadline(phase)),
        Some(rem) => {
            let _ = stream.set_read_timeout(Some(rem));
            Ok(())
        }
    }
}

/// Whether an I/O error is a socket-timeout wakeup (either kind,
/// depending on platform) rather than a real transport failure.
fn timed_out(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// A parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `PUT`, `POST`).
    pub method: String,
    /// Request path, e.g. `/experiments/0123456789abcdef/stats`.
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed before sending a complete request.
    Closed,
    /// The bytes are not a request this server understands.
    Malformed(String),
    /// The declared body exceeds the configured maximum.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured cap.
        limit: usize,
    },
    /// Transport failure (includes read timeouts).
    Io(std::io::Error),
    /// A request deadline expired during the named phase; renders as
    /// `504 deadline_exceeded`.
    Deadline(&'static str),
}

/// Reads one request from `stream`, enforcing [`MAX_HEAD_BYTES`] and
/// the caller's body cap *before* buffering the body.
///
/// `head_deadline` bounds the header phase (the slow-loris cap: a peer
/// trickling header bytes is cut off when it expires), `total` bounds
/// the whole read. Both are re-armed onto the socket's read timeout so
/// a peer that stalls entirely wakes the worker at expiry rather than
/// at the coarse per-socket timeout.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    head_deadline: &Deadline,
    total: &Deadline,
) -> Result<Request, HttpError> {
    let head_budget = head_deadline.sooner(*total);
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let body_start = loop {
        if let Some(end) = find_head_end(&head) {
            break end;
        }
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::Malformed(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        arm_read(stream, &head_budget, "reading request head")?;
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if timed_out(&e) && head_budget.expired() => {
                return Err(HttpError::Deadline("reading request head"));
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if n == 0 {
            return if head.is_empty() {
                Err(HttpError::Closed)
            } else {
                Err(HttpError::Malformed("connection closed mid-request".into()))
            };
        }
        head.extend_from_slice(&chunk[..n]);
    };

    let (method, path, headers) = parse_head(&head[..body_start - 4])?;
    let declared = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length '{v}'")))?,
        None => 0,
    };
    if declared > max_body {
        return Err(HttpError::BodyTooLarge {
            declared,
            limit: max_body,
        });
    }

    let mut body = head[body_start..].to_vec();
    if body.len() > declared {
        return Err(HttpError::Malformed(
            "more body bytes than content-length declares".into(),
        ));
    }
    while body.len() < declared {
        arm_read(stream, total, "reading request body")?;
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if timed_out(&e) && total.expired() => {
                return Err(HttpError::Deadline("reading request body"));
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > declared {
            return Err(HttpError::Malformed(
                "more body bytes than content-length declares".into(),
            ));
        }
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parsed request line + headers: `(method, path, headers)`.
type Head = (String, String, Vec<(String, String)>);

fn parse_head(head: &[u8]) -> Result<Head, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line '{request_line}'"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("bad version '{version}'")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// A response ready to serialize: status, content type, extra headers,
/// body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Additional headers (e.g. `X-Cache`).
    pub extra: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A response with explicit content type and raw bytes.
    pub fn bytes(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type,
            extra: Vec::new(),
            body,
        }
    }

    /// Adds an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra.push((name, value.into()));
        self
    }
}

/// Serializes `resp` onto `stream` with `Connection: close`.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_method_path_headers() {
        let (m, p, h) =
            parse_head(b"PUT /experiments HTTP/1.1\r\nContent-Length: 3\r\nX-Foo: bar").unwrap();
        assert_eq!(m, "PUT");
        assert_eq!(p, "/experiments");
        assert_eq!(h[0], ("content-length".into(), "3".into()));
        assert_eq!(h[1], ("x-foo".into(), "bar".into()));
    }

    #[test]
    fn rejects_garbage_request_lines() {
        assert!(parse_head(b"nonsense").is_err());
        assert!(parse_head(b"GET HTTP/1.1").is_err());
        assert!(parse_head(b"GET noslash HTTP/1.1").is_err());
        assert!(parse_head(b"GET / SPDY/99").is_err());
    }

    #[test]
    fn finds_head_end_only_on_blank_line() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn deadline_budget_arithmetic() {
        let unlimited = Deadline::none();
        assert!(!unlimited.expired());
        assert!(unlimited.remaining().is_none());
        assert!(!Deadline::after_ms(0).expired(), "0 means unlimited");

        let tight = Deadline::after_ms(1);
        std::thread::sleep(Duration::from_millis(5));
        assert!(tight.expired());
        assert_eq!(tight.remaining(), Some(Duration::ZERO));

        // sooner() keeps the finite side, and the earlier of two.
        assert!(tight.sooner(unlimited).expired());
        assert!(unlimited.sooner(tight).expired());
        assert!(!unlimited.sooner(Deadline::none()).expired());
        assert!(!Deadline::after_ms(60_000).sooner(unlimited).expired());
    }
}
